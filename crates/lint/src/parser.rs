//! Item-level parser over the token stream.
//!
//! The lexer ([`crate::lexer`]) gives a flat token list; this module
//! recovers the *item structure* of a file — structs with their typed
//! fields, enums with variant payloads, impl blocks with their self
//! type and trait, consts/statics, `use` imports, inline modules — so
//! that the semantic rule families ([`crate::rules`]) and the
//! world-isolation prover ([`crate::resolve`]) can reason across files:
//! "what type is this field", "which structs implement `Component`",
//! "is this `static` mutable".
//!
//! It is a *recognizer*, not a full Rust parser: anything it does not
//! understand it skips token-by-token, so a file that rustc rejects
//! still yields the items that did parse. Nesting (inline `mod`s) is
//! flattened into one item list per file with `#[cfg(test)]`
//! inheritance, which is all the rules need.

use crate::lexer::{Lexed, Token, TokenKind};

/// The parsed item list of one file (inline modules flattened in).
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub items: Vec<Item>,
}

/// One top-level (or inline-module-level) item.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`""` where none applies, e.g. `impl` blocks).
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// True when the item (or an enclosing module) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Token-index range `[start, end)` covering the whole item.
    pub span: (usize, usize),
}

/// What kind of item, with the structure the rules consume.
#[derive(Debug)]
pub enum ItemKind {
    Struct {
        fields: Vec<Field>,
        /// Tuple struct (`struct Gbps(f64);`) — fields are unnamed.
        tuple: bool,
    },
    Enum {
        variants: Vec<Variant>,
    },
    Fn,
    Trait,
    Impl {
        /// Head name of the self type (`Foo` in `impl Foo<T>`).
        self_ty: String,
        /// Head name of the implemented trait, if a trait impl.
        trait_name: Option<String>,
    },
    Const,
    Static {
        mutable: bool,
        /// Tokens of the static's declared type.
        ty: TypeTokens,
    },
    TypeAlias,
    Mod {
        inline: bool,
    },
    Use {
        /// The import path as written, `::`-joined (no brace groups).
        path: String,
        /// The names this import binds locally (rename-aware; `*` for
        /// glob imports).
        leaves: Vec<String>,
    },
    /// An item-position macro invocation (`thread_local! { … }`).
    MacroCall,
}

/// One struct field (or tuple/variant payload slot, with `name == ""`).
#[derive(Debug)]
pub struct Field {
    pub name: String,
    pub line: u32,
    pub ty: TypeTokens,
}

/// One enum variant with its payload fields.
#[derive(Debug)]
pub struct Variant {
    pub name: String,
    pub line: u32,
    pub fields: Vec<Field>,
}

/// The token slice of a type annotation, with the queries rules need.
#[derive(Debug, Clone, Default)]
pub struct TypeTokens(pub Vec<Token>);

impl TypeTokens {
    /// Every identifier in the type, outermost first (`DetMap<u64,
    /// Box<Frame>>` → `DetMap`, `u64`, `Box`, `Frame`).
    pub fn idents(&self) -> impl Iterator<Item = &str> {
        self.0.iter().filter_map(|t| t.ident())
    }

    /// True when the type is a borrowed reference (`&T`, `&mut T`).
    pub fn is_reference(&self) -> bool {
        self.0.first().is_some_and(|t| t.is_punct('&'))
    }

    /// True for a shared `&'static T` reference: the pointee lives (and
    /// stays immutable) for the whole program, so holding it in world
    /// state cannot fork a replay — interior mutability behind it is
    /// caught separately by the shared-mut ident check. `&'static mut`
    /// is NOT exempt.
    pub fn is_static_shared_ref(&self) -> bool {
        self.is_reference()
            && self.0.get(1).is_some_and(|t| t.is_ident("'static"))
            && !self.0.get(2).is_some_and(|t| t.is_ident("mut"))
    }

    /// True when the type contains a raw pointer (`*const T`/`*mut T`).
    pub fn has_raw_pointer(&self) -> bool {
        self.0
            .windows(2)
            .any(|w| w[0].is_punct('*') && (w[1].is_ident("const") || w[1].is_ident("mut")))
    }

    /// Number of type-erasure edges (`dyn Trait`) the prover cannot see
    /// through.
    pub fn opaque_edges(&self) -> usize {
        self.idents().filter(|i| *i == "dyn").count()
    }

    /// The type as a compact display string (for messages).
    pub fn display(&self) -> String {
        let mut out = String::new();
        for t in &self.0 {
            match &t.kind {
                TokenKind::Ident(s) => {
                    if out
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        out.push(' ');
                    }
                    out.push_str(s);
                }
                TokenKind::Punct(c) => out.push(*c),
                TokenKind::Literal(_) => out.push_str("\"…\""),
                TokenKind::Number => out.push('N'),
            }
        }
        out
    }
}

/// Parses the item structure out of a lexed file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(&lexed.tokens, 0, lexed.tokens.len(), false, &mut out.items);
    out
}

/// Parses items in `tokens[start..end)` (a file body or an inline-mod
/// body), appending to `items`. `in_test` marks an enclosing
/// `#[cfg(test)]`.
fn parse_items(tokens: &[Token], start: usize, end: usize, in_test: bool, items: &mut Vec<Item>) {
    let mut i = start;
    while i < end {
        // Attributes: `#[...]` / `#![...]`; remember #[cfg(test)].
        let mut cfg_test = in_test;
        let item_start = i;
        while i < end && tokens[i].is_punct('#') {
            let mut j = i + 1;
            if j < end && tokens[j].is_punct('!') {
                j += 1;
            }
            if j >= end || !tokens[j].is_punct('[') {
                break;
            }
            let close = matching(tokens, j, '[', ']').unwrap_or(end);
            let attr = &tokens[j..close.min(end)];
            let is_cfg_test =
                attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"));
            // A bare `#[test]` fn attribute also marks test code.
            let is_test_attr = attr.len() == 2 && attr[1].is_ident("test");
            if is_cfg_test || is_test_attr {
                cfg_test = true;
            }
            i = (close + 1).min(end);
        }
        if i >= end {
            break;
        }
        // Visibility and modifier prefixes.
        while i < end {
            let t = &tokens[i];
            if t.is_ident("pub") {
                i += 1;
                if i < end && tokens[i].is_punct('(') {
                    i = matching(tokens, i, '(', ')').map_or(end, |c| c + 1);
                }
            } else if t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("default") {
                i += 1;
            } else {
                break;
            }
        }
        if i >= end {
            break;
        }
        let line = tokens[i].line;
        let kw = tokens[i].ident().unwrap_or("");
        match kw {
            "struct" => {
                let (item, next) = parse_struct(tokens, i, end, line, cfg_test, item_start);
                items.push(item);
                i = next;
            }
            "enum" => {
                let (item, next) = parse_enum(tokens, i, end, line, cfg_test, item_start);
                items.push(item);
                i = next;
            }
            "fn" => {
                let name = tokens.get(i + 1).and_then(|t| t.ident()).unwrap_or("");
                let next = skip_to_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Fn,
                    name: name.to_string(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "trait" => {
                let name = tokens.get(i + 1).and_then(|t| t.ident()).unwrap_or("");
                let next = skip_to_body_or_semi(tokens, i + 1, end);
                items.push(Item {
                    kind: ItemKind::Trait,
                    name: name.to_string(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "impl" => {
                let (item, next) = parse_impl(tokens, i, end, line, cfg_test, item_start);
                items.push(item);
                i = next;
            }
            "const" | "static" => {
                // `const fn` is a function, not a constant.
                if tokens.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                    i += 1;
                    continue;
                }
                let is_static = kw == "static";
                let mut j = i + 1;
                let mutable = is_static && tokens.get(j).is_some_and(|t| t.is_ident("mut"));
                if mutable {
                    j += 1;
                }
                let name = tokens.get(j).and_then(|t| t.ident()).unwrap_or("");
                // Type tokens: after `:` up to `=` or `;` at depth 0.
                let mut ty = TypeTokens::default();
                if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                    let ty_end = scan_type(tokens, j + 2, end, &['=', ';']);
                    ty = TypeTokens(tokens[j + 2..ty_end.min(end)].to_vec());
                }
                let next = skip_to_semi(tokens, i, end);
                items.push(Item {
                    kind: if is_static {
                        ItemKind::Static { mutable, ty }
                    } else {
                        ItemKind::Const
                    },
                    name: name.to_string(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "type" => {
                let name = tokens.get(i + 1).and_then(|t| t.ident()).unwrap_or("");
                let next = skip_to_semi(tokens, i, end);
                items.push(Item {
                    kind: ItemKind::TypeAlias,
                    name: name.to_string(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "mod" => {
                let name = tokens.get(i + 1).and_then(|t| t.ident()).unwrap_or("");
                let mut j = i + 2;
                let inline = j < end && tokens[j].is_punct('{');
                let next = if inline {
                    let close = matching(tokens, j, '{', '}').unwrap_or(end);
                    // Recurse: items of the inline module join the flat
                    // list, inheriting #[cfg(test)].
                    parse_items(tokens, j + 1, close, cfg_test, items);
                    (close + 1).min(end)
                } else {
                    while j < end && !tokens[j].is_punct(';') {
                        j += 1;
                    }
                    (j + 1).min(end)
                };
                items.push(Item {
                    kind: ItemKind::Mod { inline },
                    name: name.to_string(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "use" => {
                let next = skip_to_semi(tokens, i, end);
                let (path, leaves) = parse_use(&tokens[i + 1..next.saturating_sub(1).max(i + 1)]);
                items.push(Item {
                    kind: ItemKind::Use { path, leaves },
                    name: String::new(),
                    line,
                    cfg_test,
                    span: (item_start, next),
                });
                i = next;
            }
            "extern" => {
                i = skip_to_body_or_semi(tokens, i, end);
            }
            _ => {
                // Item-position macro call: `name ! ( … );` / `name ! { … }`.
                if !kw.is_empty() && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                    let next = skip_macro_call(tokens, i + 2, end);
                    items.push(Item {
                        kind: ItemKind::MacroCall,
                        name: kw.to_string(),
                        line,
                        cfg_test,
                        span: (item_start, next),
                    });
                    i = next;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Index just past the `)`/`]`/`}` matching the opener at `open`.
fn matching(tokens: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Skips past a `;` at brace/paren/bracket depth 0, or past a matched
/// `{ … }` body — whichever comes first. Returns the index just after.
fn skip_to_body_or_semi(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut i = from;
    let (mut paren, mut bracket) = (0i64, 0i64);
    while i < end {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return i + 1;
            }
            if t.is_punct('{') {
                return matching(tokens, i, '{', '}').map_or(end, |c| (c + 1).min(end));
            }
        }
        i += 1;
    }
    end
}

/// Skips past the next `;` at all-brackets depth 0 (bodies of const
/// initializers may contain braces).
fn skip_to_semi(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut i = from;
    let (mut paren, mut bracket, mut brace) = (0i64, 0i64, 0i64);
    while i < end {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 && brace == 0 {
            return i + 1;
        }
        i += 1;
    }
    end
}

/// Skips an item-macro body starting at the delimiter after `name !`.
fn skip_macro_call(tokens: &[Token], from: usize, end: usize) -> usize {
    let Some(t) = tokens.get(from).filter(|_| from < end) else {
        return end;
    };
    if t.is_punct('{') {
        return matching(tokens, from, '{', '}').map_or(end, |c| (c + 1).min(end));
    }
    let close = if t.is_punct('(') {
        matching(tokens, from, '(', ')')
    } else if t.is_punct('[') {
        matching(tokens, from, '[', ']')
    } else {
        None
    };
    match close {
        Some(c) => {
            let mut i = (c + 1).min(end);
            if i < end && tokens[i].is_punct(';') {
                i += 1;
            }
            i
        }
        None => (from + 1).min(end),
    }
}

/// Skips a balanced `< … >` generics list starting at `from` (which
/// must be `<`), returning the index just past the closing `>`.
fn skip_generics(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` inside `Fn(..) -> T` bounds does not close a list.
            let arrow = i >= 1 && tokens[i - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    end
}

/// Scans a type annotation starting at `from`; stops at the first of
/// `stops` at angle/paren/bracket depth 0 (or `}`/`,` likewise).
/// Returns the index of the stopping token.
fn scan_type(tokens: &[Token], from: usize, end: usize, stops: &[char]) -> usize {
    let (mut angle, mut paren, mut bracket) = (0i64, 0i64, 0i64);
    let mut i = from;
    while i < end {
        let t = &tokens[i];
        if let TokenKind::Punct(c) = t.kind {
            match c {
                '<' => angle += 1,
                '>' => {
                    let arrow = i >= 1 && tokens[i - 1].is_punct('-');
                    if !arrow {
                        angle -= 1;
                        if angle < 0 {
                            return i;
                        }
                    }
                }
                '(' => paren += 1,
                ')' => {
                    paren -= 1;
                    if paren < 0 {
                        return i;
                    }
                }
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' | '}' if angle == 0 && paren == 0 && bracket == 0 => {
                    return i;
                }
                _ if angle == 0 && paren == 0 && bracket == 0 && stops.contains(&c) => {
                    return i;
                }
                _ => {}
            }
        }
        i += 1;
    }
    end
}

fn parse_struct(
    tokens: &[Token],
    kw: usize,
    end: usize,
    line: u32,
    cfg_test: bool,
    item_start: usize,
) -> (Item, usize) {
    let name = tokens.get(kw + 1).and_then(|t| t.ident()).unwrap_or("");
    let mut i = kw + 2;
    if i < end && tokens[i].is_punct('<') {
        i = skip_generics(tokens, i, end);
    }
    // `where` clause before the body.
    while i < end
        && !tokens[i].is_punct('{')
        && !tokens[i].is_punct('(')
        && !tokens[i].is_punct(';')
    {
        i += 1;
    }
    let (fields, tuple, next) = if i < end && tokens[i].is_punct('{') {
        let close = matching(tokens, i, '{', '}').unwrap_or(end);
        (
            parse_named_fields(tokens, i + 1, close),
            false,
            (close + 1).min(end),
        )
    } else if i < end && tokens[i].is_punct('(') {
        let close = matching(tokens, i, '(', ')').unwrap_or(end);
        let fields = parse_tuple_fields(tokens, i + 1, close);
        let mut next = (close + 1).min(end);
        if next < end && tokens[next].is_punct(';') {
            next += 1;
        }
        (fields, true, next)
    } else {
        // Unit struct `struct X;`.
        (Vec::new(), false, (i + 1).min(end))
    };
    (
        Item {
            kind: ItemKind::Struct { fields, tuple },
            name: name.to_string(),
            line,
            cfg_test,
            span: (item_start, next),
        },
        next,
    )
}

/// Parses `name: Type, …` field lists in `tokens[from..to)`.
fn parse_named_fields(tokens: &[Token], from: usize, to: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = from;
    while i < to {
        // Field attributes and visibility.
        while i < to && tokens[i].is_punct('#') {
            if tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                i = matching(tokens, i + 1, '[', ']').map_or(to, |c| (c + 1).min(to));
            } else {
                i += 1;
            }
        }
        if i < to && tokens[i].is_ident("pub") {
            i += 1;
            if i < to && tokens[i].is_punct('(') {
                i = matching(tokens, i, '(', ')').map_or(to, |c| (c + 1).min(to));
            }
        }
        let Some(name) = tokens.get(i).filter(|_| i < to).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let ty_end = scan_type(tokens, i + 2, to, &[',']);
        fields.push(Field {
            name: name.to_string(),
            line,
            ty: TypeTokens(tokens[i + 2..ty_end.min(to)].to_vec()),
        });
        i = (ty_end + 1).min(to);
    }
    fields
}

/// Parses the unnamed `Type, …` list of a tuple struct or variant.
fn parse_tuple_fields(tokens: &[Token], from: usize, to: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = from;
    while i < to {
        while i < to && tokens[i].is_ident("pub") {
            i += 1;
            if i < to && tokens[i].is_punct('(') {
                i = matching(tokens, i, '(', ')').map_or(to, |c| (c + 1).min(to));
            }
        }
        if i >= to {
            break;
        }
        let line = tokens[i].line;
        let ty_end = scan_type(tokens, i, to, &[',']);
        if ty_end > i {
            fields.push(Field {
                name: String::new(),
                line,
                ty: TypeTokens(tokens[i..ty_end.min(to)].to_vec()),
            });
        }
        i = (ty_end + 1).min(to);
    }
    fields
}

fn parse_enum(
    tokens: &[Token],
    kw: usize,
    end: usize,
    line: u32,
    cfg_test: bool,
    item_start: usize,
) -> (Item, usize) {
    let name = tokens.get(kw + 1).and_then(|t| t.ident()).unwrap_or("");
    let mut i = kw + 2;
    if i < end && tokens[i].is_punct('<') {
        i = skip_generics(tokens, i, end);
    }
    while i < end && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
        i += 1;
    }
    let mut variants = Vec::new();
    let next = if i < end && tokens[i].is_punct('{') {
        let close = matching(tokens, i, '{', '}').unwrap_or(end);
        let mut j = i + 1;
        while j < close {
            // Variant attributes.
            while j < close && tokens[j].is_punct('#') {
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                    j = matching(tokens, j + 1, '[', ']').map_or(close, |c| (c + 1).min(close));
                } else {
                    j += 1;
                }
            }
            let Some(vname) = tokens.get(j).filter(|_| j < close).and_then(|t| t.ident()) else {
                j += 1;
                continue;
            };
            let vline = tokens[j].line;
            let mut fields = Vec::new();
            j += 1;
            if j < close && tokens[j].is_punct('(') {
                let vclose = matching(tokens, j, '(', ')').unwrap_or(close);
                fields = parse_tuple_fields(tokens, j + 1, vclose.min(close));
                j = (vclose + 1).min(close);
            } else if j < close && tokens[j].is_punct('{') {
                let vclose = matching(tokens, j, '{', '}').unwrap_or(close);
                fields = parse_named_fields(tokens, j + 1, vclose.min(close));
                j = (vclose + 1).min(close);
            } else if j < close && tokens[j].is_punct('=') {
                // Discriminant: skip to the separating comma.
                while j < close && !tokens[j].is_punct(',') {
                    j += 1;
                }
            }
            variants.push(Variant {
                name: vname.to_string(),
                line: vline,
                fields,
            });
            // Skip the separating comma.
            if j < close && tokens[j].is_punct(',') {
                j += 1;
            }
        }
        (close + 1).min(end)
    } else {
        (i + 1).min(end)
    };
    (
        Item {
            kind: ItemKind::Enum { variants },
            name: name.to_string(),
            line,
            cfg_test,
            span: (item_start, next),
        },
        next,
    )
}

fn parse_impl(
    tokens: &[Token],
    kw: usize,
    end: usize,
    line: u32,
    cfg_test: bool,
    item_start: usize,
) -> (Item, usize) {
    let mut i = kw + 1;
    if i < end && tokens[i].is_punct('<') {
        i = skip_generics(tokens, i, end);
    }
    // First path: either the self type or the trait (if `for` follows).
    let first_end = scan_impl_path(tokens, i, end);
    let first = head_name(&tokens[i..first_end.min(end)]);
    let (self_ty, trait_name, mut j) = if first_end < end && tokens[first_end].is_ident("for") {
        let second_end = scan_impl_path(tokens, first_end + 1, end);
        (
            head_name(&tokens[first_end + 1..second_end.min(end)]),
            Some(first),
            second_end,
        )
    } else {
        (first, None, first_end)
    };
    // `where` clause, then the body.
    while j < end && !tokens[j].is_punct('{') {
        j += 1;
    }
    let next = if j < end {
        matching(tokens, j, '{', '}').map_or(end, |c| (c + 1).min(end))
    } else {
        end
    };
    (
        Item {
            kind: ItemKind::Impl {
                self_ty,
                trait_name: trait_name.filter(|t| !t.is_empty()),
            },
            name: String::new(),
            line,
            cfg_test,
            span: (item_start, next),
        },
        next,
    )
}

/// Scans an impl-header path (`core::Foo<Bar>`) starting at `from`;
/// stops before `for`, `where`, or `{` at angle depth 0.
fn scan_impl_path(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut angle = 0i64;
    let mut i = from;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(i >= 1 && tokens[i - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if angle == 0 && (t.is_ident("for") || t.is_ident("where") || t.is_punct('{')) {
            return i;
        }
        i += 1;
    }
    end
}

/// The head type name of a path slice: the last identifier at angle
/// depth 0 (`core::Foo<Bar>` → `Foo`; `&mut Foo` → `Foo`).
fn head_name(tokens: &[Token]) -> String {
    let mut angle = 0i64;
    let mut name = "";
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(i >= 1 && tokens[i - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if angle == 0 {
            if let Some(id) = t.ident() {
                if id != "dyn" && id != "mut" && id != "const" {
                    name = id;
                }
            }
        }
    }
    name.to_string()
}

/// Parses the token slice of a `use` path (between `use` and `;`) into
/// a display path and the locally bound leaf names.
fn parse_use(tokens: &[Token]) -> (String, Vec<String>) {
    let mut path = String::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(s) => {
                if path
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    path.push(' ');
                }
                path.push_str(s);
            }
            TokenKind::Punct(c) => path.push(*c),
            _ => {}
        }
    }
    // Leaves: every ident that is not followed by `::`, honoring
    // `as rename` (the rename wins) and `*` globs.
    let mut leaves = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('*') {
            leaves.push("*".to_string());
            i += 1;
            continue;
        }
        let Some(id) = t.ident() else {
            i += 1;
            continue;
        };
        if id == "as" {
            i += 1;
            continue;
        }
        let followed_by_path = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'));
        let renamed = tokens.get(i + 1).is_some_and(|t| t.is_ident("as"));
        if renamed {
            if let Some(rename) = tokens.get(i + 2).and_then(|t| t.ident()) {
                leaves.push(rename.to_string());
            }
            i += 3;
            continue;
        }
        if !followed_by_path {
            leaves.push(id.to_string());
        }
        i += 1;
    }
    (path, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn find<'a>(p: &'a ParsedFile, name: &str) -> &'a Item {
        p.items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item `{name}` in {:#?}", p.items))
    }

    #[test]
    fn parses_struct_fields_with_types() {
        let p = items(
            r#"
            pub struct Node {
                pub id: u32,
                queue: DetMap<u64, Box<Frame>>,
                #[allow(dead_code)]
                scratch: Vec<(SimTime, u8)>,
            }
            "#,
        );
        let ItemKind::Struct { fields, tuple } = &find(&p, "Node").kind else {
            panic!()
        };
        assert!(!tuple);
        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["id", "queue", "scratch"]);
        let q: Vec<&str> = fields[1].ty.idents().collect();
        assert_eq!(q, vec!["DetMap", "u64", "Box", "Frame"]);
    }

    #[test]
    fn parses_tuple_and_unit_structs() {
        let p = items("pub struct Gbps(pub f64); struct Marker; struct After { x: u8 }");
        let ItemKind::Struct { fields, tuple } = &find(&p, "Gbps").kind else {
            panic!()
        };
        assert!(tuple);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].ty.idents().collect::<Vec<_>>(), vec!["f64"]);
        assert!(matches!(
            find(&p, "Marker").kind,
            ItemKind::Struct { ref fields, .. } if fields.is_empty()
        ));
        // Resynchronized on the item after the unit struct.
        assert!(matches!(find(&p, "After").kind, ItemKind::Struct { .. }));
    }

    #[test]
    fn parses_enum_variants_with_payloads() {
        let p = items(
            r#"
            pub enum NodeFault {
                Crash { at_ns: u64, restart_at_ns: Option<u64> },
                Hang(u64),
                None,
            }
            "#,
        );
        let ItemKind::Enum { variants } = &find(&p, "NodeFault").kind else {
            panic!()
        };
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].fields.len(), 2);
        assert_eq!(variants[0].fields[1].name, "restart_at_ns");
        assert_eq!(variants[1].fields.len(), 1);
        assert!(variants[2].fields.is_empty());
    }

    #[test]
    fn parses_impls_with_and_without_traits() {
        let p = items(
            r#"
            impl Component for FakeNic { fn handle(&mut self) {} }
            impl<'a> Ctx<'a> { fn now(&self) -> u64 { 0 } }
            impl core::fmt::Display for Gbps {}
            "#,
        );
        let impls: Vec<(&str, Option<&str>)> = p
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Impl {
                    self_ty,
                    trait_name,
                } => Some((self_ty.as_str(), trait_name.as_deref())),
                _ => None,
            })
            .collect();
        assert_eq!(
            impls,
            vec![
                ("FakeNic", Some("Component")),
                ("Ctx", None),
                ("Gbps", Some("Display")),
            ]
        );
    }

    #[test]
    fn statics_consts_and_macros() {
        let p = items(
            r#"
            static mut COUNTER: u64 = 0;
            static OK: u64 = 0;
            pub const WIRE_DROP: &str = "wire.drop";
            thread_local! { static TLS: u32 = 0; }
            "#,
        );
        assert!(matches!(
            find(&p, "COUNTER").kind,
            ItemKind::Static { mutable: true, .. }
        ));
        assert!(matches!(
            find(&p, "OK").kind,
            ItemKind::Static { mutable: false, .. }
        ));
        assert!(matches!(find(&p, "WIRE_DROP").kind, ItemKind::Const));
        assert!(matches!(find(&p, "thread_local").kind, ItemKind::MacroCall));
    }

    #[test]
    fn use_leaves_honor_groups_renames_and_globs() {
        let p = items(
            r#"
            use dcs_sim::{DetMap, DetSet};
            use std::collections::BTreeMap as Map;
            use crate::rules::*;
            "#,
        );
        let leaves: Vec<Vec<String>> = p
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { leaves, .. } => Some(leaves.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(leaves[0], vec!["DetMap", "DetSet"]);
        assert_eq!(leaves[1], vec!["Map"]);
        assert_eq!(leaves[2], vec!["*"]);
    }

    #[test]
    fn cfg_test_marks_items_and_inherits_into_mods() {
        let p = items(
            r#"
            struct Live { x: u8 }
            #[cfg(test)]
            mod tests {
                struct Fixture { y: u8 }
                fn helper() {}
            }
            #[test]
            fn t() {}
            "#,
        );
        assert!(!find(&p, "Live").cfg_test);
        assert!(find(&p, "Fixture").cfg_test);
        assert!(find(&p, "helper").cfg_test);
        assert!(find(&p, "t").cfg_test);
    }

    #[test]
    fn reference_and_raw_pointer_types_are_detected() {
        let p = items(
            r#"
            struct Bad<'a> {
                peer: &'a mut Node,
                raw: *mut u8,
                cb: Box<dyn Fn(u64) -> u64>,
            }
            "#,
        );
        let ItemKind::Struct { fields, .. } = &find(&p, "Bad").kind else {
            panic!()
        };
        assert!(fields[0].ty.is_reference());
        assert!(fields[1].ty.has_raw_pointer());
        assert_eq!(fields[2].ty.opaque_edges(), 1);
        assert!(!fields[2].ty.is_reference());
    }

    #[test]
    fn fn_return_types_with_arrows_do_not_derail_generics() {
        let p = items("struct S { f: Box<dyn Fn(u64) -> u64>, g: u8 } struct T { x: u8 }");
        let ItemKind::Struct { fields, .. } = &find(&p, "S").kind else {
            panic!()
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].name, "g");
        assert!(matches!(find(&p, "T").kind, ItemKind::Struct { .. }));
    }
}
