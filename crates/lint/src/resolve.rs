//! Name resolution and the world-isolation prover.
//!
//! Resolution is deliberately lightweight: the workspace has no proc
//! macros and no type-level tricks, so "what does identifier `Frame`
//! mean in this file" is answerable from the item tables alone —
//! same-file definitions first, then `use`-imported crates, then the
//! defining crate of the file, then any workspace match. That is
//! enough to walk the *ownership graph*: starting from the isolation
//! roots (the `World`, every `Component` impl, every registered world
//! resource), visit each struct/enum a root can store, transitively,
//! and flag any field whose type smuggles shared mutability (`Rc`,
//! `Arc`, `RefCell`, locks, atomics) or borrows (`&T`) into per-world
//! state. The per-crate tallies become the isolation certificate the
//! parallel-DES runner's CI gate consumes (DESIGN.md §15).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Token;
use crate::model::{is_sim_state_crate, ItemRef, Workspace, SIM_STATE_CRATES};
use crate::parser::{Field, ItemKind};
use crate::rules::Finding;

/// Name-resolution index over a [`Workspace`].
pub struct Resolver<'w> {
    ws: &'w Workspace,
    /// Type name → defining (non-test) struct/enum items, file order.
    types: BTreeMap<&'w str, Vec<ItemRef>>,
    /// Per file: imported leaf name → source crate hint.
    imports: Vec<BTreeMap<&'w str, String>>,
}

impl<'w> Resolver<'w> {
    pub fn new(ws: &'w Workspace) -> Resolver<'w> {
        let mut types: BTreeMap<&str, Vec<ItemRef>> = BTreeMap::new();
        for (r, item) in ws.items() {
            if !item.cfg_test
                && matches!(item.kind, ItemKind::Struct { .. } | ItemKind::Enum { .. })
                && !item.name.is_empty()
            {
                types.entry(item.name.as_str()).or_default().push(r);
            }
        }
        let imports = ws
            .files
            .iter()
            .map(|f| {
                let mut map = BTreeMap::new();
                for item in &f.parsed.items {
                    let ItemKind::Use { path, leaves } = &item.kind else {
                        continue;
                    };
                    let Some(source) = import_crate(path, &f.crate_name) else {
                        continue;
                    };
                    for leaf in leaves {
                        map.insert(leaf.as_str(), source.clone());
                    }
                }
                map
            })
            .collect();
        Resolver { ws, types, imports }
    }

    /// Resolves type `name` as seen from `from_file`, most specific
    /// match first: same file, imported crate, same crate, anywhere.
    pub fn resolve_type(&self, from_file: usize, name: &str) -> Vec<ItemRef> {
        let Some(candidates) = self.types.get(name) else {
            return Vec::new();
        };
        let in_file: Vec<ItemRef> = candidates
            .iter()
            .copied()
            .filter(|r| r.file == from_file)
            .collect();
        if !in_file.is_empty() {
            return in_file;
        }
        let by_crate = |krate: &str| -> Vec<ItemRef> {
            candidates
                .iter()
                .copied()
                .filter(|r| self.ws.files[r.file].crate_name == krate)
                .collect()
        };
        if let Some(hint) = self.imports[from_file].get(name) {
            let hinted = by_crate(hint);
            if !hinted.is_empty() {
                return hinted;
            }
        }
        let same_crate = by_crate(&self.ws.files[from_file].crate_name);
        if !same_crate.is_empty() {
            return same_crate;
        }
        candidates.clone()
    }

    /// The fields (or variant payload slots) of a struct/enum item.
    pub fn fields_of(&self, r: ItemRef) -> Vec<&'w Field> {
        match &self.ws.item(r).kind {
            ItemKind::Struct { fields, .. } => fields.iter().collect(),
            ItemKind::Enum { variants } => variants.iter().flat_map(|v| v.fields.iter()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Maps a `use` path head to the short crate name it draws from.
/// `dcs_sim::DetMap` → `sim`; `crate::…`/`super::…`/`self::…` → the
/// importing file's crate; `std`/`core`/`alloc` → `None` (external).
fn import_crate(path: &str, own_crate: &str) -> Option<String> {
    let head = path
        .split("::")
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches(' ');
    match head {
        "crate" | "super" | "self" => Some(own_crate.to_string()),
        "std" | "core" | "alloc" => None,
        h => Some(h.strip_prefix("dcs_").unwrap_or(h).to_string()),
    }
}

/// Structural (pre-suppression) output of the isolation prover.
pub struct IsolationAnalysis {
    /// `shared-mut-state` / `borrowed-state` findings, file order.
    pub findings: Vec<Finding>,
    /// Per sim-state crate: (sorted root names, structs checked,
    /// opaque edges). One entry per crate in `SIM_STATE_CRATES` order.
    pub per_crate: Vec<(String, Vec<String>, usize, usize)>,
}

/// Type heads that smuggle shared mutability into per-world state.
/// Each entry carries the message fragment explaining *why* it breaks
/// the lock-step parallel plan.
const SHARED_MUT_TYPES: &[(&str, &str)] = &[
    (
        "Rc",
        "shared ownership — two worlds could alias the same allocation",
    ),
    (
        "Arc",
        "shared ownership across threads — worlds must not alias state",
    ),
    (
        "RefCell",
        "interior mutability — aliased writes bypass per-world ownership",
    ),
    (
        "Cell",
        "interior mutability — aliased writes bypass per-world ownership",
    ),
    (
        "UnsafeCell",
        "interior mutability — aliased writes bypass per-world ownership",
    ),
    (
        "Mutex",
        "cross-thread sharing — epoch merges must be the only sync point",
    ),
    (
        "RwLock",
        "cross-thread sharing — epoch merges must be the only sync point",
    ),
];

/// True for `AtomicU64`-style names (cross-thread mutation).
pub(crate) fn is_atomic(name: &str) -> bool {
    name.strip_prefix("Atomic")
        .is_some_and(|rest| !rest.is_empty() && rest.chars().next().unwrap().is_ascii_uppercase())
}

/// Struct-name suffixes whose instances are frozen inputs or derived
/// outputs, exempt from the borrowed-reference rule (they never evolve
/// inside the event loop, so sharing them cannot fork worlds).
const OWNERSHIP_EXEMPT_SUFFIXES: &[&str] = &["Config", "Report", "Perf", "Spec"];

/// Methods of `World` whose turbofish type argument registers or reads
/// a world resource — each such type is an isolation root.
const RESOURCE_METHODS: &[&str] = &["insert", "get", "get_mut", "expect", "expect_mut", "remove"];

/// Runs the world-isolation prover over the workspace.
pub fn prove_isolation(ws: &Workspace, resolver: &Resolver) -> IsolationAnalysis {
    // --- Collect roots -------------------------------------------------
    // (root name, defining ItemRef); BTreeSet for deterministic order.
    let mut roots: BTreeSet<(String, ItemRef)> = BTreeSet::new();
    for r in ws.types_named("World") {
        if ws.files[r.file].crate_name == "sim" {
            roots.insert(("World".to_string(), r));
        }
    }
    // Every `impl Component for X`.
    for (r, item) in ws.items() {
        let ItemKind::Impl {
            self_ty,
            trait_name: Some(t),
        } = &item.kind
        else {
            continue;
        };
        if t == "Component" && !item.cfg_test {
            for def in resolver.resolve_type(r.file, self_ty) {
                roots.insert((self_ty.clone(), def));
            }
        }
    }
    // Every type registered or read as a world resource:
    // `w.insert::<T>(…)`, `w.expect::<T>()`, and `w.insert(T::new(…))`.
    for (fi, f) in ws.files.iter().enumerate() {
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(m) = toks.get(i + 1).and_then(|t| t.ident()) else {
                continue;
            };
            if !RESOURCE_METHODS.contains(&m) {
                continue;
            }
            // `. m :: < T` (turbofish).
            let ty = if seq(toks, i + 2, &[":", ":", "<"]) {
                toks.get(i + 5).and_then(|t| t.ident())
            } else if m == "insert" && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                // `. insert ( T …` — a constructor-expression argument.
                toks.get(i + 3).and_then(|t| t.ident())
            } else {
                None
            };
            let Some(ty) = ty else { continue };
            for def in resolver.resolve_type(fi, ty) {
                roots.insert((ty.to_string(), def));
            }
        }
    }

    // --- Traverse the ownership graph ---------------------------------
    let mut visited: BTreeSet<ItemRef> = BTreeSet::new();
    let mut queue: Vec<(ItemRef, String)> = Vec::new(); // (item, root it came from)
    let mut crate_roots: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for (name, r) in &roots {
        let krate = ws.files[r.file].crate_name.as_str();
        if is_sim_state_crate(krate) {
            crate_roots.entry(krate).or_default().insert(name.clone());
        }
        if visited.insert(*r) {
            queue.push((*r, name.clone()));
        }
    }

    let mut findings = Vec::new();
    let mut checked: BTreeMap<&str, usize> = BTreeMap::new();
    let mut opaque: BTreeMap<&str, usize> = BTreeMap::new();
    while let Some((r, root)) = queue.pop() {
        let file = &ws.files[r.file];
        let krate = file.crate_name.as_str();
        let item = ws.item(r);
        let in_scope = is_sim_state_crate(krate);
        if in_scope {
            *checked.entry(krate).or_default() += 1;
        }
        let exempt = OWNERSHIP_EXEMPT_SUFFIXES
            .iter()
            .any(|s| item.name.ends_with(s));
        for field in resolver.fields_of(r) {
            if in_scope {
                *opaque.entry(krate).or_default() += field.ty.opaque_edges();
                for ident in field.ty.idents() {
                    let why = SHARED_MUT_TYPES
                        .iter()
                        .find(|(t, _)| *t == ident)
                        .map(|(_, why)| *why)
                        .or_else(|| {
                            is_atomic(ident)
                                .then_some("cross-thread mutation — worlds must not share counters")
                        });
                    if let Some(why) = why {
                        findings.push(Finding {
                            rule: "shared-mut-state",
                            file: file.rel.clone(),
                            line: field.line,
                            message: format!(
                                "field `{}` of `{}` holds `{}` ({why}); state reachable from \
                                 isolation root `{root}` must be uniquely owned per world",
                                display_name(&item.name, field),
                                item.name,
                                field.ty.display(),
                            ),
                            suppressed: None,
                        });
                    }
                }
                if field.ty.is_reference() && !field.ty.is_static_shared_ref() && !exempt {
                    findings.push(Finding {
                        rule: "borrowed-state",
                        file: file.rel.clone(),
                        line: field.line,
                        message: format!(
                            "field `{}` of `{}` borrows (`{}`) — per-world state reachable from \
                             `{root}` must own its data; share `*Config`/`*Report` values by \
                             clone, not by reference, across node boundaries",
                            display_name(&item.name, field),
                            item.name,
                            field.ty.display(),
                        ),
                        suppressed: None,
                    });
                }
            }
            // Follow workspace-defined types regardless of crate scope —
            // a cluster struct may route through a workloads type and
            // back into sim state.
            for ident in field.ty.idents() {
                for next in resolver.resolve_type(r.file, ident) {
                    if visited.insert(next) {
                        queue.push((next, root.clone()));
                    }
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let per_crate = SIM_STATE_CRATES
        .iter()
        .map(|&krate| {
            (
                krate.to_string(),
                crate_roots
                    .get(krate)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default(),
                checked.get(krate).copied().unwrap_or(0),
                opaque.get(krate).copied().unwrap_or(0),
            )
        })
        .collect();
    IsolationAnalysis {
        findings,
        per_crate,
    }
}

/// `Struct.field` display for named fields, `Struct.N`-less fallback
/// for tuple slots.
fn display_name(_struct_name: &str, field: &Field) -> String {
    if field.name.is_empty() {
        "<tuple field>".to_string()
    } else {
        field.name.clone()
    }
}

/// True when the identifiers/punctuation at `start` match `pat`.
fn seq(tokens: &[Token], start: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(j, p)| {
        let Some(t) = tokens.get(start + j) else {
            return false;
        };
        if p.len() == 1 && !p.chars().next().unwrap().is_ascii_alphanumeric() {
            t.is_punct(p.chars().next().unwrap())
        } else {
            t.is_ident(p)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(r, s)| (r.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn resolution_prefers_same_file_then_import_then_crate() {
        let w = ws(&[
            ("crates/sim/src/a.rs", "pub struct Frame { x: u8 }"),
            ("crates/nic/src/b.rs", "pub struct Frame { y: u8 }"),
            (
                "crates/nvme/src/c.rs",
                "use dcs_nic::Frame;\nstruct Holder { f: Frame }",
            ),
            ("crates/nic/src/d.rs", "struct Holder2 { f: Frame }"),
        ]);
        let r = Resolver::new(&w);
        // c.rs imports dcs_nic::Frame → resolves to the nic definition.
        let hit = r.resolve_type(2, "Frame");
        assert_eq!(hit.len(), 1);
        assert_eq!(w.files[hit[0].file].crate_name, "nic");
        // d.rs (no import) prefers its own crate.
        let hit = r.resolve_type(3, "Frame");
        assert_eq!(w.files[hit[0].file].crate_name, "nic");
        // a.rs sees its own definition first.
        let hit = r.resolve_type(0, "Frame");
        assert_eq!(hit[0].file, 0);
    }

    #[test]
    fn prover_reaches_through_component_state_and_flags_rc() {
        let w = ws(&[(
            "crates/nic/src/device.rs",
            r#"
            use std::rc::Rc;
            use std::cell::RefCell;
            pub struct Inner { pub peer: Rc<RefCell<u64>> }
            pub struct Nic { inner: Inner }
            impl Component for Nic { fn handle(&mut self) {} }
            "#,
        )]);
        let r = Resolver::new(&w);
        let out = prove_isolation(&w, &r);
        let rules: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
        // Rc and RefCell both live on the `peer` field's type.
        assert!(rules.contains(&"shared-mut-state"), "{:#?}", out.findings);
        // nic certificate row: 1 root (Nic), 2 structs checked.
        let nic = out.per_crate.iter().find(|c| c.0 == "nic").unwrap();
        assert_eq!(nic.1, vec!["Nic".to_string()]);
        assert_eq!(nic.2, 2);
    }

    #[test]
    fn prover_flags_borrowed_state_but_exempts_config() {
        let w = ws(&[(
            "crates/cluster/src/x.rs",
            r#"
            pub struct TorConfig { pub ports: u32 }
            pub struct Shared<'a> { pub cfg: &'a TorConfig, pub label: &'static str }
            pub struct SwitchConfig<'a> { pub peer: &'a str }
            impl Component for Shared { fn handle(&mut self) {} }
            impl Component for SwitchConfig { fn handle(&mut self) {} }
            "#,
        )]);
        let r = Resolver::new(&w);
        let out = prove_isolation(&w, &r);
        let borrowed: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "borrowed-state")
            .collect();
        // `Shared.cfg` flagged; `Shared.label` is `&'static` (immutable
        // forever — exempt); `SwitchConfig.peer` exempt by suffix.
        assert_eq!(borrowed.len(), 1, "{:#?}", out.findings);
        assert!(borrowed[0].message.contains("`cfg`"));
    }

    #[test]
    fn world_resources_are_roots_via_turbofish_and_insert() {
        let w = ws(&[
            (
                "crates/pcie/src/mem.rs",
                "pub struct PhysMemory { pages: Rc<u8> }",
            ),
            (
                "crates/pcie/src/fabric.rs",
                r#"
                fn setup(w: &mut World) {
                    w.insert(PhysMemory::new());
                }
                fn read(w: &World) {
                    let _ = w.expect::<PhysMemory>();
                }
                "#,
            ),
        ]);
        let r = Resolver::new(&w);
        let out = prove_isolation(&w, &r);
        assert!(
            out.findings.iter().any(|f| f.rule == "shared-mut-state"),
            "resource structs must be traversed: {:#?}",
            out.findings
        );
        let pcie = out.per_crate.iter().find(|c| c.0 == "pcie").unwrap();
        assert!(pcie.1.contains(&"PhysMemory".to_string()));
    }

    #[test]
    fn atomics_and_locks_are_flagged_enums_traversed() {
        let w = ws(&[(
            "crates/store/src/s.rs",
            r#"
            pub enum Slot { Busy(Holder), Idle }
            pub struct Holder { pub n: AtomicU64 }
            pub struct Cachey { pub slots: Vec<Slot>, pub lock: Mutex<u8> }
            impl Component for Cachey { fn handle(&mut self) {} }
            "#,
        )]);
        let r = Resolver::new(&w);
        let out = prove_isolation(&w, &r);
        let rules: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules.iter().filter(|r| **r == "shared-mut-state").count(),
            2,
            "{:#?}",
            out.findings
        );
    }

    #[test]
    fn unreachable_transient_structs_are_not_flagged() {
        // Ctx-style borrowed accessors are fine: nothing stores them.
        let w = ws(&[(
            "crates/sim/src/engine.rs",
            r#"
            pub struct Ctx<'a> { pub world: &'a mut u64 }
            pub struct World { pub seed: u64 }
            "#,
        )]);
        let r = Resolver::new(&w);
        let out = prove_isolation(&w, &r);
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        let sim = out.per_crate.iter().find(|c| c.0 == "sim").unwrap();
        assert_eq!(sim.2, 1, "only World is visited");
    }
}
