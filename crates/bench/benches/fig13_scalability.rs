//! Figure 13 bench: projection arithmetic over measured operating points.

use criterion::{criterion_group, criterion_main, Criterion};
use dcs_workloads::{project, ProjectionInput};

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_projection", |b| {
        b.iter(|| {
            let r = project(
                ProjectionInput {
                    measured_gbps: std::hint::black_box(8.7),
                    measured_util: 0.42,
                    cores: 6,
                },
                40.0,
                6.0,
            );
            std::hint::black_box(r.max_gbps_within_budget)
        })
    });
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
