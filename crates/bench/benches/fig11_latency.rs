//! Figure 11 bench: single-op D2D latency measurement per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bench::fig11::{measure, DESIGNS};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_latency");
    group.sample_size(10);
    for with_processing in [false, true] {
        for d in DESIGNS {
            let name = format!("{}{}", d.label(), if with_processing { "+md5" } else { "" });
            group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, &d| {
                b.iter(|| std::hint::black_box(measure(d, 4096, with_processing).total()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
