//! Figure 2 bench: timeline assembly from a measured SW-ctrl-P2P op.

use criterion::{criterion_group, criterion_main, Criterion};
use dcs_bench::fig2;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_timeline");
    group.sample_size(10);
    group.bench_function("swp2p_timeline", |b| {
        b.iter(|| std::hint::black_box(fig2::render(4096).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
