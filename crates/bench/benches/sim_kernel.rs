//! DES kernel bench: raw event throughput of the simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcs_sim::{time, Component, Ctx, Msg, Simulator};

struct PingPong {
    peer_delay: u64,
    remaining: u64,
}

#[derive(Debug)]
struct Ball;

impl Component for PingPong {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        msg.downcast::<Ball>().expect("balls only");
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self_in(self.peer_delay, Ball);
        }
    }
}

fn bench_events(c: &mut Criterion) {
    let events = 100_000u64;
    let mut group = c.benchmark_group("sim_kernel");
    group.throughput(Throughput::Elements(events));
    group.sample_size(10);
    group.bench_function("self_ping_100k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0);
            let p = sim.add("p", PingPong { peer_delay: time::ns(100), remaining: events });
            sim.kickoff(p, Ball);
            sim.run();
            std::hint::black_box(sim.delivered_events())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
