//! Figure 12 bench: short Swift / HDFS workload windows per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_sim::time;
use dcs_workloads::{run_hdfs, run_swift, DesignUnderTest, HdfsConfig, SwiftConfig};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_apps");
    group.sample_size(10);
    for d in DesignUnderTest::FIG12 {
        group.bench_with_input(BenchmarkId::new("swift", d.label()), &d, |b, &d| {
            let cfg = SwiftConfig {
                duration_ns: time::ms(8),
                warmup_ns: time::ms(2),
                offered_gbps: 4.0,
                ..SwiftConfig::default()
            };
            b.iter(|| std::hint::black_box(run_swift(d, &cfg).requests))
        });
        group.bench_with_input(BenchmarkId::new("hdfs", d.label()), &d, |b, &d| {
            let cfg = HdfsConfig {
                duration_ns: time::ms(8),
                warmup_ns: time::ms(2),
                offered_gbps: 4.0,
                block_size: 256 * 1024,
                ..HdfsConfig::default()
            };
            b.iter(|| std::hint::black_box(run_hdfs(d, &cfg).0.requests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
