//! Figure 8 bench: streaming kernel-utilization measurement per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bench::fig8::{kernel_utilization, DESIGNS};
use dcs_sim::time;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_kernel_util");
    group.sample_size(10);
    for d in DESIGNS {
        group.bench_with_input(BenchmarkId::from_parameter(d.label()), &d, |b, &d| {
            b.iter(|| {
                let m = kernel_utilization(d, 64 * 1024, 3.0, time::ms(4));
                std::hint::black_box(m.values().sum::<f64>())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
