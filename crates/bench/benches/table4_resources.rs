//! Table IV bench: resource-report derivation across target rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bench::table4;
use dcs_sim::Bandwidth;

fn bench_resources(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_resources");
    for gbps in [10.0, 40.0, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(gbps as u64), &gbps, |b, &g| {
            b.iter(|| {
                let r = table4::run(Bandwidth::gbps(g));
                std::hint::black_box((r.total_luts(), r.fits()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resources);
criterion_main!(benches);
