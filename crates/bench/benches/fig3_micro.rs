//! Figure 3 bench: the SSD->GPU->NIC microbenchmark per design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bench::fig3::{latency, Fig3Design};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_micro");
    group.sample_size(10);
    for d in Fig3Design::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(d.label()), &d, |b, &d| {
            b.iter(|| std::hint::black_box(latency(d, 16 * 1024).total()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
