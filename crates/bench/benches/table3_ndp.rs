//! Table III bench: throughput of each NDP algorithm implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcs_ndp::NdpFunction;

fn bench_ndp(c: &mut Criterion) {
    let len = 256 * 1024;
    let data: Vec<u8> = (0..len).map(|i| (i * 2654435761usize % 256) as u8).collect();
    let mut aux_aes = vec![7u8; 32];
    aux_aes.extend([9u8; 16]);
    let mut group = c.benchmark_group("table3_ndp");
    group.throughput(Throughput::Bytes(len as u64));
    group.sample_size(10);
    for f in NdpFunction::ALL {
        let aux: &[u8] = match f {
            NdpFunction::Aes256Encrypt | NdpFunction::Aes256Decrypt => &aux_aes,
            _ => &[],
        };
        let input: Vec<u8> = if f == NdpFunction::GzipDecompress {
            dcs_ndp::deflate::gzip_compress(&data)
        } else {
            data.clone()
        };
        group.bench_with_input(BenchmarkId::from_parameter(f.name()), &input, |b, input| {
            b.iter(|| f.apply(std::hint::black_box(input), aux).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ndp);
criterion_main!(benches);
