//! CLI-contract tests for the `repro` binary: flag handling must stay
//! scriptable (CI loops over `--list`, EXPERIMENTS.md links by name).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_enumerates_every_experiment_one_per_line() {
    let out = repro().arg("--list").output().expect("repro runs");
    assert!(out.status.success(), "--list exits 0");
    let text = String::from_utf8(out.stdout).expect("utf-8");
    let names: Vec<&str> = text.lines().collect();
    // Spot-check the anchors: first, the paper tables, and the extensions.
    assert_eq!(names.first(), Some(&"engine"), "{text}");
    for must in [
        "table3",
        "fig8",
        "cluster",
        "cluster-failover",
        "cluster-gray",
        "anatomy",
        "store",
    ] {
        assert!(names.contains(&must), "--list must include {must}: {text}");
    }
    // One bare name per line — no prose, no duplicates.
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate names in --list");
    assert!(names.iter().all(|n| !n.contains(' ')), "{text}");
}

#[test]
fn listed_names_are_accepted_and_unknown_names_are_rejected() {
    // An unknown experiment must be rejected up front, exit code 2,
    // without running anything.
    let out = repro()
        .arg("definitely-not-an-experiment")
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).expect("utf-8");
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("store"), "rejection lists valid names: {err}");
}
