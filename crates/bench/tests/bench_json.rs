//! Schema smoke for the committed `BENCH_cluster.json`.
//!
//! The repo root carries the machine-readable store sweep exactly as
//! `repro store --quick --json-out .` writes it. Regenerating it here and
//! byte-comparing catches two failure classes at once: schema drift (a
//! renamed or dropped field silently breaking downstream consumers) and
//! lost determinism (the same config no longer reproducing the same
//! numbers). On an intentional change, regenerate with:
//!
//! ```text
//! cargo run -p dcs-bench --bin repro -- store --quick --json-out .
//! ```

use std::fs;
use std::path::Path;

#[test]
fn committed_bench_cluster_json_matches_regeneration() {
    let committed_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json");
    let committed = fs::read_to_string(&committed_path)
        .expect("BENCH_cluster.json is committed at the repo root");
    let fresh = dcs_bench::store::json_report(true).render();
    assert_eq!(
        committed, fresh,
        "BENCH_cluster.json drifted from `repro store --quick --json-out .`; \
         regenerate it (and review the schema change) if this is intentional"
    );
    // Belt and braces: the schema anchors downstream tooling keys on.
    let parsed = dcs_sim::Json::parse(&committed).expect("committed file parses");
    let dcs_sim::Json::Obj(fields) = &parsed else {
        panic!("top level is an object")
    };
    for key in [
        "experiment",
        "quick",
        "ycsb",
        "cache_size",
        "admission",
        "noisy_neighbor",
    ] {
        assert!(
            fields.iter().any(|(k, _)| k == key),
            "missing top-level key {key}"
        );
    }
}
