//! Contract tests for the committed `BENCH_engine.json`.
//!
//! Wall-clock numbers vary across machines, so unlike
//! `BENCH_cluster.json` the engine report is *not* byte-compared
//! against a regeneration. Instead this suite holds the committed file
//! to its contract: the schema downstream tooling keys on, the
//! machine-independent fields (`events`, `sim_ns` — identical on every
//! host by determinism, re-derived here for the cheap scenario), and
//! the acceptance floor ROADMAP item 1 set: the wheel must beat the
//! heap by ≥5× on fan-out. On an intentional change, regenerate with:
//!
//! ```text
//! cargo run --release -p dcs-bench --bin repro -- engine --quick --json-out .
//! ```

use std::fs;
use std::path::Path;

use dcs_sim::Json;

fn committed() -> Json {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let text = fs::read_to_string(&path).expect("BENCH_engine.json is committed at the repo root");
    Json::parse(&text).expect("committed BENCH_engine.json parses")
}

/// The four scenarios the benchmark must cover, in report order.
const SCENARIOS: [&str; 4] = ["ping-pong", "fan-out", "cluster-8", "cluster-64"];

/// Per-arm fields every scenario entry must carry.
const ARM_FIELDS: [&str; 6] = [
    "scheduler",
    "events",
    "batched",
    "sim_ns",
    "wall_ns",
    "events_per_sec",
];

#[test]
fn committed_report_keeps_its_schema() {
    let report = committed();
    assert_eq!(
        report.get("experiment").and_then(Json::as_str),
        Some("engine")
    );
    assert!(
        matches!(report.get("quick"), Some(Json::Bool(_))),
        "quick flag present"
    );
    let scenarios = report
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("scenarios array");
    let names: Vec<&str> = scenarios
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).expect("scenario name"))
        .collect();
    assert_eq!(names, SCENARIOS, "all four scenarios, in order");
    for scenario in scenarios {
        let name = scenario.get("name").and_then(Json::as_str).unwrap();
        for arm in ["wheel", "heap"] {
            let arm_obj = scenario
                .get(arm)
                .unwrap_or_else(|| panic!("{name} has a {arm} arm"));
            for field in ARM_FIELDS {
                assert!(arm_obj.get(field).is_some(), "{name}.{arm} missing {field}");
            }
        }
        assert_eq!(
            scenario.get("wheel").unwrap().get("scheduler"),
            Some(&Json::Str("timing-wheel".into()))
        );
        assert_eq!(
            scenario.get("heap").unwrap().get("scheduler"),
            Some(&Json::Str("reference-heap".into()))
        );
        assert!(
            scenario.get("speedup").and_then(Json::as_f64).is_some(),
            "{name} carries a speedup"
        );
    }
}

#[test]
fn committed_arms_agree_on_machine_independent_fields() {
    // Both calendars replay the identical schedule, so `events` and
    // `sim_ns` must match arm-to-arm in the committed file — a mismatch
    // means the report was generated from a broken build.
    let report = committed();
    for scenario in report.get("scenarios").and_then(Json::as_arr).unwrap() {
        let name = scenario.get("name").and_then(Json::as_str).unwrap();
        let (wheel, heap) = (
            scenario.get("wheel").unwrap(),
            scenario.get("heap").unwrap(),
        );
        for field in ["events", "sim_ns"] {
            assert_eq!(
                wheel.get(field).and_then(Json::as_i128),
                heap.get(field).and_then(Json::as_i128),
                "{name}: wheel and heap disagree on {field}"
            );
        }
        let events = wheel.get("events").and_then(Json::as_i128).unwrap();
        assert!(events > 0, "{name} delivered no events");
    }
}

#[test]
fn committed_fan_out_speedup_holds_the_acceptance_floor() {
    let report = committed();
    let fan_out = report
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("fan-out"))
        .expect("fan-out scenario present");
    let speedup = fan_out.get("speedup").and_then(Json::as_f64).unwrap();
    assert!(
        speedup >= 5.0,
        "committed fan-out speedup {speedup:.2} below the 5x floor; \
         the wheel regressed — do not paper over this by regenerating"
    );
}

#[test]
fn committed_ping_pong_fields_match_regeneration() {
    // The cheap scenario is re-run here (both arms) and its
    // machine-independent fields compared against the committed quick
    // report. Fan-out and the clusters are too heavy for a debug test
    // binary; their determinism is covered arm-vs-arm above and by the
    // scheduler-equivalence suites.
    let report = committed();
    let quick = matches!(report.get("quick"), Some(Json::Bool(true)));
    assert!(quick, "the committed report is the --quick profile");
    let committed_pp = report
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("ping-pong"))
        .expect("ping-pong scenario present")
        .clone();
    let wheel = dcs_bench::engine::run_ping_pong(true, false);
    let heap = dcs_bench::engine::run_ping_pong(true, true);
    for (arm, fresh) in [("wheel", wheel), ("heap", heap)] {
        let arm_obj = committed_pp.get(arm).unwrap();
        assert_eq!(
            arm_obj.get("events").and_then(Json::as_i128),
            Some(fresh.events as i128),
            "{arm} events drifted from the committed report; regenerate it"
        );
        assert_eq!(
            arm_obj.get("sim_ns").and_then(Json::as_i128),
            Some(fresh.sim_ns as i128),
            "{arm} sim_ns drifted from the committed report; regenerate it"
        );
    }
}
