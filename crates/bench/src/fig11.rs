//! Figure 11 — latency breakdown of inter-device communications.
//!
//! (a) SSD→NIC: read a block off the SSD and transmit it.
//! (b) SSD→Processing→NIC: MD5 the data in between — GPUs for the
//! baselines, an NDP unit for DCS-ctrl.
//!
//! Headline targets: DCS-ctrl reduces the *software* latency of
//! SW-ctrl-P2P by ≈42% for (a) and ≈72% for (b).

use dcs_host::job::D2dOp;
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::Breakdown;
use dcs_workloads::scenario::DesignUnderTest;

use crate::probe::ProbedTestbed;
use crate::render_breakdown;

/// One bar of the figure.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// The design measured.
    pub design: DesignUnderTest,
    /// Its latency breakdown.
    pub breakdown: Breakdown,
}

/// The designs Figure 11 compares.
pub const DESIGNS: [DesignUnderTest; 3] = [
    DesignUnderTest::SwOpt,
    DesignUnderTest::SwP2p,
    DesignUnderTest::DcsCtrl,
];

/// Runs one design's single-op measurement.
pub fn measure(design: DesignUnderTest, len: usize, with_processing: bool) -> Breakdown {
    let mut rig = ProbedTestbed::new(design);
    let payload: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
    rig.seed_flash(0, &payload);
    let mut ops = vec![D2dOp::SsdRead {
        ssd: 0,
        lba: 0,
        len,
    }];
    if with_processing {
        ops.push(D2dOp::Process {
            function: NdpFunction::Md5,
            aux: vec![],
        });
    }
    ops.push(D2dOp::NicSend {
        flow: TcpFlow::example(1, 2, 40_000, 9_000),
        seq: 0,
    });
    rig.run_server_job(ops, "fig11").breakdown
}

/// Runs the full figure: `(sub-figure a rows, sub-figure b rows)`.
pub fn run(len: usize) -> (Vec<Fig11Row>, Vec<Fig11Row>) {
    let a = DESIGNS
        .iter()
        .map(|&design| Fig11Row {
            design,
            breakdown: measure(design, len, false),
        })
        .collect();
    let b = DESIGNS
        .iter()
        .map(|&design| Fig11Row {
            design,
            breakdown: measure(design, len, true),
        })
        .collect();
    (a, b)
}

/// Software-latency reduction of DCS-ctrl relative to SW-ctrl P2P
/// (the paper's 42% / 72% headline metric).
pub fn software_reduction(rows: &[Fig11Row]) -> f64 {
    let sw = |d: DesignUnderTest| {
        rows.iter()
            .find(|r| r.design == d)
            .map(|r| software_latency(&r.breakdown))
            .expect("design measured")
    };
    let p2p = sw(DesignUnderTest::SwP2p);
    let dcs = sw(DesignUnderTest::DcsCtrl);
    1.0 - dcs as f64 / p2p as f64
}

/// Total end-to-end latency reduction of DCS-ctrl vs SW-ctrl P2P.
pub fn total_reduction(rows: &[Fig11Row]) -> f64 {
    let total = |d: DesignUnderTest| {
        rows.iter()
            .find(|r| r.design == d)
            .map(|r| r.breakdown.total())
            .expect("design measured")
    };
    1.0 - total(DesignUnderTest::DcsCtrl) as f64 / total(DesignUnderTest::SwP2p) as f64
}

/// The software portion of a breakdown: everything except raw device
/// service (read/write), wire time, and the hash computation itself.
pub fn software_latency(b: &Breakdown) -> u64 {
    use dcs_sim::Category as C;
    b.total() - b.get(C::Read) - b.get(C::Write) - b.get(C::Wire) - b.get(C::Hash)
}

/// Renders both sub-figures with the headline reductions.
pub fn render(len: usize) -> String {
    let (a, b) = run(len);
    let mut out = format!(
        "Figure 11 — inter-device communication latency ({} KiB)\n",
        len / 1024
    );
    out.push_str("\n(a) SSD -> NIC\n");
    for row in &a {
        out.push_str(&render_breakdown(row.design.label(), &row.breakdown));
    }
    out.push_str(&format!(
        "  DCS-ctrl vs SW-ctrl P2P: total latency -{:.0}%, software latency -{:.0}%  (paper: 42%)\n",
        total_reduction(&a) * 100.0,
        software_reduction(&a) * 100.0
    ));
    out.push_str("\n(b) SSD -> Processing (MD5) -> NIC\n");
    for row in &b {
        out.push_str(&render_breakdown(row.design.label(), &row.breakdown));
    }
    out.push_str(&format!(
        "  DCS-ctrl vs SW-ctrl P2P: total latency -{:.0}%, software latency -{:.0}%  (paper: 72%)\n",
        total_reduction(&b) * 100.0,
        software_reduction(&b) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcs_wins_and_reductions_match_paper_shape() {
        // 4 KiB: the paper's per-command transfer unit (§IV-C).
        let (a, b) = run(4096);
        // Total latency ordering: DCS < P2P <= Opt in both sub-figures.
        for rows in [&a, &b] {
            let total = |d: DesignUnderTest| {
                rows.iter()
                    .find(|r| r.design == d)
                    .unwrap()
                    .breakdown
                    .total()
            };
            assert!(
                total(DesignUnderTest::DcsCtrl) < total(DesignUnderTest::SwP2p),
                "dcs {} vs p2p {}",
                total(DesignUnderTest::DcsCtrl),
                total(DesignUnderTest::SwP2p)
            );
            assert!(total(DesignUnderTest::SwP2p) <= total(DesignUnderTest::SwOpt));
        }
        // Headline shape: substantial reductions, processing amplifies.
        let ra = total_reduction(&a);
        let rb = total_reduction(&b);
        assert!(ra > 0.20 && ra < 0.75, "fig11a total reduction {ra:.2}");
        assert!(rb > ra, "processing amplifies the win: {rb:.2} vs {ra:.2}");
        assert!(software_reduction(&a) > 0.5, "software all but disappears");
    }
}
