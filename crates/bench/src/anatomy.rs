//! Latency anatomy — per-request trace capture over the observability
//! recorder ([`dcs_sim::obs`]).
//!
//! Runs representative D2D requests on a testbed with sim-time tracing
//! enabled and exports (a) Chrome trace-event JSON loadable in Perfetto
//! and (b) a per-request anatomy table whose segments sum to the
//! measured end-to-end latency exactly.

use dcs_host::job::D2dOp;
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{chrome_trace, Json};
use dcs_workloads::scenario::DesignUnderTest;

use crate::probe::ProbedTestbed;

/// Everything one traced run yields.
pub struct TraceCapture {
    /// Chrome trace-event JSON (object form, `traceEvents` + metadata).
    pub trace_json: String,
    /// Human-readable per-request anatomy tables.
    pub table: String,
    /// `(request id, end-to-end ns)` for each completed request.
    pub requests: Vec<(u64, u64)>,
}

/// Runs the representative request mix on `design` with the recorder
/// enabled and returns the trace.
///
/// The mix exercises every instrumented layer: a plain SSD read, and an
/// SSD-read → MD5 → NIC-send server job paired with a NIC-recv client
/// job (the paper's device-to-device composition).
pub fn capture(design: DesignUnderTest) -> TraceCapture {
    let mut ptb = ProbedTestbed::new(design);
    // Enable after settle so init-time traffic doesn't clutter the trace;
    // recording is purely observational either way.
    ptb.tb.sim.world_mut().obs.enable();
    let payload = vec![0xA5u8; 16 * 1024];
    ptb.seed_flash(64, &payload);

    let mut done = Vec::new();
    done.push(ptb.run_server_job(
        vec![D2dOp::SsdRead {
            ssd: 0,
            lba: 64,
            len: payload.len(),
        }],
        "anatomy-read",
    ));
    let flow = TcpFlow::example(1, 2, 47_000, 9_470);
    done.extend(ptb.run_pair(
        vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 64,
                len: payload.len(),
            },
            D2dOp::Process {
                function: NdpFunction::Md5,
                aux: vec![],
            },
            D2dOp::NicSend { flow, seq: 0 },
        ],
        vec![D2dOp::NicRecv {
            flow: flow.reversed(),
            len: payload.len(),
        }],
        "anatomy-d2d",
    ));

    let rec = &ptb.tb.sim.world().obs;
    let mut table = String::new();
    let mut requests = Vec::new();
    for d in &done {
        if let Some(t) = rec.render_anatomy(d.id) {
            table.push_str(&t);
            table.push('\n');
        }
        if let Some(total) = rec.anatomy(d.id).and_then(|a| a.total_ns()) {
            requests.push((d.id, total));
        }
    }
    TraceCapture {
        trace_json: chrome_trace(rec),
        table,
        requests,
    }
}

/// Renders the anatomy experiment: the table plus a one-line summary of
/// the trace that `--trace-out` would write.
pub fn render() -> String {
    let cap = capture(DesignUnderTest::DcsCtrl);
    let events = Json::parse(&cap.trace_json)
        .ok()
        .and_then(|j| {
            j.get("traceEvents")
                .and_then(|e| e.as_arr().map(|a| a.len()))
        })
        .unwrap_or(0);
    let mut out = String::from(
        "Latency anatomy — DCS-ctrl, per-request sim-time segments (sum == end-to-end)\n",
    );
    out.push_str(&cap.table);
    out.push_str(&format!(
        "  ({} trace events over {} requests; write the trace with --trace-out)\n",
        events,
        cap.requests.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_yields_anatomy_for_every_request() {
        let cap = capture(DesignUnderTest::DcsCtrl);
        assert_eq!(cap.requests.len(), 3, "all three requests complete traced");
        assert!(cap.table.contains("latency anatomy"));
    }

    #[test]
    fn software_designs_capture_coarse_anatomy_too() {
        let cap = capture(DesignUnderTest::SwOpt);
        assert_eq!(cap.requests.len(), 3);
        for (_, e2e) in &cap.requests {
            assert!(*e2e > 0);
        }
    }
}
