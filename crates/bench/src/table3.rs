//! Table III — NDP IP cores: FPGA resources, clock, and throughput.
//!
//! The resource/clock columns come from the paper's synthesis results (we
//! have no Vivado); the harness re-derives the 10 Gbps unit counts and
//! utilization averages, and adds a column the paper could not print:
//! the measured software throughput of this repository's functional
//! implementations (what the GPU/CPU baselines actually execute).

use std::time::Instant;

use dcs_core::resources::{table3_cores, VIRTEX7_VC707};
use dcs_ndp::NdpFunction;
use dcs_sim::Bandwidth;

/// One rendered row.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// The function.
    pub function: NdpFunction,
    /// LUT share of the Virtex-7, percent.
    pub lut_pct: f64,
    /// Register share, percent.
    pub reg_pct: f64,
    /// Max clock, MHz.
    pub clock_mhz: u32,
    /// Modeled per-unit throughput.
    pub per_unit: Bandwidth,
    /// Units needed for 10 Gbps.
    pub units_for_10g: u32,
    /// Measured throughput of our Rust implementation, Gbps.
    pub sw_gbps: f64,
}

/// Measures the wall-clock throughput of one function over `len` bytes.
pub fn software_throughput(function: NdpFunction, len: usize) -> f64 {
    let data: Vec<u8> = (0..len)
        .map(|i| (i * 2654435761usize % 256) as u8)
        .collect();
    let aux: Vec<u8> = if matches!(
        function,
        NdpFunction::Aes256Encrypt | NdpFunction::Aes256Decrypt
    ) {
        let mut a = vec![7u8; 32];
        a.extend([9u8; 16]);
        a
    } else {
        vec![]
    };
    // Warm once, then time a few iterations.
    function.apply(&data, &aux).expect("valid input");
    let iterations = 3;
    let start = Instant::now();
    for _ in 0..iterations {
        let out = function.apply(&data, &aux).expect("valid input");
        std::hint::black_box(&out);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (len * iterations) as f64 * 8.0 / secs / 1e9
}

/// Builds all rows.
pub fn run(measure_len: usize) -> Vec<Table3Row> {
    table3_cores()
        .iter()
        .map(|core| Table3Row {
            function: core.function,
            lut_pct: core.luts as f64 * 100.0 / VIRTEX7_VC707.luts as f64,
            reg_pct: core.registers as f64 * 100.0 / VIRTEX7_VC707.registers as f64,
            clock_mhz: core.max_clock_mhz,
            per_unit: core.throughput_per_unit,
            units_for_10g: core.units_for(Bandwidth::gbps(10.0)),
            sw_gbps: software_throughput(core.function, measure_len),
        })
        .collect()
}

/// Renders the table.
pub fn render(measure_len: usize) -> String {
    let rows = run(measure_len);
    let mut out = String::from(
        "Table III — NDP processing units (modeled FPGA columns; measured SW column)\n",
    );
    out.push_str(&format!(
        "  {:<16} {:>7} {:>7} {:>9} {:>12} {:>10} {:>12}\n",
        "unit", "LUT%", "Reg%", "fclk MHz", "Gbps/unit", "units@10G", "SW Gbps"
    ));
    for r in &rows {
        out.push_str(&format!(
            "  {:<16} {:>6.2}% {:>6.2}% {:>9} {:>12.2} {:>10} {:>12.2}\n",
            r.function.name(),
            r.lut_pct,
            r.reg_pct,
            r.clock_mhz,
            r.per_unit.as_gbps(),
            r.units_for_10g,
            r.sw_gbps
        ));
    }
    let lut_avg: f64 = rows.iter().map(|r| r.lut_pct).sum::<f64>() / rows.len() as f64;
    let reg_avg: f64 = rows.iter().map(|r| r.reg_pct).sum::<f64>() / rows.len() as f64;
    out.push_str(&format!(
        "  average for 10 Gbps: {lut_avg:.2}% LUTs, {reg_avg:.2}% registers  (paper: 3.28% / 1.02%)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_six_cores_with_sane_measurements() {
        let rows = run(1 << 20);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.sw_gbps > 0.01,
                "{:?} too slow to be plausible",
                r.function
            );
            assert!(r.units_for_10g >= 1);
        }
        // AES-CTR and the hashes are all in the same order of magnitude;
        // just pin that the table carries real measurements.
        let crc = rows
            .iter()
            .find(|r| r.function == NdpFunction::Crc32)
            .unwrap();
        assert!(crc.sw_gbps > 0.1, "{crc:?}");
    }

    #[test]
    fn decrypt_measures_via_shared_core() {
        assert!(dcs_core::resources::lookup_core(NdpFunction::Aes256Decrypt).is_some());
        let gbps = software_throughput(NdpFunction::Aes256Decrypt, 1 << 18);
        assert!(gbps > 0.01);
    }
}
