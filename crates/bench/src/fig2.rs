//! Figure 2 — the timeline of a software-based device-control mechanism.
//!
//! The paper's figure is schematic: user/kernel/driver code bouncing
//! across boundaries around each device operation. We regenerate it as a
//! measured timeline: the per-category spans of one SW-ctrl-P2P
//! SSD→MD5→NIC operation laid out in execution order, showing exactly
//! where software sits between the device phases.

use dcs_sim::{Breakdown, Category};
use dcs_workloads::scenario::DesignUnderTest;

use crate::fig11::measure;

/// The categories in the order the operation traverses them.
const ORDER: [Category; 9] = [
    Category::FileSystem,
    Category::DeviceControl,
    Category::Read,
    Category::RequestCompletion,
    Category::GpuCopy,
    Category::GpuControl,
    Category::Hash,
    Category::NetworkStack,
    Category::Wire,
];

/// Lays a breakdown out as sequential `(category, start_us, end_us)`
/// spans.
pub fn timeline(b: &Breakdown) -> Vec<(Category, f64, f64)> {
    let mut t = 0.0;
    let mut out = Vec::new();
    for cat in ORDER {
        let dur = b.get(cat) as f64 / 1000.0;
        if dur > 0.0 {
            out.push((cat, t, t + dur));
            t += dur;
        }
    }
    out
}

/// Renders the figure for one measured SW-ctrl-P2P operation.
pub fn render(len: usize) -> String {
    let b = measure(DesignUnderTest::SwP2p, len, true);
    let spans = timeline(&b);
    let total = spans.last().map(|s| s.2).unwrap_or(0.0);
    let mut out = format!(
        "Figure 2 — software device-control timeline (SW-ctrl P2P, SSD->MD5->NIC, {} KiB)\n",
        len / 1024
    );
    for (cat, start, end) in &spans {
        let width = (((end - start) / total) * 40.0).ceil() as usize;
        out.push_str(&format!(
            "  {:>8.1}us..{:<8.1}us  {:<18} {}\n",
            start,
            end,
            cat.label(),
            "#".repeat(width.max(1))
        ));
    }
    out.push_str(&format!(
        "  total: {total:.1} us; every gap between device phases is host software\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_contiguous_and_ordered() {
        let b = measure(DesignUnderTest::SwP2p, 16 * 1024, true);
        let spans = timeline(&b);
        assert!(spans.len() >= 5, "{spans:?}");
        for w in spans.windows(2) {
            assert!((w[0].2 - w[1].1).abs() < 1e-9, "spans must abut");
        }
        // Software phases surround the device phases.
        assert!(spans.iter().any(|(c, _, _)| *c == Category::DeviceControl));
        assert!(spans.iter().any(|(c, _, _)| *c == Category::Read));
    }
}
