//! Extension experiment: the multi-tenant object-store sweep.
//!
//! Puts the serving layer (`dcs-store`) through four panels:
//!
//! 1. **YCSB A–F** — each standard mix as a single tenant on a cached
//!    4-node store: throughput, tails, and cache hit rate per workload
//!    letter.
//! 2. **Cache size** — workload C (zipfian point reads) as the per-node
//!    read cache grows from nothing: hit rate up, flash reads displaced
//!    (at 16 KiB values the e2e latency is wire-dominated, so the win is
//!    flash offload more than tail shaving).
//! 3. **Scan resistance** — a point-read tenant sharing the store with a
//!    YCSB-E scanner, admit-all vs scan-resistant admission: the ghost
//!    list keeps the scanner from flushing the point tenant's hot set.
//! 4. **Noisy neighbor** — a compliant tenant with an SLO sharing the
//!    store with a flooding tenant, FIFO vs weighted-fair queueing, plus
//!    the no-noisy baseline: WFQ holds the compliant tenant's SLO
//!    attainment at its baseline while FIFO lets the flood starve it.
//!
//! `repro store --json-out DIR` writes the machine-readable
//! `BENCH_cluster.json`; the committed copy at the repo root is
//! regenerated with `--quick` and byte-compared by the CI schema smoke
//! (see `tests/failover.rs`).

use dcs_cluster::ClusterReport;
use dcs_sim::Json;
use dcs_store::cache::{Admission, CacheConfig};
use dcs_store::qos::QosPolicy;
use dcs_store::{run_store, StoreConfig, TenantSpec};
use dcs_workloads::ycsb::YcsbWorkload;

/// Shared experiment shape; panels override tenants/cache/QoS.
fn base_cfg(quick: bool) -> StoreConfig {
    StoreConfig {
        nodes: 4,
        duration_ns: dcs_sim::time::ms(if quick { 8 } else { 30 }),
        warmup_ns: dcs_sim::time::ms(if quick { 2 } else { 6 }),
        ..StoreConfig::default()
    }
}

/// The default per-node cache for the YCSB panel: 64 MiB, scan-resistant.
fn default_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 64 << 20,
        admission: Admission::ScanResistant,
    }
}

/// One YCSB-panel run: workload `w` as a single tenant on the cached
/// store.
pub fn run_ycsb(w: YcsbWorkload, quick: bool) -> ClusterReport {
    let mut t = TenantSpec::new(w.letter(), w);
    t.keys = 4096;
    t.offered_gbps = 8.0;
    run_store(&StoreConfig {
        tenants: vec![t],
        cache: default_cache(),
        ..base_cfg(quick)
    })
}

/// One cache-size-panel run: workload C against `capacity_bytes` of
/// per-node cache.
pub fn run_cache_size(capacity_bytes: u64, quick: bool) -> ClusterReport {
    let mut t = TenantSpec::new("C", YcsbWorkload::C);
    t.keys = 4096;
    t.offered_gbps = 8.0;
    run_store(&StoreConfig {
        tenants: vec![t],
        cache: CacheConfig {
            capacity_bytes,
            admission: Admission::ScanResistant,
        },
        ..base_cfg(quick)
    })
}

/// One scan-resistance-panel run: a point-read tenant plus a YCSB-E
/// scanner under the given admission policy. The point tenant is
/// `per_tenant[0]`.
pub fn run_admission(admission: Admission, quick: bool) -> ClusterReport {
    // A small hot set (4 KiB values so the window holds many touches per
    // key) against a cache sized below the combined churn: admit-all lets
    // the scanner's sequential keys flush the hot set between touches,
    // scan-resistant admission never admits them.
    let mut point = TenantSpec::new("point", YcsbWorkload::C);
    point.keys = 256;
    point.value_bytes = 4 * 1024;
    point.offered_gbps = 6.0;
    let mut scan = TenantSpec::new("scan", YcsbWorkload::E);
    scan.keys = 64 * 1024;
    scan.offered_gbps = 20.0;
    run_store(&StoreConfig {
        tenants: vec![point, scan],
        cache: CacheConfig {
            capacity_bytes: 512 << 10,
            admission,
        },
        duration_ns: dcs_sim::time::ms(if quick { 16 } else { 40 }),
        warmup_ns: dcs_sim::time::ms(if quick { 4 } else { 8 }),
        ..base_cfg(quick)
    })
}

/// The compliant tenant of the noisy-neighbor panel: a modest YCSB-B mix
/// with a real latency SLO.
fn compliant() -> TenantSpec {
    let mut t = TenantSpec::new("compliant", YcsbWorkload::B);
    t.keys = 2048;
    t.offered_gbps = 3.0;
    t.slo_ns = dcs_sim::time::ms(12);
    t
}

/// One noisy-neighbor run on a 2-node store. `noisy` adds the flooding
/// tenant (an update-heavy A mix offered well past node capacity); `qos`
/// picks the queue discipline. The compliant tenant is `per_tenant[0]`.
pub fn run_noisy(noisy: bool, qos: QosPolicy, quick: bool) -> ClusterReport {
    let mut tenants = vec![compliant()];
    if noisy {
        let mut t = TenantSpec::new("noisy", YcsbWorkload::A);
        t.keys = 8192;
        t.offered_gbps = 24.0;
        t.slo_ns = 0;
        tenants.push(t);
    }
    run_store(&StoreConfig {
        nodes: 2,
        tenants,
        qos,
        cache: default_cache(),
        ..base_cfg(quick)
    })
}

/// Renders all four panels.
pub fn render(quick: bool) -> String {
    let mut out = String::from(
        "Store sweep — multi-tenant object store over the DCS rack (YCSB, caching, QoS)\n\n",
    );

    out.push_str("  YCSB A-F, 4 nodes, 64 MiB/node scan-resistant cache, 8 Gbps offered:\n");
    for w in YcsbWorkload::ALL {
        let r = run_ycsb(w, quick);
        out.push_str(&format!(
            "    {:<22} {:>6.2} Gbps  {:>6} ok  p50/p99 {:>6.0}/{:>7.0} us  cache {:>5.1}%  SLO {:>6.2}%\n",
            w.label(),
            r.goodput_gbps(),
            r.requests,
            r.latency_us(50.0),
            r.latency_us(99.0),
            r.cache_hit_rate() * 100.0,
            r.per_tenant[0].slo_attainment() * 100.0,
        ));
    }

    out.push_str("\n  Cache size, workload C (per-node budget -> hit rate, p50):\n");
    for cap in [0u64, 4 << 20, 16 << 20, 64 << 20] {
        let r = run_cache_size(cap, quick);
        out.push_str(&format!(
            "    {:>4} MiB  hit {:>5.1}%  p50 {:>6.0} us  p99 {:>7.0} us  {:>6.2} Gbps\n",
            cap >> 20,
            r.cache_hit_rate() * 100.0,
            r.latency_us(50.0),
            r.latency_us(99.0),
            r.goodput_gbps(),
        ));
    }

    out.push_str("\n  Scan resistance, point tenant + YCSB-E scanner, 512 KiB/node cache:\n");
    for (name, adm) in [
        ("admit-all", Admission::AdmitAll),
        ("scan-resistant", Admission::ScanResistant),
    ] {
        let r = run_admission(adm, quick);
        let point = &r.per_tenant[0];
        out.push_str(&format!(
            "    {name:<15} point-tenant cache {:>5.1}%  p99 {:>7.0} us  scans {:>5} ok\n",
            point.cache_hit_rate() * 100.0,
            point.latency_us(99.0),
            r.per_tenant[1].ok,
        ));
    }

    out.push_str(
        "\n  Noisy neighbor, 2 nodes: compliant B tenant (12 ms SLO) vs a 24 Gbps flood:\n",
    );
    let base = run_noisy(false, QosPolicy::Wfq, quick);
    out.push_str(&format!(
        "    {:<18} SLO {:>6.2}%  p99 {:>7.0} us  (no noisy tenant)\n",
        "baseline",
        base.per_tenant[0].slo_attainment() * 100.0,
        base.per_tenant[0].latency_us(99.0),
    ));
    for qos in [QosPolicy::Fifo, QosPolicy::Wfq] {
        let r = run_noisy(true, qos, quick);
        let c = &r.per_tenant[0];
        out.push_str(&format!(
            "    {:<18} SLO {:>6.2}%  p99 {:>7.0} us  denied {:>4}  noisy ok {:>6}\n",
            format!("noisy + {}", qos.label()),
            c.slo_attainment() * 100.0,
            c.latency_us(99.0),
            c.denied,
            r.per_tenant[1].ok,
        ));
    }
    out.push_str(
        "  (wfq holds the compliant tenant at its baseline; fifo hands the queue to the flood)\n",
    );
    out
}

fn tenant_json(r: &ClusterReport, idx: usize) -> Json {
    let t = &r.per_tenant[idx];
    Json::Obj(vec![
        ("name".into(), Json::Str(t.name.clone())),
        ("ok".into(), Json::Int(t.ok as i128)),
        ("denied".into(), Json::Int(t.denied as i128)),
        ("p50_us".into(), Json::Float(t.latency_us(50.0))),
        ("p99_us".into(), Json::Float(t.latency_us(99.0))),
        ("p999_us".into(), Json::Float(t.latency_us(99.9))),
        ("slo_attainment".into(), Json::Float(t.slo_attainment())),
        ("cache_hit_rate".into(), Json::Float(t.cache_hit_rate())),
    ])
}

fn run_json(r: &ClusterReport) -> Vec<(String, Json)> {
    vec![
        ("goodput_gbps".into(), Json::Float(r.goodput_gbps())),
        ("requests".into(), Json::Int(r.requests as i128)),
        ("p50_us".into(), Json::Float(r.latency_us(50.0))),
        ("p99_us".into(), Json::Float(r.latency_us(99.0))),
        ("cache_hit_rate".into(), Json::Float(r.cache_hit_rate())),
        ("stale_served".into(), Json::Int(r.stale_served as i128)),
        (
            "tenants".into(),
            Json::Arr((0..r.per_tenant.len()).map(|i| tenant_json(r, i)).collect()),
        ),
    ]
}

/// The sweep's data as machine-readable JSON (`BENCH_cluster.json`).
pub fn json_report(quick: bool) -> Json {
    let ycsb = YcsbWorkload::ALL
        .iter()
        .map(|&w| {
            let r = run_ycsb(w, quick);
            (w.letter().to_string(), Json::Obj(run_json(&r)))
        })
        .collect();
    let cache = [0u64, 4 << 20, 16 << 20, 64 << 20]
        .iter()
        .map(|&cap| {
            let r = run_cache_size(cap, quick);
            (format!("{}MiB", cap >> 20), Json::Obj(run_json(&r)))
        })
        .collect();
    let admission = [
        ("admit_all", Admission::AdmitAll),
        ("scan_resistant", Admission::ScanResistant),
    ]
    .iter()
    .map(|&(name, adm)| {
        let r = run_admission(adm, quick);
        (name.to_string(), Json::Obj(run_json(&r)))
    })
    .collect();
    let noisy = [
        ("baseline", false, QosPolicy::Wfq),
        ("fifo", true, QosPolicy::Fifo),
        ("wfq", true, QosPolicy::Wfq),
    ]
    .iter()
    .map(|&(name, noisy, qos)| {
        let r = run_noisy(noisy, qos, quick);
        (name.to_string(), Json::Obj(run_json(&r)))
    })
    .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("store".into())),
        ("quick".into(), Json::Bool(quick)),
        ("ycsb".into(), Json::Obj(ycsb)),
        ("cache_size".into(), Json::Obj(cache)),
        ("admission".into(), Json::Obj(admission)),
        ("noisy_neighbor".into(), Json::Obj(noisy)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_resistance_protects_the_point_tenant() {
        let all = run_admission(Admission::AdmitAll, true);
        let resist = run_admission(Admission::ScanResistant, true);
        assert!(
            resist.per_tenant[0].cache_hit_rate() > all.per_tenant[0].cache_hit_rate(),
            "ghost-list admission must beat admit-all under scan pressure: {:.2} vs {:.2}",
            resist.per_tenant[0].cache_hit_rate(),
            all.per_tenant[0].cache_hit_rate()
        );
        assert_eq!(resist.stale_served, 0);
        assert_eq!(all.stale_served, 0);
    }

    #[test]
    fn cache_size_sweep_is_monotone_in_hit_rate() {
        let none = run_cache_size(0, true);
        let big = run_cache_size(64 << 20, true);
        assert_eq!(none.cache_hits, 0);
        assert!(big.cache_hit_rate() > 0.3, "{:.2}", big.cache_hit_rate());
    }
}
