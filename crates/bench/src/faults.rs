//! Extension experiment: fault-injection sweep.
//!
//! Drives paired 16 KiB SSD→wire→MD5 transfers through each design while
//! `dcs_sim::fault` storms every injection site at increasing rates, and
//! reports transfer goodput plus the recovery tallies. This is the
//! benchmark-side view of the robustness machinery `tests/chaos.rs`
//! asserts on: the interesting outputs are how many faults each design's
//! retry/timeout/watchdog paths absorb and what survives to an error
//! completion.

use dcs_host::job::D2dOp;
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_pcie::PhysMemory;
use dcs_sim::{FaultPlan, Histogram};
use dcs_workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

use crate::probe::FaultReport;

/// Transfer size per round; small enough that whole-send retransmission
/// stays effective at percent-level frame-drop rates.
const LEN: usize = 16 * 1024;

/// Outcome of one (design, rate) cell of the sweep.
pub struct FaultRow {
    /// Design under test.
    pub design: DesignUnderTest,
    /// Per-site fault probability.
    pub rate: f64,
    /// Transfer rounds attempted.
    pub rounds: usize,
    /// Rounds where both the send and the receive job succeeded.
    pub ok_rounds: usize,
    /// Latency of successful rounds, ns.
    pub ok_lat: Histogram,
    /// Global fault/recovery tallies at the end of the run.
    pub report: FaultReport,
}

impl FaultRow {
    /// Mean latency of successful rounds, µs.
    pub fn mean_us(&self) -> f64 {
        self.ok_lat.mean().unwrap_or(0.0) / 1000.0
    }

    /// p99 latency of successful rounds, µs (the worst round at these
    /// sample counts).
    pub fn p99_us(&self) -> f64 {
        self.ok_lat.p99().unwrap_or(0) as f64 / 1000.0
    }
}

/// Runs `rounds` paired transfers on `design` with every fault site
/// firing at `rate` (0 disables injection entirely).
pub fn run(design: DesignUnderTest, rate: f64, rounds: usize) -> FaultRow {
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed: 0xFA17,
            ..Default::default()
        },
    );
    tb.sim.run();
    let pat: Vec<u8> = (0..LEN).map(|i| (i * 31 % 251) as u8).collect();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, &pat);
    if rate > 0.0 {
        tb.install_faults(|rng| FaultPlan::uniform(rate, rng));
    }
    let mut ok_rounds = 0;
    let mut ok_lat = Histogram::new();
    for round in 0..rounds {
        let flow = TcpFlow::example(1, 2, 43_000 + round as u16, 7_000 + round as u16);
        let server = tb.server.submit_to;
        let client = tb.client.submit_to;
        let done = tb.run_job_batch(vec![
            (
                server,
                vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len: LEN,
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                "fault-send",
            ),
            (
                client,
                vec![
                    D2dOp::NicRecv {
                        flow: flow.reversed(),
                        len: LEN,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                ],
                "fault-recv",
            ),
        ]);
        if done.iter().all(|d| d.ok) {
            ok_rounds += 1;
            // Round latency = the slower of the paired jobs (the drain
            // afterwards also retires recovery timers, which are not
            // part of the transfer).
            ok_lat.record(done.iter().map(|d| d.breakdown.total()).max().unwrap_or(0));
        }
    }
    FaultRow {
        design,
        rate,
        rounds,
        ok_rounds,
        ok_lat,
        report: FaultReport::capture(tb.sim.world()),
    }
}

/// Renders the sweep: goodput and recovery tallies per design and rate,
/// plus a per-site breakdown for DCS-ctrl at the highest rate.
pub fn render(quick: bool) -> String {
    let rounds = if quick { 4 } else { 12 };
    let rates = [0.0, 0.001, 0.005, 0.01];
    let designs = [
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ];
    let mut out = format!(
        "Fault sweep — paired {} KiB SSD→NIC→NIC→MD5 transfers, all sites firing\n",
        LEN / 1024
    );
    out.push_str(&format!(
        "  {:<12} {:>6} {:>7} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}\n",
        "design",
        "rate",
        "ok",
        "mean us",
        "p99 us",
        "injected",
        "recovered",
        "exhausted",
        "retries"
    ));
    for design in designs {
        for rate in rates {
            let row = run(design, rate, rounds);
            out.push_str(&format!(
                "  {:<12} {:>5.1}% {:>4}/{:<2} {:>10.1} {:>10.1} {:>9} {:>10} {:>10} {:>8}\n",
                row.design.to_string(),
                rate * 100.0,
                row.ok_rounds,
                row.rounds,
                row.mean_us(),
                row.p99_us(),
                row.report.injected,
                row.report.recovered,
                row.report.exhausted,
                row.report.retries,
            ));
        }
    }
    out.push_str("\n  Per-site tallies, dcs-ctrl @ 1.0% (injected/recovered/exhausted):\n");
    let mut tb = Testbed::new(
        DesignUnderTest::DcsCtrl,
        &TestbedConfig {
            seed: 0xFA17,
            ..Default::default()
        },
    );
    tb.sim.run();
    let pat: Vec<u8> = (0..LEN).map(|i| (i * 31 % 251) as u8).collect();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, &pat);
    tb.install_faults(|rng| FaultPlan::uniform(0.01, rng));
    for round in 0..rounds {
        let flow = TcpFlow::example(1, 2, 45_000 + round as u16, 6_000 + round as u16);
        let server = tb.server.submit_to;
        let client = tb.client.submit_to;
        let _ = tb.run_job_batch(vec![
            (
                server,
                vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len: LEN,
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                "site-send",
            ),
            (
                client,
                vec![D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                }],
                "site-recv",
            ),
        ]);
    }
    let mut sites: Vec<_> = tb.sim.world().expect::<FaultPlan>().tallies().collect();
    sites.sort_unstable_by_key(|(site, _)| *site);
    for (site, s) in sites {
        out.push_str(&format!(
            "      {:<14} {:>4} / {:>4} / {:>4}\n",
            site, s.injected, s.recovered, s.exhausted
        ));
    }
    out
}
