//! Figure 8 — kernel-side CPU utilization of simple SSD↔NIC
//! communication: stock Linux vs the optimized stack vs DCS-ctrl.
//!
//! §III-E's point: HDC Driver's bypasses (page cache, socket buffers,
//! dedicated queues) cut kernel CPU as much as the published software
//! optimizations do — and the hardware control path then removes most of
//! what remains.

use std::collections::BTreeMap;

use dcs_host::job::{D2dJob, D2dOp};
use dcs_nic::TcpFlow;
use dcs_sim::time;
use dcs_workloads::scenario::{
    start_scenario, DesignUnderTest, Request, ScenarioConfig, ScenarioOutcome, Testbed,
    TestbedConfig,
};

/// The designs Figure 8 compares.
pub const DESIGNS: [DesignUnderTest; 3] = [
    DesignUnderTest::Linux,
    DesignUnderTest::SwOpt,
    DesignUnderTest::DcsCtrl,
];

/// Streams SSD→NIC ops and returns the server's CPU breakdown.
pub fn kernel_utilization(
    design: DesignUnderTest,
    len: usize,
    offered_gbps: f64,
    duration_ns: u64,
) -> BTreeMap<String, f64> {
    let mut tb = Testbed::new(design, &TestbedConfig::default());
    tb.sim.run();
    let target = tb.server.submit_to;
    let key = tb.server.cpu_key.clone();
    let cores = tb.server.cores;
    let make = Box::new(
        move |_rng: &mut dcs_sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
            let id = *next_id;
            *next_id += 1;
            let job = D2dJob {
                id,
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: (id * 16) % (1 << 20),
                        len,
                    },
                    D2dOp::NicSend {
                        flow: TcpFlow::example(1, 2, 42_000 + slot as u16, 9_020 + slot as u16),
                        seq: 0,
                    },
                ],
                reply_to,
                tag: "kernel",
            };
            Request {
                jobs: vec![(target, job)],
                bytes: len,
                app_cost_ns: 0,
                app_tag: "app",
            }
        },
    );
    let scenario = ScenarioConfig {
        duration_ns,
        warmup_ns: duration_ns / 5,
        mean_interarrival_ns: len as f64 * 8.0 / offered_gbps,
        slots: 16,
    };
    start_scenario(&mut tb.sim, scenario, make, vec![(key.clone(), cores)]);
    tb.sim.run();
    let outcome = tb.sim.world().expect::<ScenarioOutcome>();
    outcome.reports[&key].cpu_breakdown.clone()
}

/// Runs the figure's sweep and returns per-design CPU breakdowns.
pub fn collect(quick: bool) -> Vec<(DesignUnderTest, BTreeMap<String, f64>)> {
    let len = 64 * 1024;
    let duration = if quick { time::ms(10) } else { time::ms(40) };
    DESIGNS
        .iter()
        .map(|&d| (d, kernel_utilization(d, len, 4.0, duration)))
        .collect()
}

/// The figure's data as machine-readable JSON (`BENCH_fig8.json`).
pub fn json_report(rows: &[(DesignUnderTest, BTreeMap<String, f64>)]) -> dcs_sim::Json {
    use dcs_sim::Json;
    let designs = rows
        .iter()
        .map(|(d, m)| {
            let breakdown: Vec<(String, Json)> = m
                .iter()
                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                .collect();
            let total: f64 = m.values().sum();
            (
                d.label().to_string(),
                Json::Obj(vec![
                    ("total_fraction_of_cores".into(), Json::Float(total)),
                    ("breakdown".into(), Json::Obj(breakdown)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("experiment".into(), Json::Str("fig8".into())),
        (
            "workload".into(),
            Json::Str("ssd-to-nic 64KiB @ 4Gbps".into()),
        ),
        ("unit".into(), Json::Str("fraction_of_cores".into())),
        ("designs".into(), Json::Obj(designs)),
    ])
}

/// Renders the figure.
pub fn render(quick: bool) -> String {
    let mut out = String::from(
        "Figure 8 — kernel-side CPU utilization, SSD->NIC streaming (64 KiB ops, 4 Gbps)\n",
    );
    let rows = collect(quick);
    let linux_total: f64 = rows[0].1.values().sum();
    for (d, m) in &rows {
        let total: f64 = m.values().sum();
        out.push_str(&format!(
            "  {:<12} {:>5.1}% of cores   ({:.2}x of Linux)\n",
            d.label(),
            total * 100.0,
            total / linux_total.max(1e-9)
        ));
    }
    out.push_str(
        "  (paper: DCS-ctrl reduces kernel-side CPU as much as the published SW optimizations)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcs_kernel_cpu_is_far_below_linux() {
        let len = 64 * 1024;
        let dur = time::ms(8);
        let linux: f64 = kernel_utilization(DesignUnderTest::Linux, len, 3.0, dur)
            .values()
            .sum();
        let opt: f64 = kernel_utilization(DesignUnderTest::SwOpt, len, 3.0, dur)
            .values()
            .sum();
        let dcs: f64 = kernel_utilization(DesignUnderTest::DcsCtrl, len, 3.0, dur)
            .values()
            .sum();
        assert!(linux > opt, "optimizations must help: {linux} vs {opt}");
        assert!(
            dcs < opt * 0.5,
            "hardware control must slash it: {dcs} vs {opt}"
        );
    }
}
