//! Engine-speed benchmark: wall-clock events/sec of the simulation
//! kernel, timing wheel vs the `BinaryHeap` reference calendar.
//!
//! ROADMAP item 1's receipts. Four scenarios, each run on both
//! calendars (the heap arm via `Simulator::set_reference_heap`, the
//! same hook the equivalence suites use):
//!
//! * **ping-pong** — two components bouncing one message; the pure
//!   per-event overhead floor (calendar depth 1, nothing to batch).
//! * **fan-out** — same-time bursts to a sink group while a large
//!   standing population of far-future timers (pending request
//!   timeouts, the classic timing-wheel motivation) deepens the
//!   calendar. The heap pays `O(log n)` per push/pop against the full
//!   population; the wheel appends to the current slot in `O(1)` and
//!   drains each burst through batched same-time/same-dst dispatch.
//! * **cluster-8** / **cluster-64** — the real rack workload (open-loop
//!   GET/PUT traffic over the ToR switch) at the old sweep ceiling and
//!   at the scale ROADMAP item 1 asks for.
//!
//! `repro engine --json-out .` writes `BENCH_engine.json`. Wall-clock
//! numbers vary across machines, so the committed file is *not*
//! byte-compared; instead `crates/bench/tests/bench_engine_json.rs`
//! checks the schema, regenerates the machine-independent fields
//! (`events`, `sim_ns` — identical on every host by determinism),
//! asserts wheel and heap arms agree on them, and holds the committed
//! fan-out speedup to the ≥5× acceptance floor.

use dcs_cluster::{build_cluster, ClusterConfig, ClusterOutcome};
use dcs_sim::{Component, ComponentId, Ctx, Json, Msg, SimTime, Simulator};

/// One scenario measured on one calendar.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (`ping-pong`, `fan-out`, `cluster-8`, `cluster-64`).
    pub name: &'static str,
    /// Calendar that ran it (`timing-wheel` / `reference-heap`).
    pub scheduler: &'static str,
    /// Events delivered inside the measured window (machine-independent).
    pub events: u64,
    /// Of those, events delivered by a same-time/same-dst batch.
    pub batched: u64,
    /// Final simulated time of the run, ns (machine-independent).
    pub sim_ns: u64,
    /// Wall-clock time of the measured window, ns.
    pub wall_ns: u64,
}

impl ScenarioResult {
    /// Delivered events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// A wheel/heap pair for one scenario.
pub type ScenarioPair = (ScenarioResult, ScenarioResult);

#[derive(Debug)]
struct Ball;

/// One side of the ping-pong: return every ball until the rally budget
/// is spent.
struct Pinger {
    peer: ComponentId,
    remaining: u64,
}
impl Component for Pinger {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        msg.downcast::<Ball>().expect("pingers only see balls");
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_in(100, self.peer, Ball);
        }
    }
}

/// Two components, one message, N bounces: the per-event overhead floor.
pub fn run_ping_pong(quick: bool, reference_heap: bool) -> ScenarioResult {
    let bounces: u64 = if quick { 400_000 } else { 4_000_000 };
    let mut sim = Simulator::new(1);
    if reference_heap {
        sim.set_reference_heap();
    }
    let a = sim.reserve("ping");
    let b = sim.reserve("pong");
    sim.install(
        a,
        Pinger {
            peer: b,
            remaining: bounces / 2,
        },
    );
    sim.install(
        b,
        Pinger {
            peer: a,
            remaining: bounces / 2,
        },
    );
    sim.kickoff(a, Ball);
    // dcs-lint: allow(wall-clock) — the benchmark measures host wall time of the kernel itself; nothing feeds back into simulation state
    let start = std::time::Instant::now();
    sim.run();
    let wall_ns = start.elapsed().as_nanos() as u64;
    ScenarioResult {
        name: "ping-pong",
        scheduler: sim.scheduler_name(),
        events: sim.delivered_events(),
        batched: sim.batched_events(),
        sim_ns: sim.now().as_nanos(),
        wall_ns,
    }
}

/// A sink that just consumes the pulse (zero-sized payload: no
/// allocation anywhere on the hot path, so the calendar dominates).
struct Sink;
#[derive(Debug)]
struct Pulse;
impl Component for Sink {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        msg.downcast::<Pulse>().expect("sinks only see pulses");
    }
}

/// Same-time bursts against a deep calendar of standing timers.
pub fn run_fan_out(quick: bool, reference_heap: bool) -> ScenarioResult {
    // Deep enough that the heap's sift paths fall out of cache even on
    // big-L3 server parts (8M entries ≈ 400 MB): pending timeouts, one
    // per outstanding request, are exactly the population a rack at
    // scale carries. The wheel parks them in the far tier and never
    // touches them — the bounded peek under `run_until` refuses to
    // materialize past the deadline.
    let standing: u64 = if quick { 8_388_608 } else { 16_777_216 };
    let rounds: u64 = if quick { 5_000 } else { 20_000 };
    const SINKS: usize = 4;
    const BURST_PER_SINK: u64 = 32;
    // Far enough out that no standing timer fires inside the run.
    const FAR_BASE: u64 = 1 << 40;

    let mut sim = Simulator::new(2);
    if reference_heap {
        sim.set_reference_heap();
    }
    let sinks: Vec<ComponentId> = (0..SINKS)
        .map(|i| sim.add(&format!("sink{i}"), Sink))
        .collect();
    // The standing population: pending timeouts, one per outstanding
    // request, with scattered deadlines (a sorted population would
    // degenerate the heap's sift-down to one always-warm spine). They
    // never fire — their cost is the depth they add to every push/pop
    // the bursts do. splitmix64 keeps the schedule identical on both
    // arms without touching the world RNG.
    let mut mix = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..standing {
        mix = mix.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = mix;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        sim.schedule_at(
            SimTime::from_nanos(FAR_BASE + (z & ((1 << 29) - 1))),
            sinks[(i as usize) % SINKS],
            Pulse,
        );
    }
    // One burst round: sink-major order, so consecutive sequence
    // numbers share a dst — exactly the shape batched dispatch drains
    // in one component borrow.
    let round = |sim: &mut Simulator, t: u64| {
        for &s in &sinks {
            for _ in 0..BURST_PER_SINK {
                sim.schedule_at(SimTime::from_nanos(t), s, Pulse);
            }
        }
        sim.run_until(SimTime::from_nanos(t));
    };
    // Warm-up: several full wheel revolutions (128 slots each) so the
    // measured window sees the steady state the pooling invariant
    // promises — every slot buffer allocated and recycled in place,
    // nothing allocated per event. The heap arm gets the same warm-up
    // (its backing array reaches final capacity here instead of
    // reallocating mid-measurement).
    let mut t = 1_000u64;
    for _ in 0..512u64 {
        round(&mut sim, t);
        t += 512;
    }
    let delivered0 = sim.delivered_events();
    let batched0 = sim.batched_events();
    // dcs-lint: allow(wall-clock) — the benchmark measures host wall time of the kernel itself; nothing feeds back into simulation state
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        round(&mut sim, t);
        t += 512;
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    ScenarioResult {
        name: "fan-out",
        scheduler: sim.scheduler_name(),
        events: sim.delivered_events() - delivered0,
        batched: sim.batched_events() - batched0,
        sim_ns: sim.now().as_nanos(),
        wall_ns,
    }
}

/// The rack workload at `nodes` nodes: open-loop GET/PUT traffic over
/// the ToR switch. Bring-up runs outside the measured window (and, for
/// the heap arm, before the calendar swap — equivalence makes the
/// starting state identical either way).
pub fn run_cluster_n(nodes: usize, quick: bool, reference_heap: bool) -> ScenarioResult {
    let cfg = ClusterConfig {
        nodes,
        offered_gbps_per_node: 2.0,
        duration_ns: dcs_sim::time::ms(if quick { 3 } else { 12 }),
        warmup_ns: dcs_sim::time::ms(1),
        seed: 0xE26 + nodes as u64,
        ..ClusterConfig::default()
    };
    let mut cluster = build_cluster(&cfg);
    if reference_heap {
        cluster.sim.set_reference_heap();
    }
    let bringup = cluster.sim.delivered_events();
    let batched0 = cluster.sim.batched_events();
    // dcs-lint: allow(wall-clock) — the benchmark measures host wall time of the kernel itself; nothing feeds back into simulation state
    let start = std::time::Instant::now();
    cluster.sim.run();
    let wall_ns = start.elapsed().as_nanos() as u64;
    assert!(cluster.sim.is_idle(), "cluster benchmark must drain");
    let report = cluster
        .sim
        .world_mut()
        .remove::<ClusterOutcome>()
        .expect("cluster run leaves a report")
        .0;
    assert!(report.requests > 0, "benchmark window must serve traffic");
    ScenarioResult {
        name: if nodes == 8 {
            "cluster-8"
        } else {
            "cluster-64"
        },
        scheduler: cluster.sim.scheduler_name(),
        events: cluster.sim.delivered_events() - bringup,
        batched: cluster.sim.batched_events() - batched0,
        sim_ns: cluster.sim.now().as_nanos(),
        wall_ns,
    }
}

/// Runs every scenario on both calendars: `(wheel, heap)` per entry.
pub fn collect(quick: bool) -> Vec<ScenarioPair> {
    vec![
        (run_ping_pong(quick, false), run_ping_pong(quick, true)),
        (run_fan_out(quick, false), run_fan_out(quick, true)),
        (
            run_cluster_n(8, quick, false),
            run_cluster_n(8, quick, true),
        ),
        (
            run_cluster_n(64, quick, false),
            run_cluster_n(64, quick, true),
        ),
    ]
}

/// Wheel-over-heap wall-clock speedup for one scenario pair.
pub fn speedup(pair: &ScenarioPair) -> f64 {
    pair.0.events_per_sec() / pair.1.events_per_sec().max(f64::MIN_POSITIVE)
}

/// Renders the engine table from collected rows.
pub fn render_rows(rows: &[ScenarioPair]) -> String {
    let mut out = String::from(
        "Engine speed — simulation-kernel events/sec, timing wheel vs heap reference\n\n",
    );
    out.push_str(&format!(
        "  {:<12} {:>12} {:>14} {:>14} {:>9} {:>9}\n",
        "scenario", "events", "wheel ev/s", "heap ev/s", "speedup", "batched%"
    ));
    for pair in rows {
        let (wheel, heap) = pair;
        debug_assert_eq!(wheel.events, heap.events, "arms must deliver identically");
        out.push_str(&format!(
            "  {:<12} {:>12} {:>14.0} {:>14.0} {:>8.2}x {:>8.1}%\n",
            wheel.name,
            wheel.events,
            wheel.events_per_sec(),
            heap.events_per_sec(),
            speedup(pair),
            wheel.batched as f64 / wheel.events.max(1) as f64 * 100.0,
        ));
    }
    out.push_str(
        "  (standing far-future timers deepen the fan-out calendar; the wheel keeps\n   \
         burst pushes O(1) and drains same-time/same-dst runs in one component borrow)\n",
    );
    out
}

/// Convenience wrapper: collect then render.
pub fn render(quick: bool) -> String {
    render_rows(&collect(quick))
}

fn scenario_json(r: &ScenarioResult) -> Json {
    Json::Obj(vec![
        ("scheduler".into(), Json::Str(r.scheduler.into())),
        ("events".into(), Json::Int(r.events as i128)),
        ("batched".into(), Json::Int(r.batched as i128)),
        ("sim_ns".into(), Json::Int(r.sim_ns as i128)),
        ("wall_ns".into(), Json::Int(r.wall_ns as i128)),
        ("events_per_sec".into(), Json::Float(r.events_per_sec())),
    ])
}

/// The machine-readable report (`BENCH_engine.json`).
pub fn json_report(rows: &[ScenarioPair], quick: bool) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str("engine".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "scenarios".into(),
            Json::Arr(
                rows.iter()
                    .map(|pair| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(pair.0.name.into())),
                            ("wheel".into(), scenario_json(&pair.0)),
                            ("heap".into(), scenario_json(&pair.1)),
                            ("speedup".into(), Json::Float(speedup(pair))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_arms_agree_on_deterministic_fields() {
        // Tiny-budget smoke: both calendars must deliver identical event
        // counts and identical final sim time (full-size equivalence is
        // the scheduler_equiv suites' job).
        let wheel = run_ping_pong(true, false);
        let heap = run_ping_pong(true, true);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.sim_ns, heap.sim_ns);
        assert_eq!(wheel.scheduler, "timing-wheel");
        assert_eq!(heap.scheduler, "reference-heap");
        assert!(wheel.events > 100_000);
    }

    #[test]
    fn fan_out_batches_on_the_wheel() {
        let wheel = run_fan_out(true, false);
        let heap = run_fan_out(true, true);
        assert_eq!(wheel.events, heap.events);
        assert_eq!(wheel.sim_ns, heap.sim_ns);
        // Sink-major same-time bursts: most deliveries ride a batch.
        assert!(
            wheel.batched * 2 > wheel.events,
            "batched {} of {}",
            wheel.batched,
            wheel.events
        );
    }
}
