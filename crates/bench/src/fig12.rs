//! Figure 12 — CPU-utilization breakdown of the scale-out storage
//! applications at matched throughput.
//!
//! (a) OpenStack Swift (PUT/GET with MD5 integrity); (b) the HDFS
//! balancer (sender / receiver, CRC32 on receive). Headline: DCS-ctrl
//! cuts server CPU utilization by ≈52% vs software-controlled P2P.

use dcs_sim::time;
use dcs_workloads::{
    run_hdfs, run_swift, DesignUnderTest, HdfsConfig, SwiftConfig, WorkloadReport,
};

/// Swift configuration used by the figure (shortened in quick mode).
pub fn swift_cfg(quick: bool) -> SwiftConfig {
    SwiftConfig {
        duration_ns: if quick { time::ms(60) } else { time::ms(160) },
        warmup_ns: if quick { time::ms(15) } else { time::ms(40) },
        ..SwiftConfig::default()
    }
}

/// HDFS configuration used by the figure.
pub fn hdfs_cfg(quick: bool) -> HdfsConfig {
    HdfsConfig {
        duration_ns: if quick { time::ms(40) } else { time::ms(120) },
        warmup_ns: if quick { time::ms(10) } else { time::ms(30) },
        ..HdfsConfig::default()
    }
}

/// Runs sub-figure (a): Swift server reports per design.
pub fn run_swift_rows(quick: bool) -> Vec<(DesignUnderTest, WorkloadReport)> {
    DesignUnderTest::FIG12
        .iter()
        .map(|&d| (d, run_swift(d, &swift_cfg(quick))))
        .collect()
}

/// Runs sub-figure (b): HDFS `(sender, receiver)` reports per design.
pub fn run_hdfs_rows(quick: bool) -> Vec<(DesignUnderTest, WorkloadReport, WorkloadReport)> {
    DesignUnderTest::FIG12
        .iter()
        .map(|&d| {
            let (s, r) = run_hdfs(d, &hdfs_cfg(quick));
            (d, s, r)
        })
        .collect()
}

/// CPU-utilization reduction of DCS-ctrl vs SW-ctrl P2P at equal
/// throughput (utilization normalized per Gbps to compare fairly).
pub fn cpu_reduction(rows: &[(DesignUnderTest, WorkloadReport)]) -> f64 {
    let norm = |d: DesignUnderTest| {
        let r = &rows
            .iter()
            .find(|(x, _)| *x == d)
            .expect("design measured")
            .1;
        r.cpu_utilization() / r.throughput_gbps().max(1e-9)
    };
    1.0 - norm(DesignUnderTest::DcsCtrl) / norm(DesignUnderTest::SwP2p)
}

/// Renders both sub-figures with the headline reduction.
pub fn render(quick: bool) -> String {
    let mut out = String::from("Figure 12 — CPU utilization of scale-out storage applications\n");
    out.push_str("\n(a) OpenStack Swift (PUT/GET, MD5 integrity)\n");
    let swift = run_swift_rows(quick);
    for (d, r) in &swift {
        out.push_str(&r.render(d.label()));
    }
    out.push_str(&format!(
        "  CPU reduction (per Gbps), DCS-ctrl vs SW-ctrl P2P: {:.0}%  (paper headline: 52%)\n",
        cpu_reduction(&swift) * 100.0
    ));
    out.push_str("\n(b) HDFS balancer (CRC32 on receive)\n");
    for (d, snd, rcv) in &run_hdfs_rows(quick) {
        out.push_str(&snd.render(&format!("{} sender", d.label())));
        out.push_str(&rcv.render(&format!("{} receiver", d.label())));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swift_cpu_reduction_is_substantial() {
        let rows = run_swift_rows(true);
        for (d, r) in &rows {
            assert!(r.requests > 5, "{d}: {r:?}");
            assert_eq!(r.failures, 0, "{d}");
        }
        let red = cpu_reduction(&rows);
        assert!(
            red > 0.35,
            "reduction {red:.2} must approach the paper's 52%"
        );
        assert!(red < 0.95, "reduction {red:.2} must stay plausible");
    }

    #[test]
    fn hdfs_receiver_benefits_most() {
        let rows = run_hdfs_rows(true);
        let get = |d: DesignUnderTest| {
            rows.iter()
                .find(|(x, _, _)| *x == d)
                .map(|(_, s, r)| (s.clone(), r.clone()))
                .unwrap()
        };
        let (_, rcv_p2p) = get(DesignUnderTest::SwP2p);
        let (_, rcv_dcs) = get(DesignUnderTest::DcsCtrl);
        let norm_p2p = rcv_p2p.cpu_utilization() / rcv_p2p.throughput_gbps().max(1e-9);
        let norm_dcs = rcv_dcs.cpu_utilization() / rcv_dcs.throughput_gbps().max(1e-9);
        assert!(
            norm_dcs < norm_p2p * 0.5,
            "receiver: dcs {norm_dcs:.4} vs p2p {norm_p2p:.4}"
        );
    }
}
