//! Table IV — HDC Engine resource utilization on the Virtex-7, plus the
//! derived headroom check for adding NDP units (§IV-C: "the FPGA has
//! enough remaining resources to add NDP units").

use dcs_core::resources::{ResourceReport, TABLE4_ENGINE, VIRTEX7_VC707};
use dcs_ndp::NdpFunction;
use dcs_sim::Bandwidth;

/// Builds the engine+NDP resource report at a target per-function rate.
pub fn run(target: Bandwidth) -> ResourceReport {
    ResourceReport::for_functions(
        &[
            NdpFunction::Md5,
            NdpFunction::Sha1,
            NdpFunction::Sha256,
            NdpFunction::Crc32,
            NdpFunction::Aes256Encrypt,
            NdpFunction::GzipCompress,
        ],
        target,
    )
}

/// Renders the table and the headroom derivation.
pub fn render() -> String {
    let mut out = String::from("Table IV — HDC Engine Virtex-7 resource utilization (modeled)\n");
    out.push_str(&format!(
        "  LUTs      {:>7} / {:>7} ({:.0}%)\n",
        TABLE4_ENGINE.luts,
        VIRTEX7_VC707.luts,
        TABLE4_ENGINE.luts as f64 * 100.0 / VIRTEX7_VC707.luts as f64
    ));
    out.push_str(&format!(
        "  Registers {:>7} / {:>7} ({:.0}%)\n",
        TABLE4_ENGINE.registers,
        VIRTEX7_VC707.registers,
        TABLE4_ENGINE.registers as f64 * 100.0 / VIRTEX7_VC707.registers as f64
    ));
    out.push_str(&format!(
        "  BRAMs     {:>7} / {:>7} ({:.0}%)\n",
        TABLE4_ENGINE.brams,
        VIRTEX7_VC707.brams,
        TABLE4_ENGINE.brams as f64 * 100.0 / VIRTEX7_VC707.brams as f64
    ));
    out.push_str(&format!(
        "  Power     {:>7.2} W\n",
        TABLE4_ENGINE.power_watts
    ));
    let report = run(Bandwidth::gbps(10.0));
    out.push_str(&format!(
        "  + full NDP bank at 10 Gbps/function: {} LUTs total ({:.0}% of device) — fits: {}\n",
        report.total_luts(),
        report.lut_utilization() * 100.0,
        report.fits()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_plus_full_ndp_bank_fits() {
        let report = run(Bandwidth::gbps(10.0));
        assert!(report.fits());
        assert!(
            report.lut_utilization() > 0.38,
            "engine baseline alone is 38%"
        );
        assert!(report.lut_utilization() < 0.70);
    }

    #[test]
    fn forty_gbps_bank_grows_but_may_still_fit() {
        let r10 = run(Bandwidth::gbps(10.0));
        let r40 = run(Bandwidth::gbps(40.0));
        assert!(r40.total_luts() > r10.total_luts());
    }
}
