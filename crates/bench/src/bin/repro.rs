//! `repro` — regenerate every table and figure of the DCS-ctrl paper.
//!
//! ```text
//! repro [--quick] [--list] [--trace-out FILE] [--json-out DIR]
//!       [all|engine|fig2|fig3|fig8|fig11|fig12|fig13|table3|table4|ablation|faults|integrity|cluster|cluster-failover|cluster-gray|anatomy|store]...
//! ```
//!
//! With no experiment arguments, runs everything. `--quick` shortens the
//! workload windows (useful for smoke runs; EXPERIMENTS.md numbers come
//! from the full runs). `--list` prints the experiment names, one per
//! line, and exits. `--trace-out FILE` additionally runs a traced
//! request mix and writes Chrome trace-event JSON (open in Perfetto).
//! `--json-out DIR` writes machine-readable `BENCH_<exp>.json` files for
//! experiments with structured reports. Unknown experiment names are
//! rejected up front — before anything runs — with the list of valid
//! ones.

use std::env;
use std::fs;
use std::process::exit;

/// Every experiment, in presentation order.
const EXPERIMENTS: [&str; 17] = [
    "engine",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "ablation",
    "faults",
    "integrity",
    "cluster",
    "cluster-failover",
    "cluster-gray",
    "anatomy",
    "store",
];

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut quick = false;
    let mut trace_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut requested: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            // Machine-friendly enumeration (shell completion, CI loops).
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("--trace-out requires a file path");
                    exit(2);
                }
            },
            "--json-out" => match it.next() {
                Some(d) => json_out = Some(d.clone()),
                None => {
                    eprintln!("--json-out requires a directory");
                    exit(2);
                }
            },
            s if s.starts_with("--") => {
                eprintln!("unknown flag: {s}");
                eprintln!("flags: --quick --list --trace-out FILE --json-out DIR");
                exit(2);
            }
            s => requested.push(s),
        }
    }

    // Validate everything before running anything: a typo at the end of
    // the list must not cost a full sweep first.
    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|w| *w != "all" && !EXPERIMENTS.contains(w))
        .collect();
    if !unknown.is_empty() {
        for u in &unknown {
            eprintln!("unknown experiment: {u}");
        }
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        exit(2);
    }

    let wanted: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        requested
    };

    println!("DCS-ctrl reproduction harness (quick={quick})");
    println!("==============================================\n");
    for w in &wanted {
        let out = match *w {
            "engine" => dcs_bench::engine::render(quick),
            "fig2" => dcs_bench::fig2::render(4096),
            "fig3" => dcs_bench::fig3::render(16 * 1024, quick),
            "fig8" => dcs_bench::fig8::render(quick),
            "fig11" => dcs_bench::fig11::render(4096),
            "fig12" => dcs_bench::fig12::render(quick),
            "fig13" => dcs_bench::fig13::render(quick),
            "table3" => dcs_bench::table3::render(if quick { 1 << 19 } else { 4 << 20 }),
            "table4" => dcs_bench::table4::render(),
            "ablation" => dcs_bench::ablation::render(quick),
            "faults" => dcs_bench::faults::render(quick),
            // The integrity experiment doubles as the CI chaos smoke: a
            // fuzz violation writes repro artifacts and fails the run.
            "integrity" => {
                let mut out = dcs_bench::integrity::render(quick);
                match dcs_bench::integrity::fuzz_smoke(quick, std::path::Path::new("fuzz-repro")) {
                    Ok(summary) => out.push_str(&summary),
                    Err(violation) => {
                        println!("{out}");
                        eprintln!("{violation}");
                        exit(1);
                    }
                }
                out
            }
            "cluster" => dcs_bench::cluster::render(quick),
            "cluster-failover" => dcs_bench::cluster::render_failover(quick),
            "cluster-gray" => dcs_bench::cluster::render_gray(quick),
            "anatomy" => dcs_bench::anatomy::render(),
            "store" => dcs_bench::store::render(quick),
            other => unreachable!("validated above: {other}"),
        };
        println!("{out}");
        println!("----------------------------------------------\n");
    }

    if let Some(dir) = &json_out {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            exit(1);
        }
        if wanted.contains(&"engine") {
            let rows = dcs_bench::engine::collect(quick);
            let path = format!("{dir}/BENCH_engine.json");
            let body = dcs_bench::engine::json_report(&rows, quick).render();
            if let Err(e) = fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            println!("wrote {path}");
        }
        if wanted.contains(&"fig8") {
            let rows = dcs_bench::fig8::collect(quick);
            let path = format!("{dir}/BENCH_fig8.json");
            let body = dcs_bench::fig8::json_report(&rows).render();
            if let Err(e) = fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            println!("wrote {path}");
        }
        if wanted.contains(&"store") {
            let path = format!("{dir}/BENCH_cluster.json");
            let body = dcs_bench::store::json_report(quick).render();
            if let Err(e) = fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            println!("wrote {path}");
        }
    }

    if let Some(path) = &trace_out {
        let cap = dcs_bench::anatomy::capture(dcs_workloads::scenario::DesignUnderTest::DcsCtrl);
        if let Err(e) = fs::write(path, &cap.trace_json) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        println!(
            "wrote {path} ({} requests traced; open in Perfetto)",
            cap.requests.len()
        );
        print!("{}", cap.table);
    }
}
