//! `repro` — regenerate every table and figure of the DCS-ctrl paper.
//!
//! ```text
//! repro [--quick] [all|fig2|fig3|fig8|fig11|fig12|fig13|table3|table4|ablation|faults]...
//! ```
//!
//! With no experiment arguments, runs everything. `--quick` shortens the
//! workload windows (useful for smoke runs; EXPERIMENTS.md numbers come
//! from the full runs).

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table3", "table4", "fig2", "fig3", "fig8", "fig11", "fig12", "fig13", "ablation",
            "faults",
        ];
    }
    println!("DCS-ctrl reproduction harness (quick={quick})");
    println!("==============================================\n");
    for w in wanted {
        let out = match w {
            "fig2" => dcs_bench::fig2::render(4096),
            "fig3" => dcs_bench::fig3::render(16 * 1024, quick),
            "fig8" => dcs_bench::fig8::render(quick),
            "fig11" => dcs_bench::fig11::render(4096),
            "fig12" => dcs_bench::fig12::render(quick),
            "fig13" => dcs_bench::fig13::render(quick),
            "table3" => dcs_bench::table3::render(if quick { 1 << 19 } else { 4 << 20 }),
            "table4" => dcs_bench::table4::render(),
            "ablation" => dcs_bench::ablation::render(quick),
            "faults" => dcs_bench::faults::render(quick),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        println!("{out}");
        println!("----------------------------------------------\n");
    }
}
