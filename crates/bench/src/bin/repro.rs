//! `repro` — regenerate every table and figure of the DCS-ctrl paper.
//!
//! ```text
//! repro [--quick] [all|fig2|fig3|fig8|fig11|fig12|fig13|table3|table4|ablation|faults|cluster|cluster-failover]...
//! ```
//!
//! With no experiment arguments, runs everything. `--quick` shortens the
//! workload windows (useful for smoke runs; EXPERIMENTS.md numbers come
//! from the full runs). Unknown experiment names are rejected up front —
//! before anything runs — with the list of valid ones.

use std::env;

/// Every experiment, in presentation order.
const EXPERIMENTS: [&str; 12] = [
    "table3", "table4", "fig2", "fig3", "fig8", "fig11", "fig12", "fig13", "ablation", "faults",
    "cluster", "cluster-failover",
];

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();

    // Validate everything before running anything: a typo at the end of
    // the list must not cost a full sweep first.
    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|w| *w != "all" && !EXPERIMENTS.contains(w))
        .collect();
    if !unknown.is_empty() {
        for u in &unknown {
            eprintln!("unknown experiment: {u}");
        }
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let wanted: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        requested
    };

    println!("DCS-ctrl reproduction harness (quick={quick})");
    println!("==============================================\n");
    for w in wanted {
        let out = match w {
            "fig2" => dcs_bench::fig2::render(4096),
            "fig3" => dcs_bench::fig3::render(16 * 1024, quick),
            "fig8" => dcs_bench::fig8::render(quick),
            "fig11" => dcs_bench::fig11::render(4096),
            "fig12" => dcs_bench::fig12::render(quick),
            "fig13" => dcs_bench::fig13::render(quick),
            "table3" => dcs_bench::table3::render(if quick { 1 << 19 } else { 4 << 20 }),
            "table4" => dcs_bench::table4::render(),
            "ablation" => dcs_bench::ablation::render(quick),
            "faults" => dcs_bench::faults::render(quick),
            "cluster" => dcs_bench::cluster::render(quick),
            "cluster-failover" => dcs_bench::cluster::render_failover(quick),
            other => unreachable!("validated above: {other}"),
        };
        println!("{out}");
        println!("----------------------------------------------\n");
    }
}
