//! Extension experiment: the cluster sweep.
//!
//! Scales the paper's single-server question up one level: N DCS servers
//! behind a modeled top-of-rack switch serving a Swift-style GET/PUT mix
//! through a load-balancing front end (see `dcs-cluster`). Three panels:
//!
//! 1. **Scaling** — goodput and tails as the rack grows 1→8 nodes at a
//!    fixed per-node offered load; goodput should scale near-linearly
//!    because nodes share nothing but the (overprovisioned) uplink.
//! 2. **Policy × load** — round-robin vs least-outstanding vs
//!    join-shortest-queue at moderate-to-saturating offered load; the
//!    queue-aware policies win on tails once queues form.
//! 3. **Degraded node** — one node's port drops to a tenth of line rate
//!    mid-run; JSQ reroutes around the backlog while oblivious
//!    round-robin keeps feeding it.
//!
//! A second sweep, `cluster-failover` ([`render_failover`]), measures the
//! node-failure tolerance layer: a whole-node crash mid-window under each
//! policy (detection time, availability through the failure, failover
//! retries, hedges, re-replication), the ablation with the health layer
//! disabled, and a hang long enough to be declared dead and revived.
//!
//! A third sweep, `cluster-gray` ([`render_gray`]), measures the
//! gray-failure layer: fail-slow nodes that keep acking probes (factor
//! sweep × differential-detection ablation), a degraded ToR link, and the
//! crash-restart-rejoin lifecycle with bandwidth-capped anti-entropy.

use dcs_cluster::{ClusterConfig, ClusterReport, Degrade, HealthConfig, LbPolicy, NodeFault};
use dcs_workloads::gen::SizeDistribution;

/// Offered load per node for the scaling and degrade panels, Gbps.
const BASE_GBPS: f64 = 6.0;

/// Offered load per node for the failover panels, Gbps: N-1-survivable
/// provisioning, so three survivors can absorb a dead peer's share
/// without shedding.
const FAILOVER_GBPS: f64 = 5.0;

/// Shared experiment shape; panels override nodes/policy/load/degrade.
fn base_cfg(quick: bool) -> ClusterConfig {
    // Request sojourn under load is ~10 ms (48-deep node pipelines), so
    // the measured window must be several times that or completions in
    // flight at the window edge dominate the tally.
    ClusterConfig {
        duration_ns: dcs_sim::time::ms(if quick { 12 } else { 60 }),
        warmup_ns: dcs_sim::time::ms(if quick { 3 } else { 10 }),
        ..ClusterConfig::default()
    }
}

/// One scaling-panel run: `nodes` nodes under JSQ at the base per-node
/// load.
pub fn run_scale(nodes: usize, quick: bool) -> ClusterReport {
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes,
        policy: LbPolicy::JoinShortestQueue,
        offered_gbps_per_node: BASE_GBPS,
        ..base_cfg(quick)
    })
}

/// One policy-panel run: 4 nodes under `policy` at `offered` Gbps/node.
pub fn run_policy(policy: LbPolicy, offered: f64, quick: bool) -> ClusterReport {
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy,
        offered_gbps_per_node: offered,
        ..base_cfg(quick)
    })
}

/// One degrade-panel run: 4 nodes at the base load; node 0's port drops
/// to 10% of line rate once warm-up ends.
pub fn run_degrade(policy: LbPolicy, quick: bool) -> ClusterReport {
    let cfg = base_cfg(quick);
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy,
        offered_gbps_per_node: BASE_GBPS,
        degrade: Some(Degrade {
            node: 0,
            at_ns: cfg.warmup_ns,
            factor: 0.1,
        }),
        ..cfg
    })
}

/// One failover-panel run: 4 nodes at N-1-survivable load; node 1
/// crashes a quarter of the way into the measured window.
pub fn run_failover(policy: LbPolicy, health: HealthConfig, quick: bool) -> ClusterReport {
    let cfg = base_cfg(quick);
    let crash_at = cfg.warmup_ns + (cfg.duration_ns - cfg.warmup_ns) / 4;
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy,
        offered_gbps_per_node: FAILOVER_GBPS,
        node_faults: vec![NodeFault::Crash {
            node: 1,
            at_ns: crash_at,
            restart_at_ns: None,
        }],
        health,
        ..cfg
    })
}

/// One hang-panel run: node 2 freezes mid-window against a detector slow
/// enough (bound ~7 ms) that hedged GETs beat failover to the rescue.
pub fn run_hang(quick: bool) -> ClusterReport {
    let cfg = base_cfg(quick);
    let at = cfg.warmup_ns + (cfg.duration_ns - cfg.warmup_ns) / 4;
    // Quick windows are too short for an 8 ms freeze to resolve before the
    // window closes; shrink it so the smoke run still shows the recovery.
    let for_ns = dcs_sim::time::ms(if quick { 5 } else { 8 });
    let health = HealthConfig {
        dead_after: 10,
        probe_timeout_ns: 2_000_000,
        hedge_max_ns: 4_000_000,
        hedge_default_ns: 4_000_000,
        ..HealthConfig::default()
    };
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy: LbPolicy::JoinShortestQueue,
        offered_gbps_per_node: FAILOVER_GBPS,
        node_faults: vec![NodeFault::Hang {
            node: 2,
            at_ns: at,
            for_ns,
        }],
        health,
        ..cfg
    })
}

/// Shared shape of the gray-failure runs: small objects at a high
/// request rate, because differential detection is statistics — the
/// per-node latency EWMA needs a steady sample stream to converge
/// between probe ticks, and sub-millisecond per-request holds must
/// resolve inside the window so the tally sees them.
fn gray_cfg(quick: bool) -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        policy: LbPolicy::JoinShortestQueue,
        objects: 256,
        sizes: SizeDistribution {
            mu: 9.2,
            sigma: 0.6,
            min: 4096,
            max: 64 * 1024,
        },
        ..base_cfg(quick)
    }
}

/// One fail-slow run: node 1 serves `factor`× slower from the end of
/// warm-up through half of the measured window, while acking every probe
/// on time — the timeout detector is blind to it by construction; only
/// `health`'s differential arm can see it. Half a window of fault leaves
/// the other half for the readmission walk once the node runs fast again.
pub fn run_fail_slow(factor: u64, health: HealthConfig, quick: bool) -> ClusterReport {
    let cfg = gray_cfg(quick);
    let at = cfg.warmup_ns;
    let for_ns = (cfg.duration_ns - cfg.warmup_ns) / 2;
    dcs_cluster::run_cluster(&ClusterConfig {
        offered_gbps_per_node: 2.0,
        node_faults: vec![NodeFault::FailSlow {
            node: 1,
            at_ns: at,
            for_ns,
            factor,
        }],
        health,
        ..cfg
    })
}

/// One link-degrade run: node 2's ToR port drops to `speed_pct`% of line
/// rate mid-window. Probe acks still make their (generous) deadline, so
/// again only the differential arm notices. The load is set so the
/// *degraded* port is the bottleneck while the healthy cluster keeps
/// ample headroom — if survivors saturate too, the median rises with the
/// victim and no detector relative to the cluster can see an outlier.
pub fn run_link_degrade(speed_pct: u64, health: HealthConfig, quick: bool) -> ClusterReport {
    let cfg = gray_cfg(quick);
    let at = cfg.warmup_ns;
    let for_ns = (cfg.duration_ns - cfg.warmup_ns) / 2;
    dcs_cluster::run_cluster(&ClusterConfig {
        offered_gbps_per_node: 1.5,
        node_faults: vec![NodeFault::LinkDegrade {
            node: 2,
            at_ns: at,
            for_ns,
            speed_pct,
        }],
        health,
        ..cfg
    })
}

/// One rejoin run: node 1 crashes early in the measured window and
/// restarts only after the probe detector has had time to declare it
/// Dead (so failover and re-replication genuinely run first); it comes
/// back empty, streams its shards back from survivors (bandwidth-capped
/// anti-entropy), and only then takes traffic again. Small objects and a
/// raised rejoin rate keep the stream short enough to resolve inside the
/// window.
pub fn run_rejoin(quick: bool) -> ClusterReport {
    let cfg = gray_cfg(quick);
    let eighth = (cfg.duration_ns - cfg.warmup_ns) / 8;
    let crash_at = cfg.warmup_ns + eighth;
    let health = HealthConfig {
        rejoin_gbps: 8.0,
        ..HealthConfig::default()
    };
    let restart_at = crash_at + health.detection_bound_ns() + dcs_sim::time::ms(1);
    // Small objects make the nodes CPU-bound (~7 Gbps/node), so N-1
    // survivability needs a lower per-node offered load than the
    // network-bound failover panel uses — with headroom for the ring's
    // imbalance, which concentrates the dead node's share on its
    // successor.
    dcs_cluster::run_cluster(&ClusterConfig {
        offered_gbps_per_node: 3.5,
        node_faults: vec![NodeFault::Crash {
            node: 1,
            at_ns: crash_at,
            restart_at_ns: Some(restart_at),
        }],
        health,
        ..cfg
    })
}

/// Renders the `cluster-gray` sweep.
pub fn render_gray(quick: bool) -> String {
    let mut out = String::from(
        "Cluster gray-failure tolerance — fail-slow, degraded link, crash + rejoin\n\n",
    );

    out.push_str(
        "  Node 1 serves slow mid-window, probes still ack (factor × detection ablation):\n",
    );
    for factor in [4u64, 10] {
        let arms = [
            ("differential", HealthConfig::default()),
            ("blind       ", HealthConfig::blind()),
        ];
        for (name, health) in arms {
            let r = run_fail_slow(factor, health, quick);
            // Whole-window p99, not the per-phase one: the "during" phase
            // ends at detection, so slicing by phase would compare
            // different time windows across the two arms.
            out.push_str(&format!(
                "    {factor:>2}x {name}  detect {:>6.0} us  evicted {:>2} readmitted {:>2}  p99 {:>8.0} us  avail {:>6.2}%\n",
                r.slow_detection_ns
                    .map(|d| d as f64 / 1000.0)
                    .unwrap_or(f64::NAN),
                r.slow_evictions,
                r.slow_readmissions,
                r.latency_us(99.0),
                r.availability() * 100.0,
            ));
        }
    }

    out.push_str("\n  Node 2's ToR port at 5% of line rate mid-window:\n");
    let arms = [
        ("differential", HealthConfig::default()),
        ("blind       ", HealthConfig::blind()),
    ];
    for (name, health) in arms {
        let r = run_link_degrade(5, health, quick);
        out.push_str(&format!(
            "    {name}  detect {:>6.0} us  evicted {:>2} readmitted {:>2}  p99 {:>8.0} us\n",
            r.slow_detection_ns
                .map(|d| d as f64 / 1000.0)
                .unwrap_or(f64::NAN),
            r.slow_evictions,
            r.slow_readmissions,
            r.latency_us(99.0),
        ));
    }

    out.push_str("\n  Node 1 crashes, restarts empty, and rejoins via anti-entropy:\n");
    out.push_str(&run_rejoin(quick).render("    jsq"));
    out
}

/// Renders the `cluster-failover` sweep.
pub fn render_failover(quick: bool) -> String {
    let mut out = String::from(
        "Cluster node-failure tolerance — 4 nodes at 5 Gbps/node offered (N-1 survivable)\n\n",
    );

    out.push_str("  Node 1 crashes a quarter into the window; health layer on:\n");
    for policy in LbPolicy::ALL {
        let r = run_failover(policy, HealthConfig::default(), quick);
        out.push_str(&format!(
            "    {:<12} GET avail {:>6.2}%  PUT avail {:>6.2}%  detect {:>5.0} us  hedged {:>3} (wins {:>3})  retried {:>3}  lost {:>3}  repaired {:>6.1} MiB in {:>6.1} ms\n",
            policy.label(),
            r.get_availability() * 100.0,
            r.put_availability() * 100.0,
            r.detection_ns.map(|d| d as f64 / 1000.0).unwrap_or(f64::NAN),
            r.hedged,
            r.hedge_wins,
            r.retried,
            r.lost,
            r.repair_bytes as f64 / (1 << 20) as f64,
            r.repair_ns.map(|d| d as f64 / 1e6).unwrap_or(f64::NAN),
        ));
    }

    out.push_str("\n  Ablation under JSQ — the same crash with the health layer off:\n");
    let arms = [
        ("health on ", HealthConfig::default()),
        ("health off", HealthConfig::disabled()),
    ];
    for (name, health) in arms {
        let r = run_failover(LbPolicy::JoinShortestQueue, health, quick);
        out.push_str(&format!(
            "    {name}  avail {:>6.2}%  (GET {:>6.2}%, PUT {:>6.2}%)  lost {:>4}  shed {:>4}\n",
            r.availability() * 100.0,
            r.get_availability() * 100.0,
            r.put_availability() * 100.0,
            r.lost,
            r.rejected,
        ));
    }

    out.push_str("\n  Hang: node 2 frozen mid-window, sluggish detector (hedges cover the gap):\n");
    out.push_str(&run_hang(quick).render("    jsq"));
    out
}

/// Renders all three panels.
pub fn render(quick: bool) -> String {
    let mut out = String::from(
        "Cluster sweep — N DCS-ctrl nodes behind a ToR switch, Swift-style GET/PUT mix\n\n",
    );

    out.push_str(&format!(
        "  Scaling at {BASE_GBPS} Gbps/node offered, JSQ:\n"
    ));
    for nodes in [1usize, 2, 4, 8] {
        let r = run_scale(nodes, quick);
        out.push_str(&format!(
            "    {nodes} node{} {}",
            if nodes == 1 { " " } else { "s" },
            r.render(""),
        ));
    }

    // A node saturates near 7.5 Gbps served (the SSD→hash→NIC pipeline,
    // not the 10G port, is the binding resource): ~50%, ~80%, and ~95%
    // of that.
    let loads = [3.5, 6.0, 7.0];
    out.push_str("\n  Policy comparison, 4 nodes (offered Gbps/node → p50/p99/p999 us):\n");
    for offered in loads {
        for policy in LbPolicy::ALL {
            let r = run_policy(policy, offered, quick);
            out.push_str(&format!(
                "    {offered:>4.1} {:<12} {:>6.2} Gbps  shed {:>4.1}%  {:>7.0}/{:>7.0}/{:>7.0} us  imb {:.2}\n",
                policy.label(),
                r.goodput_gbps(),
                r.rejection_rate() * 100.0,
                r.latency_us(50.0),
                r.latency_us(99.0),
                r.latency_us(99.9),
                r.imbalance(),
            ));
        }
    }

    out.push_str(&format!(
        "\n  Degraded node (node 0 at 10% port speed after warm-up), {BASE_GBPS} Gbps/node:\n"
    ));
    for policy in [LbPolicy::RoundRobin, LbPolicy::JoinShortestQueue] {
        let r = run_degrade(policy, quick);
        let degraded = &r.per_node[0];
        let healthy: u64 =
            r.per_node[1..].iter().map(|n| n.requests).sum::<u64>() / (r.per_node.len() - 1) as u64;
        out.push_str(&format!(
            "    {:<12} {:>6.2} Gbps  shed {:>4.1}%  p99 {:>7.0} us  node0 {:>4} reqs vs {:>4} avg healthy\n",
            policy.label(),
            r.goodput_gbps(),
            r.rejection_rate() * 100.0,
            r.latency_us(99.0),
            degraded.requests,
            healthy,
        ));
    }
    out
}
