//! Extension experiment: the cluster sweep.
//!
//! Scales the paper's single-server question up one level: N DCS servers
//! behind a modeled top-of-rack switch serving a Swift-style GET/PUT mix
//! through a load-balancing front end (see `dcs-cluster`). Three panels:
//!
//! 1. **Scaling** — goodput and tails as the rack grows 1→8 nodes at a
//!    fixed per-node offered load; goodput should scale near-linearly
//!    because nodes share nothing but the (overprovisioned) uplink.
//! 2. **Policy × load** — round-robin vs least-outstanding vs
//!    join-shortest-queue at moderate-to-saturating offered load; the
//!    queue-aware policies win on tails once queues form.
//! 3. **Degraded node** — one node's port drops to a tenth of line rate
//!    mid-run; JSQ reroutes around the backlog while oblivious
//!    round-robin keeps feeding it.

use dcs_cluster::{ClusterConfig, ClusterReport, Degrade, LbPolicy};

/// Offered load per node for the scaling and degrade panels, Gbps.
const BASE_GBPS: f64 = 6.0;

/// Shared experiment shape; panels override nodes/policy/load/degrade.
fn base_cfg(quick: bool) -> ClusterConfig {
    // Request sojourn under load is ~10 ms (48-deep node pipelines), so
    // the measured window must be several times that or completions in
    // flight at the window edge dominate the tally.
    ClusterConfig {
        duration_ns: dcs_sim::time::ms(if quick { 12 } else { 60 }),
        warmup_ns: dcs_sim::time::ms(if quick { 3 } else { 10 }),
        ..ClusterConfig::default()
    }
}

/// One scaling-panel run: `nodes` nodes under JSQ at the base per-node
/// load.
pub fn run_scale(nodes: usize, quick: bool) -> ClusterReport {
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes,
        policy: LbPolicy::JoinShortestQueue,
        offered_gbps_per_node: BASE_GBPS,
        ..base_cfg(quick)
    })
}

/// One policy-panel run: 4 nodes under `policy` at `offered` Gbps/node.
pub fn run_policy(policy: LbPolicy, offered: f64, quick: bool) -> ClusterReport {
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy,
        offered_gbps_per_node: offered,
        ..base_cfg(quick)
    })
}

/// One degrade-panel run: 4 nodes at the base load; node 0's port drops
/// to 10% of line rate once warm-up ends.
pub fn run_degrade(policy: LbPolicy, quick: bool) -> ClusterReport {
    let cfg = base_cfg(quick);
    dcs_cluster::run_cluster(&ClusterConfig {
        nodes: 4,
        policy,
        offered_gbps_per_node: BASE_GBPS,
        degrade: Some(Degrade { node: 0, at_ns: cfg.warmup_ns, factor: 0.1 }),
        ..cfg
    })
}

/// Renders all three panels.
pub fn render(quick: bool) -> String {
    let mut out = String::from(
        "Cluster sweep — N DCS-ctrl nodes behind a ToR switch, Swift-style GET/PUT mix\n\n",
    );

    out.push_str(&format!("  Scaling at {BASE_GBPS} Gbps/node offered, JSQ:\n"));
    for nodes in [1usize, 2, 4, 8] {
        let r = run_scale(nodes, quick);
        out.push_str(&format!(
            "    {nodes} node{} {}",
            if nodes == 1 { " " } else { "s" },
            r.render(""),
        ));
    }

    // A node saturates near 7.5 Gbps served (the SSD→hash→NIC pipeline,
    // not the 10G port, is the binding resource): ~50%, ~80%, and ~95%
    // of that.
    let loads = [3.5, 6.0, 7.0];
    out.push_str("\n  Policy comparison, 4 nodes (offered Gbps/node → p50/p99/p999 us):\n");
    for offered in loads {
        for policy in LbPolicy::ALL {
            let r = run_policy(policy, offered, quick);
            out.push_str(&format!(
                "    {offered:>4.1} {:<12} {:>6.2} Gbps  shed {:>4.1}%  {:>7.0}/{:>7.0}/{:>7.0} us  imb {:.2}\n",
                policy.label(),
                r.goodput_gbps(),
                r.rejection_rate() * 100.0,
                r.latency_us(50.0),
                r.latency_us(99.0),
                r.latency_us(99.9),
                r.imbalance(),
            ));
        }
    }

    out.push_str(&format!(
        "\n  Degraded node (node 0 at 10% port speed after warm-up), {BASE_GBPS} Gbps/node:\n"
    ));
    for policy in [LbPolicy::RoundRobin, LbPolicy::JoinShortestQueue] {
        let r = run_degrade(policy, quick);
        let degraded = &r.per_node[0];
        let healthy: u64 =
            r.per_node[1..].iter().map(|n| n.requests).sum::<u64>() / (r.per_node.len() - 1) as u64;
        out.push_str(&format!(
            "    {:<12} {:>6.2} Gbps  shed {:>4.1}%  p99 {:>7.0} us  node0 {:>4} reqs vs {:>4} avg healthy\n",
            policy.label(),
            r.goodput_gbps(),
            r.rejection_rate() * 100.0,
            r.latency_us(99.0),
            degraded.requests,
            healthy,
        ));
    }
    out
}
