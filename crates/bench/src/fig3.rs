//! Figure 3 — software overheads of multi-device communication.
//!
//! The motivating microbenchmark: SSD→GPU(hash)→NIC. (a) decomposes the
//! latency of one operation; (b) the CPU utilization of a sustained
//! stream. Designs: SW opt, SW-ctrl P2P, and the idealized consolidated
//! device ("Device integration").

use std::collections::BTreeMap;

use dcs_host::costs::KernelCosts;
use dcs_host::cpu::CpuPool;
use dcs_host::integration::{IntegratedExecutor, IntegrationConfig};
use dcs_host::job::{D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_pcie::{PhysMemory, PortId};
use dcs_sim::{time, Breakdown, ComponentId, Simulator};
use dcs_workloads::scenario::{
    start_scenario, DesignUnderTest, Request, ScenarioConfig, ScenarioOutcome, Testbed,
    TestbedConfig,
};

use crate::probe::{Inbox, Probe, ProbedTestbed, Submit};
use crate::render_breakdown;

/// The three bars of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig3Design {
    /// Optimized software, host-staged data.
    SwOpt,
    /// Optimized software + P2P data paths.
    SwP2p,
    /// Idealized consolidated device.
    DeviceIntegration,
}

impl Fig3Design {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Fig3Design::SwOpt => "SW opt",
            Fig3Design::SwP2p => "SW-ctrl P2P",
            Fig3Design::DeviceIntegration => "Device integration",
        }
    }

    /// All three, in figure order.
    pub const ALL: [Fig3Design; 3] = [
        Fig3Design::SwOpt,
        Fig3Design::SwP2p,
        Fig3Design::DeviceIntegration,
    ];
}

fn micro_ops(len: usize) -> Vec<D2dOp> {
    vec![
        D2dOp::SsdRead {
            ssd: 0,
            lba: 0,
            len,
        },
        D2dOp::Process {
            function: NdpFunction::Md5,
            aux: vec![],
        },
        D2dOp::NicSend {
            flow: TcpFlow::example(1, 2, 41_000, 9_010),
            seq: 0,
        },
    ]
}

/// Builds the standalone consolidated-device rig.
fn integration_rig() -> (Simulator, ComponentId, ComponentId) {
    let mut sim = Simulator::new(5);
    sim.world_mut().insert(PhysMemory::new());
    let flash =
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .alloc_region("fused-flash", 8 << 30, PortId(1));
    let cpu = sim.add("fused-cpu", CpuPool::new("fused", 6));
    let exec = sim.add(
        "fused-exec",
        IntegratedExecutor::new(
            IntegrationConfig::default(),
            KernelCosts::default(),
            cpu,
            flash,
        ),
    );
    let probe = sim.add("probe", Probe);
    (sim, exec, probe)
}

/// Single-operation latency breakdown for one design.
pub fn latency(design: Fig3Design, len: usize) -> Breakdown {
    match design {
        Fig3Design::SwOpt => single_sw(DesignUnderTest::SwOpt, len),
        Fig3Design::SwP2p => single_sw(DesignUnderTest::SwP2p, len),
        Fig3Design::DeviceIntegration => {
            let (mut sim, exec, probe) = integration_rig();
            let job = D2dJob {
                id: 1,
                ops: micro_ops(len),
                reply_to: probe,
                tag: "fig3",
            };
            sim.kickoff(probe, Submit { to: exec, job });
            sim.run();
            sim.world().expect::<Inbox>().0[0].breakdown.clone()
        }
    }
}

fn single_sw(design: DesignUnderTest, len: usize) -> Breakdown {
    let mut rig = ProbedTestbed::new(design);
    rig.seed_flash(0, &vec![0x33; len]);
    rig.run_server_job(micro_ops(len), "fig3").breakdown
}

/// Sustained-stream CPU utilization (fraction of all cores) by tag.
pub fn cpu_utilization(
    design: Fig3Design,
    len: usize,
    offered_gbps: f64,
    duration_ns: u64,
) -> BTreeMap<String, f64> {
    let mean_interarrival_ns = len as f64 * 8.0 / offered_gbps;
    let scenario = ScenarioConfig {
        duration_ns,
        warmup_ns: duration_ns / 5,
        mean_interarrival_ns,
        slots: 16,
    };
    match design {
        Fig3Design::DeviceIntegration => {
            let (mut sim, exec, _probe) = integration_rig();
            let make = Box::new(
                move |_rng: &mut dcs_sim::Rng, _slot: usize, reply_to, next_id: &mut u64| {
                    let id = *next_id;
                    *next_id += 1;
                    Request {
                        jobs: vec![(
                            exec,
                            D2dJob {
                                id,
                                ops: micro_ops(len),
                                reply_to,
                                tag: "kernel",
                            },
                        )],
                        bytes: len,
                        app_cost_ns: 0,
                        app_tag: "app",
                    }
                },
            );
            start_scenario(&mut sim, scenario, make, vec![("fused".to_string(), 6)]);
            sim.run();
            let outcome = sim.world().expect::<ScenarioOutcome>();
            outcome.reports["fused"].cpu_breakdown.clone()
        }
        other => {
            let dut = match other {
                Fig3Design::SwOpt => DesignUnderTest::SwOpt,
                Fig3Design::SwP2p => DesignUnderTest::SwP2p,
                Fig3Design::DeviceIntegration => unreachable!(),
            };
            let mut tb = Testbed::new(dut, &TestbedConfig::default());
            tb.sim.run();
            let target = tb.server.submit_to;
            let key = tb.server.cpu_key.clone();
            let cores = tb.server.cores;
            let make = Box::new(
                move |_rng: &mut dcs_sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
                    let id = *next_id;
                    *next_id += 1;
                    let mut ops = micro_ops(len);
                    // Distinct flow per slot keeps streams separated.
                    if let Some(D2dOp::NicSend { flow, .. }) = ops.last_mut() {
                        *flow = TcpFlow::example(1, 2, 41_000 + slot as u16, 9_010 + slot as u16);
                    }
                    Request {
                        jobs: vec![(
                            target,
                            D2dJob {
                                id,
                                ops,
                                reply_to,
                                tag: "kernel",
                            },
                        )],
                        bytes: len,
                        app_cost_ns: 0,
                        app_tag: "app",
                    }
                },
            );
            start_scenario(&mut tb.sim, scenario, make, vec![(key.clone(), cores)]);
            tb.sim.run();
            let outcome = tb.sim.world().expect::<ScenarioOutcome>();
            outcome.reports[&key].cpu_breakdown.clone()
        }
    }
}

/// Renders both sub-figures.
pub fn render(len: usize, quick: bool) -> String {
    let mut out = format!(
        "Figure 3 — software overheads of multi-device communication (SSD->GPU hash->NIC, {} KiB)\n",
        len / 1024
    );
    out.push_str("\n(a) latency breakdown\n");
    for d in Fig3Design::ALL {
        let b = latency(d, len);
        out.push_str(&render_breakdown(d.label(), &b));
    }
    out.push_str("\n(b) normalized CPU utilization of a sustained stream\n");
    let duration = if quick { time::ms(10) } else { time::ms(40) };
    let utils: Vec<(Fig3Design, BTreeMap<String, f64>)> = Fig3Design::ALL
        .iter()
        .map(|&d| (d, cpu_utilization(d, len, 4.0, duration)))
        .collect();
    let norm = utils
        .first()
        .map(|(_, m)| m.values().sum::<f64>())
        .unwrap_or(1.0)
        .max(1e-9);
    for (d, m) in &utils {
        let total: f64 = m.values().sum();
        out.push_str(&format!(
            "  {:<20} {:>6.2} (normalized to SW opt)\n",
            d.label(),
            total / norm
        ));
        for (tag, u) in m {
            out.push_str(&format!("      {tag:<16} {:>5.1}% of cores\n", u * 100.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_is_fastest_and_cheapest() {
        let len = 16 * 1024;
        let sw = latency(Fig3Design::SwOpt, len);
        let p2p = latency(Fig3Design::SwP2p, len);
        let fused = latency(Fig3Design::DeviceIntegration, len);
        assert!(p2p.total() <= sw.total());
        assert!(fused.total() < p2p.total());
    }

    #[test]
    fn cpu_stream_ordering_matches_figure() {
        let len = 64 * 1024;
        let dur = time::ms(8);
        let sw: f64 = cpu_utilization(Fig3Design::SwOpt, len, 3.0, dur)
            .values()
            .sum();
        let p2p: f64 = cpu_utilization(Fig3Design::SwP2p, len, 3.0, dur)
            .values()
            .sum();
        let fused: f64 = cpu_utilization(Fig3Design::DeviceIntegration, len, 3.0, dur)
            .values()
            .sum();
        assert!(sw > 0.0);
        assert!(p2p <= sw * 1.05, "p2p {p2p} vs sw {sw}");
        assert!(fused < p2p * 0.6, "fused {fused} vs p2p {p2p}");
    }
}
