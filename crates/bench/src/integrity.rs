//! Extension experiment: data-integrity audit + chaos-fuzz smoke.
//!
//! Two views of the containment stack (DESIGN.md §12):
//!
//! 1. **Corruption sweep** — storms only the three *corruption* sites
//!    (DMA payload, TLP header, completion entry) at per-TLP rates
//!    around 1e-3 and audits every completion end to end: a request
//!    that reports success must have carried the right bytes. The
//!    table's `escapes` column is the headline — it must be 0 on every
//!    design at every rate while ECRC is on — alongside the
//!    conservation identity (injected == recovered + exhausted, and
//!    AER detections == injections).
//! 2. **Fuzz smoke** — a bounded run of the shrinking chaos fuzzer
//!    ([`dcs_sim::fuzz`]) over the same workload. A clean budget is the
//!    expected outcome; on a violation, [`fuzz_smoke`] writes the
//!    shrunk [`FaultSpec::Nth`] schedule and a Perfetto trace of the
//!    minimal replay into a repro directory for CI to upload.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use dcs_host::job::{D2dDone, D2dOp};
use dcs_ndp::md5::md5;
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_pcie::PhysMemory;
use dcs_sim::fault::{self, FaultPlan, FaultSpec};
use dcs_sim::{fnv1a64, fuzz, FuzzCase, FuzzConfig, IntegrityAudit, RunOutcome, Violation};
use dcs_workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

/// Transfer size per round — enough TLPs that 1e-3 per-TLP corruption
/// fires every few rounds.
const LEN: usize = 16 * 1024;

/// Deterministic payload pattern the audits check against.
fn pattern() -> Vec<u8> {
    (0..LEN)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

/// One (design, rate) cell of the corruption sweep.
pub struct IntegrityRow {
    /// Design under test.
    pub design: DesignUnderTest,
    /// Per-event corruption probability at each corruption site.
    pub rate: f64,
    /// Transfer rounds attempted.
    pub rounds: usize,
    /// Rounds where both paired jobs succeeded.
    pub ok_rounds: usize,
    /// Successful completions that carried the wrong bytes (must be 0).
    pub escapes: usize,
    /// Corruptions injected across the corruption sites.
    pub injected: u64,
    /// Of those, recovered transparently (replay, refetch, retry).
    pub recovered: u64,
    /// Of those, surfaced as contained error completions.
    pub exhausted: u64,
    /// AER detections logged (`aer.detected` counter).
    pub aer_detected: u64,
    /// Whether injected == recovered + exhausted held at the end.
    pub conserved: bool,
}

/// Builds a settled testbed with the pattern on flash and an
/// [`IntegrityAudit`] installed.
fn audit_testbed(design: DesignUnderTest, seed: u64, pat: &[u8]) -> Testbed {
    let mut tb = Testbed::new(
        design,
        &TestbedConfig {
            seed,
            ..Default::default()
        },
    );
    tb.sim.run();
    let addr = tb.server.ssds[0].lba_addr(0);
    tb.sim
        .world_mut()
        .expect_mut::<PhysMemory>()
        .write(addr, pat);
    tb.sim.world_mut().insert(IntegrityAudit::default());
    tb
}

/// One round: server reads the pattern off flash and sends it; client
/// receives and MD5s it.
fn transfer_round(tb: &mut Testbed, round: u16) -> Vec<D2dDone> {
    let flow = TcpFlow::example(1, 2, 47_000 + round, 5_000 + round);
    let server = tb.server.submit_to;
    let client = tb.client.submit_to;
    tb.run_job_batch(vec![
        (
            server,
            vec![
                D2dOp::SsdRead {
                    ssd: 0,
                    lba: 0,
                    len: LEN,
                },
                D2dOp::NicSend { flow, seq: 0 },
            ],
            "integrity-send",
        ),
        (
            client,
            vec![
                D2dOp::NicRecv {
                    flow: flow.reversed(),
                    len: LEN,
                },
                D2dOp::Process {
                    function: NdpFunction::Md5,
                    aux: vec![],
                },
            ],
            "integrity-recv",
        ),
    ])
}

/// Runs `rounds` paired transfers with the three corruption sites
/// firing at `rate` and audits the outcome.
pub fn run(design: DesignUnderTest, rate: f64, rounds: usize) -> IntegrityRow {
    let pat = pattern();
    let expected_md5 = md5(&pat);
    let expected_fnv = fnv1a64(&pat);
    let mut tb = audit_testbed(design, 0x17E9, &pat);
    tb.install_faults(|rng| {
        let mut plan = FaultPlan::new(rng);
        for site in FaultPlan::CORRUPTION_SITES {
            plan.enable(site, FaultSpec::Probability(rate));
        }
        plan
    });
    let mut ok_rounds = 0;
    let mut escapes = 0;
    for round in 0..rounds {
        let done = transfer_round(&mut tb, round as u16);
        if done.iter().all(|d| d.ok) {
            ok_rounds += 1;
        }
        // Device-side audit: a successful recv job's MD5 must match.
        for d in &done {
            if d.ok
                && d.digest
                    .as_deref()
                    .is_some_and(|dg| dg != expected_md5.as_slice())
            {
                escapes += 1;
            }
        }
    }
    // Host-side audit: every successful completion the SW executor
    // delivered must digest to the pattern (the executor records these
    // only on the software designs; the iterator is empty elsewhere).
    escapes += tb
        .sim
        .world()
        .expect::<IntegrityAudit>()
        .escapes(expected_fnv)
        .len();
    let (mut injected, mut recovered, mut exhausted) = (0, 0, 0);
    for (site, s) in tb.sim.world().expect::<FaultPlan>().tallies() {
        if FaultPlan::CORRUPTION_SITES.contains(&site) {
            injected += s.injected;
            recovered += s.recovered;
            exhausted += s.exhausted;
        }
    }
    IntegrityRow {
        design,
        rate,
        rounds,
        ok_rounds,
        escapes,
        injected,
        recovered,
        exhausted,
        aer_detected: tb.sim.world().stats.counter_value("aer.detected"),
        conserved: injected == recovered + exhausted,
    }
}

/// Executes one fuzz case: a fresh testbed under the case's seed and
/// fault schedule, a few paired transfers, and an outcome whose
/// fingerprint covers completions, tallies, and final sim time.
/// Panics and failed drains surface as [`Violation::Hung`].
pub fn fuzz_target(case: &FuzzCase) -> RunOutcome {
    let case = case.clone();
    let result = catch_unwind(AssertUnwindSafe(move || {
        let pat = pattern();
        let expected_md5 = md5(&pat);
        let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, case.seed, &pat);
        tb.install_faults(|rng| {
            let mut plan = FaultPlan::new(rng);
            for (site, spec) in &case.sites {
                plan.enable(site, spec.clone());
            }
            plan
        });
        let mut fp: Vec<u8> = Vec::new();
        let mut violation = None;
        for round in 0..2u16 {
            let mut done = transfer_round(&mut tb, round);
            done.sort_by_key(|d| d.id);
            for d in &done {
                fp.extend_from_slice(&d.id.to_le_bytes());
                fp.push(u8::from(d.ok));
                fp.extend_from_slice(&(d.payload_len as u64).to_le_bytes());
                if let Some(dg) = &d.digest {
                    fp.extend_from_slice(dg);
                }
                let wrong = d.ok
                    && d.digest
                        .as_deref()
                        .is_some_and(|dg| dg != expected_md5.as_slice());
                if wrong && violation.is_none() {
                    violation = Some(Violation::WrongPayload { job: d.id });
                }
            }
        }
        let world = tb.sim.world();
        for key in [
            "fault.injected",
            "fault.recovered",
            "fault.exhausted",
            "aer.detected",
        ] {
            fp.extend_from_slice(&world.stats.counter_value(key).to_le_bytes());
        }
        fp.extend_from_slice(&(tb.sim.now() - dcs_sim::SimTime::ZERO).to_le_bytes());
        if violation.is_none() {
            let expected_fnv = fnv1a64(&pat);
            if let Some(job) = world
                .expect::<IntegrityAudit>()
                .escapes(expected_fnv)
                .first()
                .copied()
            {
                violation = Some(Violation::WrongPayload { job });
            }
        }
        let fired = world.expect::<FaultPlan>().fired_log();
        RunOutcome {
            fingerprint: fnv1a64(&fp),
            fired,
            violation,
        }
    }));
    match result {
        Ok(outcome) => outcome,
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            RunOutcome {
                fingerprint: 0,
                fired: Vec::new(),
                violation: Some(Violation::Hung { detail }),
            }
        }
    }
}

/// The bounded-smoke fuzz configuration CI runs.
pub fn smoke_config(quick: bool) -> FuzzConfig {
    FuzzConfig {
        base_seed: 0xF422_1E57,
        cases: if quick { 4 } else { 16 },
        rate: 2e-3,
        sites: FaultPlan::CORRUPTION_SITES.to_vec(),
        max_shrink_runs: if quick { 40 } else { 200 },
    }
}

/// Runs the chaos fuzzer in bounded smoke mode. `Ok` carries the clean
/// summary; `Err` means a violation was found — the shrunk schedule
/// (`repro.txt`) and a Perfetto trace of the minimal replay
/// (`trace.json`) have been written under `repro_dir` for CI to upload.
pub fn fuzz_smoke(quick: bool, repro_dir: &Path) -> Result<String, String> {
    let cfg = smoke_config(quick);
    let report = fuzz::fuzz(&cfg, fuzz_target);
    let Some(cx) = &report.counterexample else {
        return Ok(format!(
            "Chaos fuzz smoke: clean — {} cases, {} target runs, no violation\n",
            report.cases_run, report.runs
        ));
    };
    let mut msg = format!(
        "Chaos fuzz smoke: VIOLATION after {} cases ({} runs)\n{}",
        report.cases_run,
        report.runs,
        cx.repro()
    );
    match write_repro(cx, repro_dir) {
        Ok(()) => msg.push_str(&format!(
            "repro artifacts written to {}\n",
            repro_dir.display()
        )),
        Err(e) => msg.push_str(&format!("FAILED writing repro artifacts: {e}\n")),
    }
    Err(msg)
}

/// Writes `repro.txt` (the shrunk schedule) and `trace.json` (a
/// Perfetto/Chrome trace of the minimal case replayed with recording
/// on) into `dir`.
pub fn write_repro(cx: &dcs_sim::Counterexample, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("repro.txt"), cx.repro())?;
    let case = cx.case.clone();
    let trace = catch_unwind(AssertUnwindSafe(move || {
        let pat = pattern();
        let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, case.seed, &pat);
        tb.sim.world_mut().obs.enable();
        tb.install_faults(|rng| {
            let mut plan = FaultPlan::new(rng);
            for (site, spec) in &case.sites {
                plan.enable(site, spec.clone());
            }
            plan
        });
        for round in 0..2u16 {
            let _ = transfer_round(&mut tb, round);
        }
        dcs_sim::chrome_trace(&tb.sim.world().obs)
    }))
    .unwrap_or_else(|_| "{\"traceEvents\":[]}\n".to_string());
    std::fs::write(dir.join("trace.json"), trace)
}

/// Renders the corruption sweep plus a per-site conservation block.
pub fn render(quick: bool) -> String {
    let rounds = if quick { 4 } else { 12 };
    let rates = [0.001, 0.005, 0.01];
    let designs = [
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ];
    let mut out = format!(
        "Integrity sweep — paired {} KiB transfers, corruption sites only, ECRC on\n",
        LEN / 1024
    );
    out.push_str(&format!(
        "  {:<12} {:>6} {:>7} {:>8} {:>9} {:>10} {:>10} {:>9} {:>10}\n",
        "design",
        "rate",
        "ok",
        "escapes",
        "injected",
        "recovered",
        "exhausted",
        "aer-det",
        "conserved"
    ));
    for design in designs {
        for rate in rates {
            let row = run(design, rate, rounds);
            out.push_str(&format!(
                "  {:<12} {:>5.1}% {:>4}/{:<2} {:>8} {:>9} {:>10} {:>10} {:>9} {:>10}\n",
                row.design.to_string(),
                rate * 100.0,
                row.ok_rounds,
                row.rounds,
                row.escapes,
                row.injected,
                row.recovered,
                row.exhausted,
                row.aer_detected,
                if row.conserved { "yes" } else { "NO" },
            ));
        }
    }
    out.push_str(
        "\n  Per-site corruption tallies, dcs-ctrl @ 0.1% (injected/recovered/exhausted):\n",
    );
    let pat = pattern();
    let mut tb = audit_testbed(DesignUnderTest::DcsCtrl, 0x17E9, &pat);
    tb.install_faults(|rng| {
        let mut plan = FaultPlan::new(rng);
        for site in FaultPlan::CORRUPTION_SITES {
            plan.enable(site, FaultSpec::Probability(0.001));
        }
        plan
    });
    for round in 0..rounds {
        let _ = transfer_round(&mut tb, round as u16);
    }
    let mut sites: Vec<_> = tb
        .sim
        .world()
        .expect::<FaultPlan>()
        .tallies()
        .filter(|(site, _)| FaultPlan::CORRUPTION_SITES.contains(site))
        .collect();
    sites.sort_unstable_by_key(|(site, _)| *site);
    for (site, s) in sites {
        out.push_str(&format!(
            "      {:<16} {:>4} / {:>4} / {:>4}\n",
            site, s.injected, s.recovered, s.exhausted
        ));
    }
    let contained = fault::contained_total(tb.sim.world());
    out.push_str(&format!(
        "      contained total {contained} (aer.detected {})\n",
        tb.sim.world().stats.counter_value("aer.detected")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_row_audits_clean_and_conserves() {
        let row = run(DesignUnderTest::DcsCtrl, 0.01, 4);
        assert!(row.injected > 0, "1% per TLP over 4 rounds must fire");
        assert_eq!(row.escapes, 0, "ECRC on: no wrong-payload successes");
        assert!(
            row.conserved,
            "injected {} != recovered {} + exhausted {}",
            row.injected, row.recovered, row.exhausted
        );
    }

    #[test]
    fn fuzz_target_is_deterministic() {
        let case = FuzzCase {
            seed: 0x5EED,
            sites: FaultPlan::CORRUPTION_SITES
                .iter()
                .map(|s| (*s, FaultSpec::Probability(0.002)))
                .collect(),
        };
        let a = fuzz_target(&case);
        let b = fuzz_target(&case);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "same case must replay identically"
        );
        assert_eq!(a.fired, b.fired);
        assert!(
            a.violation.is_none(),
            "containment must hold: {:?}",
            a.violation
        );
    }
}
