//! Ablation studies beyond the paper's figures.
//!
//! DESIGN.md calls out the load-bearing design choices of the HDC Engine;
//! these sweeps quantify each one:
//!
//! * [`size_sweep`] — single-operation latency vs transfer size per
//!   design. Exposes the honest crossover the paper does not plot: an MD5
//!   NDP unit processes one stream at 0.97 Gbps (Table III), so for large
//!   single objects the GPU's 30 Gbps hash eventually wins on *latency*
//!   even though DCS-ctrl always wins on CPU efficiency and throughput.
//! * [`ndp_scaling`] — Swift throughput vs the NDP bank's per-function
//!   target rate (how many MD5 units the engine instantiates).
//! * [`outstanding_sweep`] — the effect of the engine's per-SSD issue
//!   limit on pipelined read throughput.

use dcs_host::job::{D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{time, Bandwidth};
use dcs_workloads::scenario::DesignUnderTest;

use crate::fig11::measure;
use crate::probe::{Inbox, Submit};

/// One point of the size sweep.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Transfer size in bytes.
    pub len: usize,
    /// Total latency per design, ns: (SW opt, SW-ctrl P2P, DCS-ctrl).
    pub totals: [u64; 3],
}

/// Sweeps single-op `SSD→MD5→NIC` latency across sizes.
pub fn size_sweep(sizes: &[usize]) -> Vec<SizePoint> {
    sizes
        .iter()
        .map(|&len| {
            let totals = [
                measure(DesignUnderTest::SwOpt, len, true).total(),
                measure(DesignUnderTest::SwP2p, len, true).total(),
                measure(DesignUnderTest::DcsCtrl, len, true).total(),
            ];
            SizePoint { len, totals }
        })
        .collect()
}

/// The size at which SW-ctrl P2P's single-op latency first beats
/// DCS-ctrl's (`None` if DCS wins everywhere in the swept range).
pub fn latency_crossover(points: &[SizePoint]) -> Option<usize> {
    points
        .iter()
        .find(|p| p.totals[2] > p.totals[1])
        .map(|p| p.len)
}

/// Swift GET-heavy run on a DCS testbed whose NDP banks are sized for
/// `ndp_target_gbps` aggregate per function (Table III's default is 10);
/// returns `(throughput_gbps, cpu_utilization)`.
///
/// The MD5 bank is the contended resource: halving its target visibly
/// queues requests, doubling it buys headroom.
pub fn ndp_scaling(ndp_target_gbps: f64, quick: bool) -> (f64, f64) {
    use dcs_core::{build_dcs_pair, DcsNodeBuilder};
    use dcs_host::job::{D2dJob as Job, D2dOp as Op};
    use dcs_nic::WireConfig;
    use dcs_pcie::PhysMemory;
    use dcs_sim::Simulator;
    use dcs_workloads::scenario::{start_scenario, Request, ScenarioConfig, ScenarioOutcome};

    let mut sim = Simulator::new(17);
    let mut builder = DcsNodeBuilder::new("server");
    builder.engine.ndp_target_gbps = ndp_target_gbps;
    let mut client_builder = DcsNodeBuilder::new("client");
    client_builder.engine.ndp_target_gbps = ndp_target_gbps;
    let (na, nb) = build_dcs_pair(&mut sim, &builder, &client_builder, WireConfig::default());
    sim.world_mut()
        .expect_mut::<PhysMemory>()
        .write(na.ssds[0].lba_addr(0), &vec![5u8; 256 * 1024]);
    sim.run();
    let server = na.driver;
    let client = nb.driver;
    let len = 256 * 1024usize;
    let make = Box::new(
        move |_rng: &mut dcs_sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
            let mut id = || {
                let i = *next_id;
                *next_id += 1;
                i
            };
            let flow = TcpFlow::example(1, 2, 25_000 + slot as u16, 8_300 + slot as u16);
            let server_job = Job {
                id: id(),
                ops: vec![
                    Op::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len,
                    },
                    Op::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                    Op::NicSend { flow, seq: 0 },
                ],
                reply_to,
                tag: "kernel-get",
            };
            let client_job = Job {
                id: id(),
                ops: vec![Op::NicRecv {
                    flow: flow.reversed(),
                    len,
                }],
                reply_to,
                tag: "client",
            };
            Request {
                jobs: vec![(client, client_job), (server, server_job)],
                bytes: len,
                app_cost_ns: 0,
                app_tag: "app",
            }
        },
    );
    let duration = if quick { time::ms(20) } else { time::ms(60) };
    start_scenario(
        &mut sim,
        ScenarioConfig {
            duration_ns: duration,
            warmup_ns: duration / 4,
            mean_interarrival_ns: len as f64 * 8.0 / 8.5,
            slots: 40,
        },
        make,
        vec![("server".to_string(), 6)],
    );
    sim.run();
    let outcome = sim.world().expect::<ScenarioOutcome>();
    let report = &outcome.reports["server"];
    (report.throughput_gbps(), report.cpu_utilization())
}

/// One point of the outstanding-commands sweep.
#[derive(Clone, Debug)]
pub struct OutstandingPoint {
    /// Engine per-SSD issue limit.
    pub limit: usize,
    /// Achieved read throughput, Gbps.
    pub gbps: f64,
}

/// Sweeps the engine's NVMe issue limit with a stream of small (16 KiB)
/// reads — small enough that per-command latency, not flash bandwidth,
/// bounds a shallow pipeline.
pub fn outstanding_sweep(limits: &[usize]) -> Vec<OutstandingPoint> {
    use dcs_core::{build_dcs_pair, DcsNodeBuilder};
    use dcs_nic::WireConfig;
    use dcs_pcie::PhysMemory;
    use dcs_sim::Simulator;

    limits
        .iter()
        .map(|&limit| {
            let mut sim = Simulator::new(3);
            let mut a = DcsNodeBuilder::new("a");
            a.engine.nvme_outstanding = limit;
            let (na, _nb) = build_dcs_pair(
                &mut sim,
                &a,
                &DcsNodeBuilder::new("b"),
                WireConfig::default(),
            );
            let probe = sim.add("probe", crate::probe::Probe);
            sim.run();
            let len = 16 * 1024;
            let n = 256u64;
            sim.world_mut()
                .expect_mut::<PhysMemory>()
                .write(na.ssds[0].lba_addr(0), &vec![7u8; len]);
            let t0 = sim.now();
            for i in 0..n {
                let job = D2dJob {
                    id: i,
                    ops: vec![D2dOp::SsdRead {
                        ssd: 0,
                        lba: (i * 4) % 4096,
                        len,
                    }],
                    reply_to: probe,
                    tag: "sweep",
                };
                sim.kickoff(probe, Submit { to: na.driver, job });
            }
            sim.run();
            assert_eq!(sim.world().stats.counter_value("probe.ok"), n);
            let _ = sim.world().expect::<Inbox>();
            let elapsed = (sim.now() - t0).max(1);
            let gbps = (n as usize * len) as f64 * 8.0 / elapsed as f64;
            OutstandingPoint { limit, gbps }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render(quick: bool) -> String {
    let mut out = String::from("Ablations — design-choice sweeps beyond the paper\n");

    out.push_str("\n(1) single-op SSD->MD5->NIC latency vs size (us)\n");
    out.push_str("     size      SW opt   SW-ctrl P2P  DCS-ctrl\n");
    let sizes = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let points = size_sweep(&sizes);
    for p in &points {
        out.push_str(&format!(
            "  {:>7} KiB {:>9.1} {:>12.1} {:>9.1}\n",
            p.len / 1024,
            p.totals[0] as f64 / 1000.0,
            p.totals[1] as f64 / 1000.0,
            p.totals[2] as f64 / 1000.0
        ));
    }
    match latency_crossover(&points) {
        Some(len) => out.push_str(&format!(
            "  crossover: above {} KiB the GPU's 30 Gbps hash beats the single\n  0.97 Gbps MD5 NDP unit on latency (throughput/CPU still favor DCS)\n",
            len / 1024
        )),
        None => out.push_str("  no crossover in the swept range\n"),
    }

    out.push_str("\n(2) engine NVMe issue limit vs pipelined read throughput\n");
    for p in outstanding_sweep(&[1, 2, 4, 8, 16]) {
        out.push_str(&format!("  limit {:>2}: {:>6.2} Gbps\n", p.limit, p.gbps));
    }
    out.push_str(&format!(
        "  (flash ceiling: {:.1} Gbps read bandwidth)\n",
        Bandwidth::gbps(17.2).as_gbps()
    ));

    out.push_str("\n(3) GET throughput vs NDP bank size (MD5 units = ceil(target/0.97))\n");
    for target in [2.0, 5.0, 10.0, 20.0] {
        let (gbps, cpu) = ndp_scaling(target, quick);
        out.push_str(&format!(
            "  {:>4.0} Gbps bank target ({:>2} MD5 units): {:>5.2} Gbps at {:>4.1}% CPU\n",
            target,
            (target / 0.97).ceil() as u32,
            gbps,
            cpu * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_shows_dcs_win_small_and_crossover_large() {
        let points = size_sweep(&[4 << 10, 1 << 20]);
        // At 4 KiB DCS wins outright.
        assert!(points[0].totals[2] < points[0].totals[1]);
        // At 1 MiB the serial MD5 unit loses the latency race (honest
        // consequence of Table III's 0.97 Gbps per-unit rate).
        assert!(points[1].totals[2] > points[1].totals[1]);
    }

    #[test]
    fn deeper_nvme_pipelines_increase_throughput_to_flash_limit() {
        let points = outstanding_sweep(&[1, 8]);
        assert!(points[1].gbps > points[0].gbps * 1.5, "{points:?}");
        assert!(points[1].gbps <= 17.2 + 0.5);
    }
}
