//! Harness utilities: a probe component that submits jobs and collects
//! completions, plus single-job latency measurement over any design.

use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_pcie::PhysMemory;
use dcs_sim::{Component, ComponentId, Ctx, Msg, World};
use dcs_workloads::scenario::{DesignUnderTest, Testbed, TestbedConfig};

/// World-resident mailbox of collected completions.
#[derive(Default, Debug)]
pub struct Inbox(pub Vec<D2dDone>);

/// Snapshot of the global fault/recovery counters maintained by
/// [`dcs_sim::fault`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults fired across all sites (`fault.injected`).
    pub injected: u64,
    /// Faults whose effects a retry path absorbed (`fault.recovered`).
    pub recovered: u64,
    /// Faults that exhausted their retry budget (`fault.exhausted`).
    pub exhausted: u64,
    /// Individual retry attempts (`retry.count`).
    pub retries: u64,
}

impl FaultReport {
    /// Reads the counters out of `world`.
    pub fn capture(world: &World) -> FaultReport {
        let c = |k: &str| world.stats.counter_value(k);
        FaultReport {
            injected: c("fault.injected"),
            recovered: c("fault.recovered"),
            exhausted: c("fault.exhausted"),
            retries: c("retry.count"),
        }
    }
}

/// Submit-and-collect component.
pub struct Probe;

/// Ask the probe to forward a job.
#[derive(Debug)]
pub struct Submit {
    /// Executor or HDC driver to submit to.
    pub to: ComponentId,
    /// The job.
    pub job: D2dJob,
}

impl Component for Probe {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg
            .downcast::<D2dDone>()
            .expect("probe receives job completions");
        ctx.world().stats.counter("probe.done").add(1);
        if done.ok {
            ctx.world().stats.counter("probe.ok").add(1);
        }
        if ctx.world().get::<Inbox>().is_none() {
            ctx.world().insert(Inbox::default());
        }
        ctx.world().expect_mut::<Inbox>().0.push(done);
    }
}

/// A testbed with a probe installed and initialization settled.
pub struct ProbedTestbed {
    /// The underlying testbed.
    pub tb: Testbed,
    /// The probe (use as `reply_to`).
    pub probe: ComponentId,
}

impl ProbedTestbed {
    /// Builds and settles a testbed for `design`.
    pub fn new(design: DesignUnderTest) -> ProbedTestbed {
        let mut tb = Testbed::new(design, &TestbedConfig::default());
        let probe = tb.sim.add("probe", Probe);
        tb.sim.run();
        ProbedTestbed { tb, probe }
    }

    /// Pre-populates the server SSD's flash at `lba` with `data`.
    pub fn seed_flash(&mut self, lba: u64, data: &[u8]) {
        let addr = self.tb.server.ssds[0].lba_addr(lba);
        self.tb
            .sim
            .world_mut()
            .expect_mut::<PhysMemory>()
            .write(addr, data);
    }

    /// Runs one job on the *server* node to completion and returns its
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the job fails or never completes.
    pub fn run_server_job(&mut self, ops: Vec<D2dOp>, tag: &'static str) -> D2dDone {
        let before = self
            .tb
            .sim
            .world()
            .get::<Inbox>()
            .map(|i| i.0.len())
            .unwrap_or(0);
        let job = D2dJob {
            id: 1_000_000 + before as u64,
            ops,
            reply_to: self.probe,
            tag,
        };
        let probe = self.probe;
        let target = self.tb.server.submit_to;
        self.tb.sim.kickoff(probe, Submit { to: target, job });
        self.tb.sim.run();
        let inbox = self.tb.sim.world().expect::<Inbox>();
        assert_eq!(inbox.0.len(), before + 1, "job must complete");
        let done = inbox.0.last().expect("present").clone();
        assert!(done.ok, "job must succeed");
        done
    }

    /// Runs a pair of jobs (receiver side first) and returns both results
    /// in completion order.
    pub fn run_pair(
        &mut self,
        server_ops: Vec<D2dOp>,
        client_ops: Vec<D2dOp>,
        tag: &'static str,
    ) -> Vec<D2dDone> {
        let before = self
            .tb
            .sim
            .world()
            .get::<Inbox>()
            .map(|i| i.0.len())
            .unwrap_or(0);
        let recv = D2dJob {
            id: 2_000_000 + before as u64,
            ops: client_ops,
            reply_to: self.probe,
            tag,
        };
        let send = D2dJob {
            id: 2_000_001 + before as u64,
            ops: server_ops,
            reply_to: self.probe,
            tag,
        };
        let probe = self.probe;
        let client = self.tb.client.submit_to;
        let server = self.tb.server.submit_to;
        self.tb.sim.kickoff(
            probe,
            Submit {
                to: client,
                job: recv,
            },
        );
        self.tb.sim.kickoff(
            probe,
            Submit {
                to: server,
                job: send,
            },
        );
        self.tb.sim.run();
        let inbox = self.tb.sim.world().expect::<Inbox>();
        assert_eq!(inbox.0.len(), before + 2, "both jobs must complete");
        inbox.0[before..].to_vec()
    }
}
