//! Figure 13 — estimated CPU utilization with high-performance devices.
//!
//! Projects the Figure 12 measurements onto a 40 Gbps NIC, six NVMe SSDs,
//! and a single 6-core Xeon: cores-vs-throughput curves per design, plus
//! the budget-capped maximum throughputs. Headlines: DCS-ctrl needs ≤3
//! cores at 40 Gbps and delivers ≈1.95× (Swift) / ≈2.06× (HDFS) the
//! throughput of software-controlled P2P under the 6-core budget.

use dcs_workloads::{project, DesignUnderTest, ProjectionInput, ProjectionResult};

use crate::fig12::{run_hdfs_rows, run_swift_rows};

/// Target hardware of the projection.
pub const TARGET_GBPS: f64 = 40.0;
/// Core budget of the projection.
pub const CORE_BUDGET: f64 = 6.0;

/// One projected design.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Design.
    pub design: DesignUnderTest,
    /// Projection from the measured operating point.
    pub result: ProjectionResult,
}

/// Projects one application's measured rows.
fn project_rows(
    rows: Vec<(DesignUnderTest, f64, f64, usize)>, // (design, gbps, util, cores)
) -> Vec<Fig13Row> {
    rows.into_iter()
        .map(|(design, gbps, util, cores)| Fig13Row {
            design,
            result: project(
                ProjectionInput {
                    measured_gbps: gbps,
                    measured_util: util,
                    cores,
                },
                TARGET_GBPS,
                CORE_BUDGET,
            ),
        })
        .collect()
}

/// Sub-figure (a): Swift projections.
pub fn run_swift_projection(quick: bool) -> Vec<Fig13Row> {
    let rows = run_swift_rows(quick)
        .into_iter()
        .map(|(d, r)| (d, r.throughput_gbps(), r.cpu_utilization(), 6))
        .collect();
    project_rows(rows)
}

/// Sub-figure (b): HDFS projections (receiver node, the bottleneck).
pub fn run_hdfs_projection(quick: bool) -> Vec<Fig13Row> {
    let rows = run_hdfs_rows(quick)
        .into_iter()
        .map(|(d, _snd, rcv)| (d, rcv.throughput_gbps(), rcv.cpu_utilization(), 6))
        .collect();
    project_rows(rows)
}

/// Throughput advantage of DCS-ctrl over SW-ctrl P2P under the budget.
pub fn throughput_ratio(rows: &[Fig13Row]) -> f64 {
    let cap = |d: DesignUnderTest| {
        rows.iter()
            .find(|r| r.design == d)
            .map(|r| r.result.max_gbps_within_budget)
            .expect("design projected")
    };
    cap(DesignUnderTest::DcsCtrl) / cap(DesignUnderTest::SwP2p)
}

fn render_rows(rows: &[Fig13Row], paper_ratio: f64) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "  {:<12} cores @ 40 Gbps: {:>5.2}   max Gbps within {CORE_BUDGET} cores: {:>5.1}\n",
            r.design.label(),
            r.result.cores_at_target,
            r.result.max_gbps_within_budget
        ));
    }
    out.push_str(&format!(
        "  throughput ratio DCS-ctrl / SW-ctrl P2P: {:.2}x  (paper: {paper_ratio:.2}x)\n",
        throughput_ratio(rows)
    ));
    out
}

/// Renders both sub-figures.
pub fn render(quick: bool) -> String {
    let mut out = String::from(
        "Figure 13 — projected CPU needs with a 40 Gbps NIC, 6 SSDs, one 6-core CPU\n",
    );
    out.push_str("\n(a) Swift\n");
    out.push_str(&render_rows(&run_swift_projection(quick), 1.95));
    out.push_str("\n(b) HDFS\n");
    out.push_str(&render_rows(&run_hdfs_projection(quick), 2.06));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcs_needs_few_cores_and_roughly_doubles_throughput() {
        let rows = run_swift_projection(true);
        let dcs = rows
            .iter()
            .find(|r| r.design == DesignUnderTest::DcsCtrl)
            .expect("dcs projected");
        assert!(
            dcs.result.cores_at_target < 4.0,
            "paper: ≤3 cores at 40 Gbps; got {:.2}",
            dcs.result.cores_at_target
        );
        let ratio = throughput_ratio(&rows);
        assert!(
            ratio > 1.4,
            "throughput advantage {ratio:.2} must be near 2x"
        );
    }
}
