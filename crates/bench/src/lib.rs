//! # dcs-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§V), each
//! exposing a typed `run(...)` the Criterion benches drive and a
//! `render(...)` the [`repro`](../repro/index.html) binary prints.
//! EXPERIMENTS.md records these outputs against the paper's reported
//! numbers.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Figure 2 — software device-control timeline |
//! | [`fig3`] | Figure 3 — microbenchmark latency + CPU breakdowns |
//! | [`fig8`] | Figure 8 — kernel-side CPU utilization, Linux vs DCS-ctrl |
//! | [`fig11`] | Figure 11 — inter-device communication latency |
//! | [`fig12`] | Figure 12 — Swift / HDFS CPU-utilization breakdowns |
//! | [`fig13`] | Figure 13 — scalability projection |
//! | [`table3`] | Table III — NDP unit resources and throughput |
//! | [`table4`] | Table IV — HDC Engine resource utilization |
//! | [`ablation`] | Extension: design-choice sweeps beyond the paper |
//! | [`faults`] | Extension: fault-injection sweep (robustness, §7 of DESIGN.md) |
//! | [`integrity`] | Extension: corruption audit + chaos-fuzz smoke (§12 of DESIGN.md) |
//! | [`cluster`] | Extension: multi-node cluster sweep (§8 of DESIGN.md) |
//! | [`anatomy`] | Extension: per-request latency anatomy + Chrome trace (§11 of DESIGN.md) |
//! | [`store`] | Extension: multi-tenant object-store sweep — YCSB, caching, QoS (§13 of DESIGN.md) |

pub mod ablation;
pub mod anatomy;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig8;
pub mod integrity;
pub mod probe;
pub mod store;
pub mod table3;
pub mod table4;

/// Formats a latency breakdown as an aligned table block.
pub fn render_breakdown(label: &str, b: &dcs_sim::Breakdown) -> String {
    let mut out = format!(
        "  {label:<20} total {:>10.2} us\n",
        b.total() as f64 / 1000.0
    );
    for (cat, ns) in b.entries() {
        out.push_str(&format!(
            "      {:<20} {:>10.2} us\n",
            cat.label(),
            ns as f64 / 1000.0
        ));
    }
    out
}
