//! The component abstraction: everything in the simulated server — a PCIe
//! switch port, an SSD, a CPU pool, the HDC Engine scoreboard — is a
//! [`Component`] registered with the [`Simulator`](crate::Simulator) and
//! addressed by a [`ComponentId`].

use std::fmt;

use crate::engine::Ctx;
use crate::event::Msg;

/// A stable handle to a registered component.
///
/// Ids are dense indices handed out by
/// [`Simulator::add`](crate::Simulator::add) /
/// [`Simulator::reserve`](crate::Simulator::reserve) and are valid for the
/// lifetime of the simulator that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// A sentinel id that no real component ever has. Used as the `src` of
    /// simulator-injected kickoff messages and in unit tests.
    pub const INVALID: ComponentId = ComponentId(u32::MAX);

    /// The raw index value (useful for diagnostics and dense side tables).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ComponentId::INVALID {
            write!(f, "ComponentId(INVALID)")
        } else {
            write!(f, "ComponentId({})", self.0)
        }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A reactive simulation actor.
///
/// Components own their private state and mutate it only in response to
/// messages; all interaction with the rest of the system goes through the
/// [`Ctx`]: scheduling future messages to themselves or to other components
/// and touching shared [`World`](crate::World) resources.
///
/// Implementations should treat an unexpected payload type as a logic bug
/// and panic with a useful message (the test suites rely on this loudness).
pub trait Component {
    /// Reacts to one message at the current simulation time.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_id_is_distinct_and_debuggable() {
        assert_eq!(
            format!("{:?}", ComponentId::INVALID),
            "ComponentId(INVALID)"
        );
        assert_eq!(format!("{:?}", ComponentId(3)), "ComponentId(3)");
        assert_ne!(ComponentId(0), ComponentId::INVALID);
        assert_eq!(ComponentId(5).index(), 5);
    }
}
