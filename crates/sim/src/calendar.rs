//! Event calendars: the hierarchical timing-wheel scheduler that drives
//! the hot path, and the binary-heap reference model it is proven
//! against.
//!
//! The simulator needs one operation mix done fast: insert events keyed
//! by `(time, seq)`, and drain them in strictly ascending key order. A
//! `BinaryHeap` does both in `O(log n)` with cache-hostile sifts, and
//! `n` includes every pending far-future timer (watchdogs, heartbeats,
//! retransmission deadlines) even though those are popped rarely. The
//! [`TimingWheel`] splits the calendar into three tiers instead:
//!
//! * **current slot** — a sorted [`VecDeque`] holding every pending
//!   event whose time falls at or before the end of the current
//!   [`SLOT_SPAN`]-ns window. Pops are `pop_front` (`O(1)`), same-time
//!   inserts append at the back (`O(1)`), and other near inserts are a
//!   binary-search splice.
//! * **near wheel** — [`WHEEL_SLOTS`] ring slots of [`SLOT_SPAN`] ns
//!   each (~[`WHEEL_HORIZON_NS`] ns of horizon). Inserts are `O(1)`
//!   appends; a slot is sorted once, when it becomes current. A bitmap
//!   finds the next occupied slot without scanning empties one by one.
//! * **far tier** — a small heap for events beyond the wheel horizon.
//!   Slow timers live here without taxing every near-future operation;
//!   they migrate into the wheel as the horizon slides over them.
//!
//! **Ordering invariant.** Every event is keyed by `(time, seq)` with
//! `seq` unique and monotone, so the total order is strict and the
//! per-slot `sort_unstable_by` is deterministic. The tiers partition
//! the key space by time — current slot < ring slots < far tier — so
//! the globally smallest key is always at the front of the current
//! slot once [`TimingWheel::materialize`] has run. The equivalence
//! harness (`crates/sim/tests/scheduler_equiv.rs`, root
//! `tests/scheduler_equiv.rs`) replays randomized and adversarial
//! schedules through both this wheel and [`HeapCalendar`] and asserts
//! byte-identical delivery.
//!
//! **Pooling invariant.** Slot buffers are recycled in place: draining
//! swaps the slot's `VecDeque` with the (empty, capacity-retaining)
//! current buffer, so after the first revolution a steady-state
//! workload allocates nothing per event beyond the `Msg` payload box
//! itself.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::component::ComponentId;
use crate::event::Msg;
use crate::time::SimTime;

/// Log2 of the nanoseconds covered by one wheel slot.
const SLOT_SHIFT: u32 = 9;
/// Width of one wheel slot: 512 ns — fine enough that a slot holds a
/// burst, not an epoch, at the event densities the testbeds produce.
pub(crate) const SLOT_SPAN: u64 = 1 << SLOT_SHIFT;
/// Number of ring slots (power of two). Deliberately small: the ring's
/// resident footprint (headers + pooled buffers) is what the dispatch
/// loop drags through cache every revolution, and sparse workloads pay
/// for empty breadth without getting anything back. 128 slots keep the
/// whole ring a few tens of KiB; everything past the horizon is the far
/// tier's problem and costs one migration, once.
pub(crate) const WHEEL_SLOTS: usize = 1 << 7;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// The wheel horizon: ~65.5 µs. Device-latency events (ns–µs) stay in
/// the ring; slower timers (heartbeats, watchdogs, request timeouts)
/// overflow to the far tier.
pub(crate) const WHEEL_HORIZON_NS: u128 = (WHEEL_SLOTS as u128) << SLOT_SHIFT;

/// A message waiting on the calendar.
pub(crate) struct Scheduled {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) dst: ComponentId,
    pub(crate) msg: Msg,
}

impl Scheduled {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (time, seq) — seq breaks ties so same-time events keep their
        // scheduling order, which is what makes the simulation
        // deterministic.
        self.key().cmp(&other.key())
    }
}

/// The calendar behind a [`Simulator`](crate::Simulator): the timing
/// wheel in production, or the heap reference model when a test asked
/// for it via `Simulator::set_reference_heap`.
pub(crate) enum Calendar {
    Wheel(TimingWheel),
    Heap(HeapCalendar),
}

impl Calendar {
    #[inline]
    pub(crate) fn push(&mut self, ev: Scheduled) {
        match self {
            Calendar::Wheel(w) => w.push(ev),
            Calendar::Heap(h) => h.push(ev),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        match self {
            Calendar::Wheel(w) => w.pop(),
            Calendar::Heap(h) => h.pop(),
        }
    }

    /// The next event, but only if it matches the `(time, dst)` of the
    /// event just popped — the batched-dispatch fast path.
    #[inline]
    pub(crate) fn pop_if(&mut self, time: SimTime, dst: ComponentId) -> Option<Scheduled> {
        match self {
            Calendar::Wheel(w) => w.pop_if(time, dst),
            Calendar::Heap(h) => h.pop_if(time, dst),
        }
    }

    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Calendar::Wheel(w) => w.peek_time(),
            Calendar::Heap(h) => h.peek_time(),
        }
    }

    /// The head's time, but only if it is `<= limit` — the
    /// deadline-bounded peek `run_until` is built on. Observationally
    /// identical to `peek_time().filter(|t| t <= limit)` on both
    /// calendars; on the wheel it additionally avoids materializing
    /// windows beyond the deadline.
    #[inline]
    pub(crate) fn peek_time_through(&mut self, limit: SimTime) -> Option<SimTime> {
        match self {
            Calendar::Wheel(w) => w.peek_time_through(limit),
            Calendar::Heap(h) => h.peek_time().filter(|&t| t <= limit),
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            Calendar::Wheel(w) => w.len(),
            Calendar::Heap(h) => h.len(),
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn name(&self) -> &'static str {
        match self {
            Calendar::Wheel(_) => "timing-wheel",
            Calendar::Heap(_) => "reference-heap",
        }
    }
}

/// The hierarchical timing-wheel / calendar-queue scheduler.
///
/// See the [module docs](self) for the tier layout and invariants.
pub(crate) struct TimingWheel {
    /// Ring slots; slot `i` holds events whose time `t` satisfies
    /// `(t >> SLOT_SHIFT) & WHEEL_MASK == i` and lies within the
    /// horizon. Unsorted until the slot becomes current.
    slots: Vec<VecDeque<Scheduled>>,
    /// One bit per slot: set iff the slot is non-empty.
    occupied: [u64; WHEEL_SLOTS / 64],
    /// Events currently in ring slots.
    ring_len: usize,
    /// The current-slot buffer, ascending by `(time, seq)`. Also
    /// absorbs any event scheduled at or before the current window's
    /// end — including behind `cur_start` when a `peek_time` has
    /// materialized ahead of the engine clock.
    cur: VecDeque<Scheduled>,
    /// Slot-aligned start of the current window. Monotone.
    cur_start: u64,
    /// Last nanosecond of the current window, inclusive
    /// (`cur_start + SLOT_SPAN - 1`). Cached so the push tier check is
    /// two `u64` compares, no horizon arithmetic.
    cur_last: u64,
    /// Last nanosecond covered by the ring, inclusive, saturating at
    /// `u64::MAX` (where every representable time is within the
    /// horizon, which is exactly what saturation expresses).
    wheel_last: u64,
    /// Events beyond the wheel horizon, min-first.
    far: BinaryHeap<Reverse<Scheduled>>,
    /// Total pending events across all three tiers.
    len: usize,
}

impl TimingWheel {
    pub(crate) fn new() -> Self {
        // Pre-size every slot for a typical burst and touch the buffer
        // once: first use on the hot path must neither realloc nor take
        // the page fault for a cold arena page (construction is off the
        // measured path; slot growth beyond this is pooled thereafter).
        let slots = (0..WHEEL_SLOTS)
            .map(|_| {
                let mut s = VecDeque::with_capacity(8);
                s.push_back(Scheduled {
                    time: SimTime::ZERO,
                    seq: 0,
                    dst: ComponentId(0),
                    msg: Msg::new(ComponentId::INVALID, ()),
                });
                s.clear();
                s
            })
            .collect();
        TimingWheel {
            slots,
            occupied: [0; WHEEL_SLOTS / 64],
            ring_len: 0,
            cur: VecDeque::new(),
            cur_start: 0,
            cur_last: SLOT_SPAN - 1,
            wheel_last: WHEEL_HORIZON_NS as u64 - 1,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Moves the window to the slot starting at `start` (slot-aligned)
    /// and refreshes the cached bounds.
    #[inline]
    fn set_window(&mut self, start: u64) {
        debug_assert_eq!(start & (SLOT_SPAN - 1), 0);
        self.cur_start = start;
        self.cur_last = start + (SLOT_SPAN - 1);
        self.wheel_last = start.saturating_add(WHEEL_HORIZON_NS as u64 - 1);
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Ring index of the current window.
    #[inline]
    fn pos(&self) -> usize {
        ((self.cur_start >> SLOT_SHIFT) & WHEEL_MASK) as usize
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
    }

    pub(crate) fn push(&mut self, ev: Scheduled) {
        let t = ev.time.as_nanos();
        self.len += 1;
        // Tier selection against the cached inclusive bounds. Both are
        // exact out to `u64::MAX` times (the equivalence harness
        // schedules there): `cur_last` never overflows because
        // `cur_start` is slot-aligned, and `wheel_last` saturates only
        // when the true horizon exceeds every representable time.
        if t <= self.cur_last {
            // Current window (or behind a materialized-ahead window).
            // Steady state — a handler scheduling at or after the event
            // being delivered — appends at the back in O(1); anything
            // arriving out of order splices by binary search, and
            // `VecDeque::insert` shifts whichever side is shorter.
            let key = (ev.time, ev.seq);
            match self.cur.back() {
                Some(back) if back.key() > key => {
                    let at = self.cur.partition_point(|e| e.key() < key);
                    self.cur.insert(at, ev);
                }
                _ => self.cur.push_back(ev),
            }
        } else if t <= self.wheel_last {
            // Near wheel: O(1) append; the slot index is derived from
            // absolute time bits, so it needs no per-event distance
            // arithmetic. `t > cur_last` guarantees the slot is ahead
            // of the current one.
            let idx = ((t >> SLOT_SHIFT) & WHEEL_MASK) as usize;
            self.slots[idx].push_back(ev);
            self.set_bit(idx);
            self.ring_len += 1;
        } else {
            self.far.push(Reverse(ev));
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        if !self.materialize() {
            return None;
        }
        self.len -= 1;
        self.cur.pop_front()
    }

    pub(crate) fn pop_if(&mut self, time: SimTime, dst: ComponentId) -> Option<Scheduled> {
        // Every pending event sharing `time` lives in `cur` (same-time
        // means same window, and the window was materialized to pop the
        // event this one is batched behind), so no tier scan is needed.
        let head = self.cur.front()?;
        if head.time == time && head.dst == dst {
            self.len -= 1;
            self.cur.pop_front()
        } else {
            None
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        if !self.materialize() {
            return None;
        }
        self.cur.front().map(|e| e.time)
    }

    /// [`peek_time`](Self::peek_time) bounded by `limit`: returns the
    /// head's time only if it is `<= limit`, and — crucially — refuses
    /// to slide the window past `limit` to find out. A deadline-bounded
    /// `run_until` loop that drains and re-arms the same near-future
    /// window therefore never drags far-tier timers into the ring; a
    /// standing population of pending timeouts costs it nothing.
    pub(crate) fn peek_time_through(&mut self, limit: SimTime) -> Option<SimTime> {
        let limit_ns = limit.as_nanos();
        loop {
            if let Some(head) = self.cur.front() {
                return if head.time <= limit {
                    Some(head.time)
                } else {
                    None
                };
            }
            if self.len == 0 {
                return None;
            }
            if self.ring_len > 0 {
                let k = self.next_occupied_distance();
                // Slot-aligned lower bound on every ring event; no
                // overflow because the occupied slot holds a real
                // `u64` time at or past this start.
                if self.cur_start + ((k as u64) << SLOT_SHIFT) > limit_ns {
                    return None;
                }
                self.advance_to_ring_slot(k);
            } else {
                // Ring empty: the far head is the global minimum.
                let head_t = match self.far.peek() {
                    Some(Reverse(ev)) => ev.time.as_nanos(),
                    None => unreachable!("non-empty calendar with empty tiers"),
                };
                if head_t > limit_ns {
                    return None;
                }
                self.jump_to_far_head(head_t);
            }
        }
    }

    /// Ensures the globally smallest pending event sits at
    /// `cur.front()`. Returns `false` iff the calendar is empty.
    fn materialize(&mut self) -> bool {
        while self.cur.is_empty() {
            if self.len == 0 {
                return false;
            }
            self.advance();
        }
        true
    }

    /// Moves the current window forward to the next tier content:
    /// either the next occupied ring slot, or (empty ring) a jump to
    /// the far tier's head window. Called only with `cur` empty and at
    /// least one event pending.
    fn advance(&mut self) {
        if self.ring_len == 0 {
            let head_t = match self.far.peek() {
                Some(Reverse(ev)) => ev.time.as_nanos(),
                None => unreachable!("advance called on an empty calendar"),
            };
            self.jump_to_far_head(head_t);
        } else {
            let k = self.next_occupied_distance();
            self.advance_to_ring_slot(k);
        }
    }

    /// Advances the window `k` slots to the next occupied ring slot and
    /// drains it into `cur`.
    fn advance_to_ring_slot(&mut self, k: usize) {
        self.set_window(self.cur_start + ((k as u64) << SLOT_SHIFT));
        let idx = self.pos();
        std::mem::swap(&mut self.cur, &mut self.slots[idx]);
        self.clear_bit(idx);
        self.ring_len -= self.cur.len();
        self.finish_window();
    }

    /// Jumps the window straight to the slot of the earliest far event
    /// (`head_t`, pre-peeked by the caller); the refill then lands it
    /// (and any horizon-mates) in `cur` / the ring.
    fn jump_to_far_head(&mut self, head_t: u64) {
        self.set_window(head_t & !(SLOT_SPAN - 1));
        self.finish_window();
    }

    /// Refills from the far tier and sorts the freshly current window.
    fn finish_window(&mut self) {
        self.refill_from_far();
        // Sort the drained slot once. Keys are unique, so the unstable
        // sort is deterministic.
        self.cur.make_contiguous().sort_unstable_by_key(|a| a.key());
    }

    /// Slides far-tier events that the advanced horizon now covers into
    /// the wheel (or straight into `cur` for the current window).
    fn refill_from_far(&mut self) {
        while let Some(Reverse(head)) = self.far.peek() {
            let t = head.time.as_nanos();
            if t > self.wheel_last {
                break;
            }
            let Some(Reverse(ev)) = self.far.pop() else {
                break;
            };
            if t <= self.cur_last {
                self.cur.push_back(ev); // sorted by the caller
            } else {
                let idx = ((t >> SLOT_SHIFT) & WHEEL_MASK) as usize;
                self.slots[idx].push_back(ev);
                self.set_bit(idx);
                self.ring_len += 1;
            }
        }
    }

    /// Distance (in slots, `1..WHEEL_SLOTS`) from the current position
    /// to the next occupied ring slot, scanning the occupancy bitmap a
    /// word at a time. Caller guarantees `ring_len > 0`; the current
    /// slot's own bit is always clear.
    fn next_occupied_distance(&self) -> usize {
        let pos = self.pos();
        let mask = WHEEL_SLOTS - 1;
        let mut idx = (pos + 1) & mask;
        let mut scanned = 0usize;
        loop {
            let word = self.occupied[idx >> 6] >> (idx & 63);
            if word != 0 {
                let found = idx + word.trailing_zeros() as usize;
                return (found + WHEEL_SLOTS - pos) & mask;
            }
            // Skip to the start of the next bitmap word.
            idx = ((idx >> 6) + 1) << 6;
            idx &= mask;
            scanned += 1;
            debug_assert!(
                scanned <= WHEEL_SLOTS / 64 + 1,
                "occupancy bitmap scan found no slot with ring_len={}",
                self.ring_len
            );
        }
    }
}

/// The original `BinaryHeap` calendar, kept as the reference model the
/// timing wheel is proven observationally identical to. Demoted from
/// the hot path; reachable only through the `#[doc(hidden)]`
/// `Simulator::set_reference_heap`, which the scheduler-equivalence and
/// determinism suites use to replay full workloads on both schedulers.
#[derive(Default)]
pub(crate) struct HeapCalendar {
    heap: BinaryHeap<Reverse<Scheduled>>,
}

impl HeapCalendar {
    #[inline]
    pub(crate) fn push(&mut self, ev: Scheduled) {
        self.heap.push(Reverse(ev));
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    pub(crate) fn pop_if(&mut self, time: SimTime, dst: ComponentId) -> Option<Scheduled> {
        match self.heap.peek() {
            Some(Reverse(head)) if head.time == time && head.dst == dst => self.pop(),
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn ev(time: u64, seq: u64) -> Scheduled {
        Scheduled {
            time: SimTime::from_nanos(time),
            seq,
            dst: ComponentId(0),
            msg: Msg::new(ComponentId::INVALID, ()),
        }
    }

    /// Drains a wheel and a heap loaded with the same events and
    /// asserts identical pop order.
    fn assert_equivalent_drain(events: Vec<(u64, u64)>) {
        let mut wheel = TimingWheel::new();
        let mut heap = HeapCalendar::default();
        for &(t, s) in &events {
            wheel.push(ev(t, s));
            heap.push(ev(t, s));
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => assert_eq!(x.key(), y.key()),
                (None, None) => break,
                _ => panic!("wheel and heap drained different counts"),
            }
        }
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn drains_in_time_seq_order_across_tiers() {
        // One event per tier-interesting region: current slot, mid
        // ring, just inside horizon, far beyond, and slot boundaries.
        assert_equivalent_drain(vec![
            (0, 0),
            (SLOT_SPAN - 1, 1),
            (SLOT_SPAN, 2),
            (SLOT_SPAN * 3, 3),
            ((WHEEL_HORIZON_NS - 1) as u64, 4),
            (WHEEL_HORIZON_NS as u64, 5),
            (WHEEL_HORIZON_NS as u64 * 7 + 13, 6),
            (5, 7),
        ]);
    }

    #[test]
    fn same_time_events_pop_in_seq_order() {
        let mut wheel = TimingWheel::new();
        for s in 0..100 {
            wheel.push(ev(1_000, s));
        }
        for s in 0..100 {
            assert_eq!(wheel.pop().unwrap().seq, s);
        }
    }

    #[test]
    fn randomized_drain_matches_heap() {
        let mut rng = Rng::new(0xCA1E17DA);
        for _ in 0..50 {
            let n = rng.gen_range(1..400) as usize;
            let mut seq = 0u64;
            let events: Vec<(u64, u64)> = (0..n)
                .map(|_| {
                    // Mix of near, horizon-straddling, and far times,
                    // with frequent exact collisions.
                    let t = match rng.gen_range(0..5) {
                        0 => rng.gen_range(0..SLOT_SPAN),
                        1 => rng.gen_range(0..WHEEL_HORIZON_NS as u64),
                        2 => (rng.gen_range(0..64)) * SLOT_SPAN, // boundaries
                        3 => rng.gen_range(0..32) * 1_000,       // collisions
                        _ => rng.gen_range(0..u64::MAX >> 1),
                    };
                    seq += 1;
                    (t, seq)
                })
                .collect();
            assert_equivalent_drain(events);
        }
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Pushes interleaved with pops, always scheduling at or after
        // the last popped time (the engine's contract).
        let mut rng = Rng::new(0x1A7E12);
        for _ in 0..30 {
            let mut wheel = TimingWheel::new();
            let mut heap = HeapCalendar::default();
            let mut seq = 0u64;
            let mut now = 0u64;
            let push_both =
                |wheel: &mut TimingWheel, heap: &mut HeapCalendar, t: u64, seq: &mut u64| {
                    wheel.push(ev(t, *seq));
                    heap.push(ev(t, *seq));
                    *seq += 1;
                };
            for _ in 0..40 {
                push_both(&mut wheel, &mut heap, now, &mut seq);
            }
            for _ in 0..400 {
                if rng.gen_range(0..3) == 0 || wheel.len() == 0 {
                    let delay = match rng.gen_range(0..4) {
                        0 => 0,
                        1 => rng.gen_range(0..SLOT_SPAN * 2),
                        2 => rng.gen_range(0..WHEEL_HORIZON_NS as u64 * 2),
                        _ => SLOT_SPAN * rng.gen_range(0..WHEEL_SLOTS as u64),
                    };
                    push_both(&mut wheel, &mut heap, now.saturating_add(delay), &mut seq);
                } else {
                    let a = wheel.pop().unwrap();
                    let b = heap.pop().unwrap();
                    assert_eq!(a.key(), b.key());
                    now = a.time.as_nanos();
                }
            }
        }
    }

    #[test]
    fn near_u64_max_times_survive() {
        let mut wheel = TimingWheel::new();
        let top = u64::MAX;
        wheel.push(ev(top, 2));
        wheel.push(ev(top - 1, 1));
        wheel.push(ev(0, 0));
        assert_eq!(wheel.pop().unwrap().seq, 0);
        assert_eq!(wheel.pop().unwrap().seq, 1);
        assert_eq!(wheel.pop().unwrap().seq, 2);
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn push_behind_materialized_window_stays_ordered() {
        // peek_time materializes the window of a far event; a later
        // push in between `now` and that window must still pop first.
        let mut wheel = TimingWheel::new();
        wheel.push(ev(WHEEL_HORIZON_NS as u64 * 3, 0));
        assert_eq!(
            wheel.peek_time(),
            Some(SimTime::from_nanos(WHEEL_HORIZON_NS as u64 * 3))
        );
        wheel.push(ev(7, 1)); // behind the materialized window
        wheel.push(ev(WHEEL_HORIZON_NS as u64 * 2, 2));
        assert_eq!(wheel.pop().unwrap().seq, 1);
        assert_eq!(wheel.pop().unwrap().seq, 2);
        assert_eq!(wheel.pop().unwrap().seq, 0);
    }

    #[test]
    fn pop_if_takes_only_matching_head() {
        let mut wheel = TimingWheel::new();
        let t = SimTime::from_nanos(100);
        wheel.push(Scheduled {
            time: t,
            seq: 0,
            dst: ComponentId(1),
            msg: Msg::new(ComponentId::INVALID, ()),
        });
        wheel.push(Scheduled {
            time: t,
            seq: 1,
            dst: ComponentId(1),
            msg: Msg::new(ComponentId::INVALID, ()),
        });
        wheel.push(Scheduled {
            time: t,
            seq: 2,
            dst: ComponentId(2),
            msg: Msg::new(ComponentId::INVALID, ()),
        });
        let first = wheel.pop().unwrap();
        assert_eq!(first.dst, ComponentId(1));
        // Same time, same dst: batched.
        assert!(wheel.pop_if(t, ComponentId(1)).is_some());
        // Same time, different dst: refused.
        assert!(wheel.pop_if(t, ComponentId(1)).is_none());
        assert_eq!(wheel.pop().unwrap().dst, ComponentId(2));
    }

    #[test]
    fn slot_buffers_are_recycled() {
        // After a full revolution the wheel must not grow: capacity
        // moves between `cur` and the slots, never leaks.
        let mut wheel = TimingWheel::new();
        let mut seq = 0;
        for round in 0..5u64 {
            for i in 0..200 {
                wheel.push(ev(round * WHEEL_HORIZON_NS as u64 + i * 17, seq));
                seq += 1;
            }
            while wheel.pop().is_some() {}
        }
        assert_eq!(wheel.len(), 0);
    }
}
