//! Sim-time observability: tracing spans, per-request latency anatomy,
//! a metrics registry, and a Chrome trace-event exporter.
//!
//! The paper's core results are latency *anatomies* — Figures 8/11/12
//! break one device-control operation into per-hop PCIe, doorbell, DMA
//! and engine phases. This module lets any run answer "where did the
//! nanoseconds go" without perturbing the run itself:
//!
//! * **Spans** ([`Recorder::span`], [`Recorder::span_begin`] /
//!   [`Recorder::span_end`]) record `[start, end]` intervals in *virtual*
//!   time, keyed on request IDs. No wall clock is ever read, so traces
//!   are bit-identical across same-seed runs (asserted by
//!   `tests/determinism.rs`).
//! * **Anatomy** ([`Recorder::req_begin`], [`Recorder::mark`],
//!   [`Recorder::req_end`]) records a contiguous chain of phase segments
//!   per request. Each mark closes the segment since the previous mark,
//!   so the segments telescope: their sum equals the end-to-end latency
//!   *exactly* (±0), by construction.
//! * **Metrics** ([`Recorder::count`], [`Recorder::gauge_set`],
//!   [`Recorder::observe`]) maintain named counters / gauges /
//!   histograms per component, snapshotted into a serializable
//!   [`MetricsReport`].
//! * **Export**: [`chrome_trace`] renders everything as Chrome
//!   trace-event JSON loadable in Perfetto (`ui.perfetto.dev`).
//!
//! Gating rule (DESIGN.md §11): instrumentation is compiled in
//! unconditionally but *runtime-gated*. Every recording method begins
//! with a single `enabled` branch and returns immediately when the
//! recorder is off — the disabled cost is one predictable branch per
//! event. Recording is purely observational: it never touches the RNG,
//! never schedules events, and never changes any simulation state, so
//! enabling it cannot change simulation behaviour.

use std::collections::BTreeMap;

use crate::detmap::DetMap;
use crate::stats::Histogram;
use crate::time::SimTime;

pub mod json;

pub use json::Json;

/// One recorded interval in virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Component category (`"pcie"`, `"nvme"`, `"nic"`, `"hdc"`,
    /// `"host"`, `"cluster"`).
    pub cat: &'static str,
    /// Phase name within the category (`"dma"`, `"flash-read"`, …).
    pub name: &'static str,
    /// Request/command/DMA identifier the span belongs to.
    pub req: u64,
    /// Start of the interval, nanoseconds of virtual time.
    pub start_ns: u64,
    /// End of the interval, nanoseconds of virtual time.
    pub end_ns: u64,
}

/// The contiguous phase chain of one request.
///
/// Segments telescope: `begin + Σ segment = end`, so
/// `Σ segment == end - begin` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anatomy {
    /// Virtual time the request was submitted.
    pub begin_ns: u64,
    /// `(label, duration_ns)` segments in chronological order.
    pub segments: Vec<(&'static str, u64)>,
    /// Virtual time the request completed (`None` while in flight).
    pub end_ns: Option<u64>,
    /// End of the last closed segment (next segment starts here).
    last_ns: u64,
}

impl Anatomy {
    /// End-to-end latency, or `None` while the request is in flight.
    pub fn total_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e - self.begin_ns)
    }

    /// Sum of the recorded segments (equals [`Anatomy::total_ns`] once
    /// the request has ended).
    pub fn segment_sum_ns(&self) -> u64 {
        self.segments.iter().map(|(_, ns)| ns).sum()
    }
}

/// A live metric slot in the registry.
#[derive(Clone, Debug)]
enum Slot {
    Counter(u64),
    Gauge(i64),
    Hist(Histogram),
}

/// Named metrics registered per component, keyed `(component, name)`.
///
/// A `BTreeMap` keeps iteration (and therefore every snapshot and
/// serialization) in deterministic name order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    slots: BTreeMap<(&'static str, &'static str), Slot>,
}

impl MetricsRegistry {
    /// Adds `n` to the counter `component/name`, creating it at zero.
    pub fn count(&mut self, component: &'static str, name: &'static str, n: u64) {
        match self
            .slots
            .entry((component, name))
            .or_insert(Slot::Counter(0))
        {
            Slot::Counter(v) => *v += n,
            other => *other = Slot::Counter(n),
        }
    }

    /// Sets the gauge `component/name` to `v`.
    pub fn gauge_set(&mut self, component: &'static str, name: &'static str, v: i64) {
        self.slots.insert((component, name), Slot::Gauge(v));
    }

    /// Records `sample` into the histogram `component/name`.
    pub fn observe(&mut self, component: &'static str, name: &'static str, sample: u64) {
        match self
            .slots
            .entry((component, name))
            .or_insert_with(|| Slot::Hist(Histogram::new()))
        {
            Slot::Hist(h) => h.record(sample),
            other => {
                let mut h = Histogram::new();
                h.record(sample);
                *other = Slot::Hist(h);
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Snapshots every metric into a serializable report, in
    /// `(component, name)` order.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            entries: self
                .slots
                .iter()
                .map(|(&(component, name), slot)| MetricEntry {
                    component: component.to_string(),
                    name: name.to_string(),
                    value: match slot {
                        Slot::Counter(v) => MetricValue::Counter(*v),
                        Slot::Gauge(v) => MetricValue::Gauge(*v),
                        Slot::Hist(h) => MetricValue::Histogram(HistogramSnapshot::of(h)),
                    },
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of the registry, serializable to JSON and back.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Snapshotted metrics in `(component, name)` order.
    pub entries: Vec<MetricEntry>,
}

/// One snapshotted metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Owning component (`"pcie"`, `"nvme"`, …).
    pub component: String,
    /// Metric name within the component.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value of a snapshotted metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(i64),
    /// Latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// Sparse, serializable copy of a [`Histogram`]: only non-zero buckets
/// are kept, as `(bucket_index, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u128,
    /// Smallest sample (`u64::MAX` when empty, mirroring `Histogram`).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-zero `(bucket_index, count)` pairs in index order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Snapshots `h`.
    pub fn of(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(u64::MAX),
            max: h.max().unwrap_or(0),
            buckets: h.nonzero_buckets().collect(),
        }
    }
}

impl MetricsReport {
    /// Serializes the report to JSON.
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let value = match &e.value {
                    MetricValue::Counter(v) => {
                        Json::Obj(vec![("counter".to_string(), Json::Int(*v as i128))])
                    }
                    MetricValue::Gauge(v) => {
                        Json::Obj(vec![("gauge".to_string(), Json::Int(*v as i128))])
                    }
                    MetricValue::Histogram(h) => Json::Obj(vec![(
                        "histogram".to_string(),
                        Json::Obj(vec![
                            ("count".to_string(), Json::Int(h.count as i128)),
                            ("sum".to_string(), Json::Int(h.sum as i128)),
                            ("min".to_string(), Json::Int(h.min as i128)),
                            ("max".to_string(), Json::Int(h.max as i128)),
                            (
                                "buckets".to_string(),
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(i, n)| {
                                            Json::Arr(vec![
                                                Json::Int(i as i128),
                                                Json::Int(n as i128),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )]),
                };
                Json::Obj(vec![
                    ("component".to_string(), Json::Str(e.component.clone())),
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("value".to_string(), value),
                ])
            })
            .collect();
        Json::Obj(vec![("metrics".to_string(), Json::Arr(entries))]).render()
    }

    /// Parses a report back from [`MetricsReport::to_json`] output.
    pub fn from_json(text: &str) -> Result<MetricsReport, String> {
        let root = Json::parse(text)?;
        let metrics = root
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing \"metrics\" array")?;
        let mut entries = Vec::with_capacity(metrics.len());
        for m in metrics {
            let component = m
                .get("component")
                .and_then(Json::as_str)
                .ok_or("entry missing \"component\"")?
                .to_string();
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("entry missing \"name\"")?
                .to_string();
            let value = m.get("value").ok_or("entry missing \"value\"")?;
            let value = if let Some(v) = value.get("counter").and_then(Json::as_i128) {
                MetricValue::Counter(v as u64)
            } else if let Some(v) = value.get("gauge").and_then(Json::as_i128) {
                MetricValue::Gauge(v as i64)
            } else if let Some(h) = value.get("histogram") {
                let int = |k: &str| -> Result<i128, String> {
                    h.get(k)
                        .and_then(Json::as_i128)
                        .ok_or_else(|| format!("histogram missing \"{k}\""))
                };
                let mut buckets = Vec::new();
                for pair in h
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or("histogram missing \"buckets\"")?
                {
                    match pair.as_arr() {
                        Some([Json::Int(i), Json::Int(n)]) => {
                            buckets.push((*i as usize, *n as u64));
                        }
                        _ => return Err("malformed bucket pair".to_string()),
                    }
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count: int("count")? as u64,
                    sum: int("sum")? as u128,
                    min: int("min")? as u64,
                    max: int("max")? as u64,
                    buckets,
                })
            } else {
                return Err("unknown metric value kind".to_string());
            };
            entries.push(MetricEntry {
                component,
                name,
                value,
            });
        }
        Ok(MetricsReport { entries })
    }
}

/// The sim-time recorder, reachable as `world.obs` from every
/// component's [`Ctx`](crate::Ctx).
///
/// Disabled by default: every recording method costs exactly one branch
/// and records nothing until [`Recorder::enable`] is called.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    spans: Vec<Span>,
    /// Open begin/end spans, keyed `(cat, name, req)`.
    open: DetMap<(&'static str, &'static str, u64), u64>,
    /// Per-request anatomy chains, keyed on request ID.
    requests: DetMap<u64, Anatomy>,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// A disabled recorder (the default in every new world).
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns recording off (already-recorded data is kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Discards everything recorded so far.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.open.clear();
        self.requests.clear();
        self.metrics = MetricsRegistry::default();
    }

    /// Records a complete span whose bounds are both already known —
    /// the common case here, since the DES computes transfer delays
    /// analytically before scheduling their completion.
    #[inline]
    pub fn span(
        &mut self,
        cat: &'static str,
        name: &'static str,
        req: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            cat,
            name,
            req,
            start_ns: start.as_nanos(),
            end_ns: end.as_nanos(),
        });
    }

    /// Opens a span keyed on `(cat, name, req)`; closed by the matching
    /// [`Recorder::span_end`]. Re-opening an open key restarts it.
    #[inline]
    pub fn span_begin(&mut self, cat: &'static str, name: &'static str, req: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.open.insert((cat, name, req), now.as_nanos());
    }

    /// Closes the span opened by [`Recorder::span_begin`]. A close
    /// without a matching open is ignored (the begin side may predate
    /// `enable()`, or the operation may have been dropped by a fault).
    #[inline]
    pub fn span_end(&mut self, cat: &'static str, name: &'static str, req: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some(start_ns) = self.open.remove(&(cat, name, req)) {
            self.spans.push(Span {
                cat,
                name,
                req,
                start_ns,
                end_ns: now.as_nanos(),
            });
        }
    }

    /// Starts the anatomy chain of request `req` at `now`.
    #[inline]
    pub fn req_begin(&mut self, req: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        let ns = now.as_nanos();
        self.requests.insert(
            req,
            Anatomy {
                begin_ns: ns,
                segments: Vec::new(),
                end_ns: None,
                last_ns: ns,
            },
        );
    }

    /// Closes the segment `[previous mark, now]` under `label`. Ignored
    /// for requests with no [`Recorder::req_begin`] (e.g. tracing was
    /// enabled mid-flight).
    #[inline]
    pub fn mark(&mut self, req: u64, label: &'static str, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some(a) = self.requests.get_mut(&req) {
            let ns = now.as_nanos();
            a.segments.push((label, ns.saturating_sub(a.last_ns)));
            a.last_ns = ns;
        }
    }

    /// Closes the final segment under `label` and ends the request.
    #[inline]
    pub fn req_end(&mut self, req: u64, label: &'static str, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some(a) = self.requests.get_mut(&req) {
            let ns = now.as_nanos();
            a.segments.push((label, ns.saturating_sub(a.last_ns)));
            a.last_ns = ns;
            a.end_ns = Some(ns);
        }
    }

    /// Adds `n` to the counter `component/name` (gated like spans).
    #[inline]
    pub fn count(&mut self, component: &'static str, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.count(component, name, n);
    }

    /// Sets the gauge `component/name` (gated like spans).
    #[inline]
    pub fn gauge_set(&mut self, component: &'static str, name: &'static str, v: i64) {
        if !self.enabled {
            return;
        }
        self.metrics.gauge_set(component, name, v);
    }

    /// Records `sample` into the histogram `component/name` (gated like
    /// spans).
    #[inline]
    pub fn observe(&mut self, component: &'static str, name: &'static str, sample: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.observe(component, name, sample);
    }

    /// Every recorded span, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The anatomy chain of request `req`, if one was begun.
    pub fn anatomy(&self, req: u64) -> Option<&Anatomy> {
        self.requests.get(&req)
    }

    /// Iterates `(request, anatomy)` in request-begin order.
    pub fn anatomies(&self) -> impl Iterator<Item = (u64, &Anatomy)> + '_ {
        self.requests.iter().map(|(k, v)| (*k, v))
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Renders the per-request latency-anatomy table; the segment
    /// column sums to the end-to-end total exactly.
    pub fn render_anatomy(&self, req: u64) -> Option<String> {
        let a = self.requests.get(&req)?;
        let total = a.total_ns()?;
        let mut out = format!("request {req} — latency anatomy ({total} ns end-to-end)\n");
        for (label, ns) in &a.segments {
            let pct = if total == 0 {
                0.0
            } else {
                *ns as f64 * 100.0 / total as f64
            };
            out.push_str(&format!("  {label:<28} {ns:>12} ns  {pct:>5.1}%\n"));
        }
        out.push_str(&format!(
            "  {:<28} {:>12} ns  100.0%\n",
            "total",
            a.segment_sum_ns()
        ));
        Some(out)
    }
}

/// Renders the recorder's spans and anatomies as Chrome trace-event
/// JSON (the object form: `{"traceEvents": [...], ...}`), loadable in
/// Perfetto or `chrome://tracing`.
///
/// * Each component category becomes a "process" (`pid`), each request
///   a "thread" (`tid`), so Perfetto groups rows by layer.
/// * `ts`/`dur` are microseconds per the format; the *exact* nanosecond
///   values ride along in `args` (`start_ns`, `ns`).
/// * `metadata.requests` carries each request's anatomy and end-to-end
///   latency in nanoseconds, so a consumer can check the ±0 sum
///   invariant without touching the µs fields.
pub fn chrome_trace(rec: &Recorder) -> String {
    // Deterministic pid assignment: first-seen category order.
    let mut pids: DetMap<&'static str, i128> = DetMap::new();
    let pid_of = |cat: &'static str, pids: &mut DetMap<&'static str, i128>| -> i128 {
        if let Some(&p) = pids.get(cat) {
            p
        } else {
            let p = pids.len() as i128 + 1;
            pids.insert(cat, p);
            p
        }
    };
    let us = |ns: u64| Json::Float(ns as f64 / 1000.0);
    let mut events: Vec<Json> = Vec::new();
    for s in rec.spans() {
        let pid = pid_of(s.cat, &mut pids);
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(s.name.to_string())),
            ("cat".to_string(), Json::Str(s.cat.to_string())),
            ("ph".to_string(), Json::Str("X".to_string())),
            ("ts".to_string(), us(s.start_ns)),
            ("dur".to_string(), us(s.end_ns - s.start_ns)),
            ("pid".to_string(), Json::Int(pid)),
            ("tid".to_string(), Json::Int(s.req as i128)),
            (
                "args".to_string(),
                Json::Obj(vec![
                    ("req".to_string(), Json::Int(s.req as i128)),
                    ("start_ns".to_string(), Json::Int(s.start_ns as i128)),
                    ("ns".to_string(), Json::Int((s.end_ns - s.start_ns) as i128)),
                ]),
            ),
        ]));
    }
    let mut requests_meta: Vec<Json> = Vec::new();
    for (req, a) in rec.anatomies() {
        let pid = pid_of("anatomy", &mut pids);
        let mut at = a.begin_ns;
        let mut segs_meta: Vec<Json> = Vec::new();
        for (label, ns) in &a.segments {
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(label.to_string())),
                ("cat".to_string(), Json::Str("anatomy".to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), us(at)),
                ("dur".to_string(), us(*ns)),
                ("pid".to_string(), Json::Int(pid)),
                ("tid".to_string(), Json::Int(req as i128)),
                (
                    "args".to_string(),
                    Json::Obj(vec![
                        ("req".to_string(), Json::Int(req as i128)),
                        ("start_ns".to_string(), Json::Int(at as i128)),
                        ("ns".to_string(), Json::Int(*ns as i128)),
                    ]),
                ),
            ]));
            segs_meta.push(Json::Obj(vec![
                ("label".to_string(), Json::Str(label.to_string())),
                ("ns".to_string(), Json::Int(*ns as i128)),
            ]));
            at += ns;
        }
        let mut req_obj = vec![
            ("id".to_string(), Json::Int(req as i128)),
            ("begin_ns".to_string(), Json::Int(a.begin_ns as i128)),
            ("anatomy".to_string(), Json::Arr(segs_meta)),
        ];
        if let Some(total) = a.total_ns() {
            req_obj.push(("e2e_ns".to_string(), Json::Int(total as i128)));
        }
        requests_meta.push(Json::Obj(req_obj));
    }
    // Name each category's process row for Perfetto.
    let name_events: Vec<Json> = pids
        .iter()
        .map(|(cat, pid)| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str("process_name".to_string())),
                ("ph".to_string(), Json::Str("M".to_string())),
                ("pid".to_string(), Json::Int(*pid)),
                ("tid".to_string(), Json::Int(0)),
                (
                    "args".to_string(),
                    Json::Obj(vec![("name".to_string(), Json::Str(cat.to_string()))]),
                ),
            ])
        })
        .collect();
    let mut all = name_events;
    all.extend(events);
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(all)),
        ("displayTimeUnit".to_string(), Json::Str("ns".to_string())),
        (
            "metadata".to_string(),
            Json::Obj(vec![("requests".to_string(), Json::Arr(requests_meta))]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::new();
        r.span("pcie", "dma", 1, t(0), t(10));
        r.span_begin("nvme", "flash", 1, t(0));
        r.span_end("nvme", "flash", 1, t(5));
        r.req_begin(1, t(0));
        r.mark(1, "x", t(3));
        r.req_end(1, "y", t(9));
        r.count("pcie", "dma.count", 1);
        r.observe("pcie", "dma.ns", 10);
        assert!(r.spans().is_empty());
        assert!(r.anatomy(1).is_none());
        assert!(r.metrics().is_empty());
    }

    #[test]
    fn anatomy_segments_sum_exactly_to_end_to_end() {
        let mut r = Recorder::new();
        r.enable();
        r.req_begin(7, t(100));
        r.mark(7, "parse", t(137));
        r.mark(7, "data", t(977));
        r.req_end(7, "completion", t(1003));
        let a = r.anatomy(7).expect("begun");
        assert_eq!(a.total_ns(), Some(903));
        assert_eq!(a.segment_sum_ns(), 903);
        assert_eq!(
            a.segments,
            vec![("parse", 37), ("data", 840), ("completion", 26)]
        );
        let table = r.render_anatomy(7).expect("ended");
        assert!(table.contains("903 ns end-to-end"), "{table}");
    }

    #[test]
    fn begin_end_spans_pair_by_key_and_orphan_ends_are_ignored() {
        let mut r = Recorder::new();
        r.enable();
        r.span_begin("nic", "wire", 3, t(10));
        r.span_begin("nic", "wire", 4, t(12));
        r.span_end("nic", "wire", 4, t(20));
        r.span_end("nic", "wire", 3, t(25));
        r.span_end("nic", "wire", 99, t(30)); // never opened
        assert_eq!(
            r.spans(),
            &[
                Span {
                    cat: "nic",
                    name: "wire",
                    req: 4,
                    start_ns: 12,
                    end_ns: 20
                },
                Span {
                    cat: "nic",
                    name: "wire",
                    req: 3,
                    start_ns: 10,
                    end_ns: 25
                },
            ]
        );
    }

    #[test]
    fn metrics_snapshot_roundtrips_through_json() {
        let mut r = Recorder::new();
        r.enable();
        r.count("pcie", "dma.count", 2);
        r.count("pcie", "dma.count", 3);
        r.gauge_set("cluster", "inflight", -4);
        for v in [1u64, 1, 40, 5_000_000, u64::MAX / 2] {
            r.observe("nvme", "flash.ns", v);
        }
        let report = r.metrics().snapshot();
        let json = report.to_json();
        let back = MetricsReport::from_json(&json).expect("parses");
        assert_eq!(report, back);
        // Counter accumulated, gauge kept last value.
        assert!(json.contains("\"counter\":5"), "{json}");
        assert!(json.contains("\"gauge\":-4"), "{json}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_exact_ns_args() {
        let mut r = Recorder::new();
        r.enable();
        r.span("pcie", "dma", 1, t(0), t(1500));
        r.req_begin(1, t(0));
        r.req_end(1, "all", t(2500));
        let text = chrome_trace(&r);
        let root = Json::parse(&text).expect("valid JSON");
        let events = root
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        // 2 process_name metadata + 1 span + 1 anatomy segment.
        assert_eq!(events.len(), 4, "{text}");
        let reqs = root
            .get("metadata")
            .and_then(|m| m.get("requests"))
            .and_then(Json::as_arr)
            .expect("requests");
        assert_eq!(reqs[0].get("e2e_ns").and_then(Json::as_i128), Some(2500));
    }

    #[test]
    fn enable_midstream_ignores_unknown_requests() {
        let mut r = Recorder::new();
        r.req_begin(5, t(0)); // disabled: dropped
        r.enable();
        r.mark(5, "late", t(10));
        r.req_end(5, "later", t(20));
        assert!(r.anatomy(5).is_none());
    }
}
