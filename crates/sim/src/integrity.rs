//! End-to-end payload-integrity auditing.
//!
//! The containment machinery (ECRC, poisoned TLPs, completion CRCs) is
//! supposed to guarantee one property above all others: *a request that
//! completes successfully carried the right bytes*. This module gives
//! tests and the chaos fuzzer a way to check that property from the
//! outside. Install an [`IntegrityAudit`] in the [`World`] and the host
//! executor records a digest of every payload it hands back alongside
//! the completion status; the harness then compares digests of
//! successful requests against the expected ones. Without the resource
//! installed the audit hook is a single resource lookup — fault-free
//! runs stay event-identical.

use crate::world::World;

/// FNV-1a 64-bit hash (dependency-free, deterministic, fast enough to
/// digest simulated payloads).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One audited completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditEntry {
    /// Job id the payload belonged to.
    pub id: u64,
    /// Whether the request completed successfully.
    pub ok: bool,
    /// FNV-1a 64 digest of the delivered payload bytes.
    pub digest: u64,
    /// Payload length in bytes.
    pub len: usize,
}

/// World resource collecting [`AuditEntry`] records (install it before
/// running; absent, auditing is off).
#[derive(Debug, Default)]
pub struct IntegrityAudit {
    /// Entries in completion order.
    pub entries: Vec<AuditEntry>,
}

impl IntegrityAudit {
    /// Entries that completed successfully.
    pub fn successes(&self) -> impl Iterator<Item = &AuditEntry> + '_ {
        self.entries.iter().filter(|e| e.ok)
    }

    /// Job ids of successful completions whose digest is not
    /// `expected` — the containment escapes. Must be empty whenever
    /// ECRC is on, no matter the corruption rate.
    pub fn escapes(&self, expected: u64) -> Vec<u64> {
        self.successes()
            .filter(|e| e.digest != expected)
            .map(|e| e.id)
            .collect()
    }
}

/// Records a completed payload if an [`IntegrityAudit`] is installed
/// (no-op — one resource lookup — otherwise).
pub fn audit(world: &mut World, id: u64, ok: bool, payload: &[u8]) {
    if world.get::<IntegrityAudit>().is_some() {
        let entry = AuditEntry {
            id,
            ok,
            digest: fnv1a64(payload),
            len: payload.len(),
        };
        world.expect_mut::<IntegrityAudit>().entries.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn audit_is_inert_without_resource() {
        let mut world = World::new(1);
        audit(&mut world, 7, true, b"payload");
        assert!(world.get::<IntegrityAudit>().is_none());
    }

    #[test]
    fn audit_records_and_flags_escapes() {
        let mut world = World::new(1);
        world.insert(IntegrityAudit::default());
        let expected = fnv1a64(b"good");
        audit(&mut world, 1, true, b"good");
        audit(&mut world, 2, true, b"evil");
        audit(&mut world, 3, false, b"evil"); // failed: not an escape
        let log = world.expect::<IntegrityAudit>();
        assert_eq!(log.entries.len(), 3);
        assert_eq!(log.successes().count(), 2);
        assert_eq!(log.escapes(expected), vec![2]);
    }
}
