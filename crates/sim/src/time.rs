//! Simulated time, durations, and bandwidth arithmetic.
//!
//! Time is kept in integer nanoseconds. Durations are plain `u64`
//! nanosecond counts built with the [`ns`]/[`us`]/[`ms`]/[`secs`] helpers;
//! [`SimTime`] is an absolute instant on the simulation clock. Keeping
//! durations as bare integers (rather than a second newtype) keeps the
//! arithmetic in cost models readable while `SimTime` still prevents mixing
//! instants with durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One nanosecond expressed as a duration in simulator units.
pub const NANOSECOND: u64 = 1;

/// Builds a duration of `n` nanoseconds.
#[inline]
pub const fn ns(n: u64) -> u64 {
    n
}

/// Builds a duration of `n` microseconds.
#[inline]
pub const fn us(n: u64) -> u64 {
    n * 1_000
}

/// Builds a duration of `n` milliseconds.
#[inline]
pub const fn ms(n: u64) -> u64 {
    n * 1_000_000
}

/// Builds a duration of `n` seconds.
#[inline]
pub const fn secs(n: u64) -> u64 {
    n * 1_000_000_000
}

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use dcs_sim::time::{self, SimTime};
/// let t = SimTime::ZERO + time::us(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `n` microseconds after time zero.
    #[inline]
    pub const fn from_us(n: u64) -> Self {
        SimTime(n * 1_000)
    }

    /// Creates an instant `n` milliseconds after time zero.
    #[inline]
    pub const fn from_ms(n: u64) -> Self {
        SimTime(n * 1_000_000)
    }

    /// Creates an instant `n` seconds after time zero.
    #[inline]
    pub const fn from_secs(n: u64) -> Self {
        SimTime(n * 1_000_000_000)
    }

    /// Raw nanosecond count since time zero.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; simulated time never runs
    /// backwards, so that indicates a logic error in the caller.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("SimTime::since: `earlier` is after `self`")
    }

    /// Saturating duration since another instant (zero if `other` is later).
    #[inline]
    pub fn saturating_since(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, dur: u64) -> SimTime {
        SimTime(self.0 + dur)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, dur: u64) {
        self.0 += dur;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A data rate, used to convert byte counts into transfer durations.
///
/// Rates are stored in bits per second to match how the paper quotes device
/// speeds (e.g. the Intel 750's 17.2 Gbps read bandwidth, the 10 Gbps NIC).
///
/// ```
/// use dcs_sim::Bandwidth;
/// let wire = Bandwidth::gbps(10.0);
/// // 1250 bytes = 10_000 bits at 10 Gbps -> 1 us.
/// assert_eq!(wire.transfer_time(1250), 1_000);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth {
    bits_per_sec: f64,
}

impl Bandwidth {
    /// A rate in gigabits per second (decimal: 1 Gbps = 1e9 bits/s).
    #[inline]
    pub fn gbps(g: f64) -> Self {
        assert!(g > 0.0, "bandwidth must be positive");
        Bandwidth {
            bits_per_sec: g * 1e9,
        }
    }

    /// A rate in megabits per second.
    #[inline]
    pub fn mbps(m: f64) -> Self {
        assert!(m > 0.0, "bandwidth must be positive");
        Bandwidth {
            bits_per_sec: m * 1e6,
        }
    }

    /// A rate in bytes per second.
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0, "bandwidth must be positive");
        Bandwidth {
            bits_per_sec: b * 8.0,
        }
    }

    /// The rate in gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.bits_per_sec / 1e9
    }

    /// The rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.bits_per_sec / 8.0
    }

    /// Time, in nanoseconds, to move `bytes` at this rate (rounded up, with
    /// a minimum of 1 ns for any non-empty transfer so events always make
    /// progress).
    #[inline]
    pub fn transfer_time(self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let nanos = (bytes as f64 * 8.0) / self.bits_per_sec * 1e9;
        (nanos.ceil() as u64).max(1)
    }

    /// Scales the rate by a factor (e.g. protocol efficiency < 1.0).
    #[inline]
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Bandwidth {
            bits_per_sec: self.bits_per_sec * factor,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_helpers_compose() {
        assert_eq!(ns(7), 7);
        assert_eq!(us(7), 7_000);
        assert_eq!(ms(7), 7_000_000);
        assert_eq!(secs(7), 7_000_000_000);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_us(10);
        assert_eq!((t + us(5)).as_nanos(), 15_000);
        assert_eq!(t.since(SimTime::from_us(4)), 6_000);
        assert_eq!(t - SimTime::from_us(4), 6_000);
        assert_eq!(SimTime::from_us(4).saturating_since(t), 0);
        assert_eq!(t.max(SimTime::from_us(11)), SimTime::from_us(11));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn simtime_since_panics_on_reversal() {
        let _ = SimTime::from_us(1).since(SimTime::from_us(2));
    }

    #[test]
    fn simtime_display_scales_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn bandwidth_transfer_times() {
        let bw = Bandwidth::gbps(8.0); // 1 GB/s
        assert_eq!(bw.transfer_time(1_000_000), 1_000_000); // 1 MB -> 1 ms
        assert_eq!(bw.transfer_time(0), 0);
        assert_eq!(bw.transfer_time(1), 1); // rounds up to >= 1 ns
        assert!((bw.as_bytes_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_scaling() {
        let wire = Bandwidth::gbps(10.0).scaled(0.9);
        assert!((wire.as_gbps() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::gbps(0.0);
    }
}
