//! Shrinking chaos-schedule fuzzer.
//!
//! Searches seeds and random fault schedules for invariant violations —
//! a wrong payload delivered as success, a hung request, a
//! non-deterministic replay — then *shrinks* the failing schedule to a
//! minimal [`FaultSpec::Nth`] plan and renders it as a reproducible
//! test case. Everything here is deterministic: seeds derive from the
//! fuzzer's base seed, the target runs under those seeds, and shrinking
//! is a pure function of check outcomes, so the same `FuzzConfig`
//! produces the same report byte for byte.
//!
//! The fuzzer is generic over the target: callers supply a closure that
//! executes one [`FuzzCase`] (typically: build a testbed with the
//! case's seed, install the case's plan, run a workload, audit the
//! results) and reports a [`RunOutcome`]. Pinning works because fault
//! shaping entropy depends only on `(site, event index)` (see
//! [`FaultPlan::fired_log`](crate::fault::FaultPlan::fired_log)): replaying
//! the fired indices as an `Nth` schedule under the same seed replays
//! byte-identical faults.

use crate::fault::FaultSpec;
use crate::rng::Rng;

/// One candidate fault schedule: a world seed plus per-site specs.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Seed for the target's world/testbed.
    pub seed: u64,
    /// Fault sites to enable and how.
    pub sites: Vec<(&'static str, FaultSpec)>,
}

/// An invariant violation the target observed (or the fuzzer inferred).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A request completed successfully but delivered the wrong bytes.
    WrongPayload {
        /// Job id of the corrupted-but-successful request.
        job: u64,
    },
    /// A request hung, panicked, or otherwise failed to complete
    /// exactly once (the target converts panics/stalls into this).
    Hung {
        /// Human-readable detail (panic message, stalled job id, ...).
        detail: String,
    },
    /// Two runs of the identical case produced different fingerprints.
    NonDeterministic,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WrongPayload { job } => {
                write!(f, "wrong payload delivered as success (job {job})")
            }
            Violation::Hung { detail } => write!(f, "hung/panicked request: {detail}"),
            Violation::NonDeterministic => write!(f, "non-deterministic replay"),
        }
    }
}

/// What one execution of a case produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Deterministic digest of the run (completion sequence, tallies,
    /// final sim time — anything that must replay identically).
    pub fingerprint: u64,
    /// The plan's fired-index log ([`FaultPlan::fired_log`](crate::fault::FaultPlan::fired_log)).
    pub fired: Vec<(&'static str, Vec<u64>)>,
    /// Violation the target detected in this run, if any.
    pub violation: Option<Violation>,
}

/// Search parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed every case seed derives from.
    pub base_seed: u64,
    /// Number of random cases to try (each runs twice for the
    /// determinism check).
    pub cases: u32,
    /// Per-event fault probability while searching.
    pub rate: f64,
    /// Sites to storm.
    pub sites: Vec<&'static str>,
    /// Ceiling on target executions spent shrinking one counterexample.
    pub max_shrink_runs: u32,
}

/// A minimized, reproducible counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The minimal pinned schedule (every site an `Nth` spec).
    pub case: FuzzCase,
    /// The violation the minimal case still triggers.
    pub violation: Violation,
    /// Scheduled fault events before shrinking.
    pub shrunk_from: usize,
    /// Scheduled fault events after shrinking.
    pub shrunk_to: usize,
}

impl Counterexample {
    /// Renders the counterexample as a stable, copy-pasteable repro
    /// description.
    pub fn repro(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("violation: {}\n", self.violation));
        out.push_str(&format!("seed: 0x{:016x}\n", self.case.seed));
        out.push_str(&format!(
            "schedule ({} fault events, shrunk from {}):\n",
            self.shrunk_to, self.shrunk_from
        ));
        for (site, spec) in &self.case.sites {
            if let FaultSpec::Nth(idxs) = spec {
                if !idxs.is_empty() {
                    out.push_str(&format!(
                        "  plan.enable({site:?}, FaultSpec::Nth(vec!{idxs:?}));\n"
                    ));
                }
            }
        }
        out
    }
}

/// Fuzzing summary.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases explored before stopping.
    pub cases_run: u32,
    /// Total target executions (search + verify + shrink).
    pub runs: u32,
    /// First counterexample found, minimized — `None` means the budget
    /// passed clean.
    pub counterexample: Option<Counterexample>,
}

/// Runs the search: for each derived seed, storms `cfg.sites` at
/// `cfg.rate`, executes the case twice (determinism check), and on any
/// violation pins the schedule to the fired indices and shrinks it to a
/// locally-minimal `Nth` plan (removing any single remaining event
/// makes the violation vanish, budget permitting).
pub fn fuzz(cfg: &FuzzConfig, mut run: impl FnMut(&FuzzCase) -> RunOutcome) -> FuzzReport {
    let mut seeds = Rng::new(cfg.base_seed);
    let mut runs = 0u32;
    for case_idx in 0..cfg.cases {
        let seed = seeds.next_u64();
        let case = FuzzCase {
            seed,
            sites: cfg
                .sites
                .iter()
                .map(|s| (*s, FaultSpec::Probability(cfg.rate)))
                .collect(),
        };
        let first = run(&case);
        let second = run(&case);
        runs += 2;
        let violation = if first.fingerprint != second.fingerprint {
            Some(Violation::NonDeterministic)
        } else {
            first.violation.clone()
        };
        let Some(violation) = violation else { continue };
        let counterexample = shrink(
            &cfg.sites,
            seed,
            &first.fired,
            violation,
            {
                let budget = cfg.max_shrink_runs;
                let runs = &mut runs;
                move |c: &FuzzCase, run: &mut dyn FnMut(&FuzzCase) -> RunOutcome| {
                    if *runs >= budget {
                        return None;
                    }
                    let a = run(c);
                    let b = run(c);
                    *runs += 2;
                    if a.fingerprint != b.fingerprint {
                        Some(Violation::NonDeterministic)
                    } else {
                        a.violation
                    }
                }
            },
            &mut run,
        );
        return FuzzReport {
            cases_run: case_idx + 1,
            runs,
            counterexample: Some(counterexample),
        };
    }
    FuzzReport {
        cases_run: cfg.cases,
        runs,
        counterexample: None,
    }
}

/// Rebuilds a pinned case from a flat `(site, index)` event list.
fn rebuild(sites: &[&'static str], seed: u64, events: &[(&'static str, u64)]) -> FuzzCase {
    let site_events = |site: &str| {
        let mut idxs: Vec<u64> = events
            .iter()
            .filter(|(s, _)| *s == site)
            .map(|(_, i)| *i)
            .collect();
        idxs.sort_unstable();
        idxs
    };
    FuzzCase {
        seed,
        sites: sites
            .iter()
            .map(|s| (*s, FaultSpec::Nth(site_events(s))))
            .collect(),
    }
}

/// Greedy delta-debugging over the flattened fired-event list: try
/// dropping chunks (halving the chunk size down to single events) and
/// keep any removal that still triggers *a* violation. The result is
/// 1-minimal when the run budget allows a full single-event pass.
fn shrink(
    sites: &[&'static str],
    seed: u64,
    fired: &[(&'static str, Vec<u64>)],
    original: Violation,
    mut check: impl FnMut(&FuzzCase, &mut dyn FnMut(&FuzzCase) -> RunOutcome) -> Option<Violation>,
    run: &mut dyn FnMut(&FuzzCase) -> RunOutcome,
) -> Counterexample {
    let mut events: Vec<(&'static str, u64)> = fired
        .iter()
        .flat_map(|(site, idxs)| idxs.iter().map(move |i| (*site, *i)))
        .collect();
    let shrunk_from = events.len();
    let mut violation = original;

    // Verify the pinned schedule reproduces before trusting it as the
    // shrink substrate; if it doesn't (or the budget is gone), fall back
    // to the un-pinned probability case description via the pinned one —
    // still reproducible, just not minimal.
    let pinned = rebuild(sites, seed, &events);
    match check(&pinned, run) {
        Some(v) => violation = v,
        None => {
            return Counterexample {
                case: pinned,
                violation,
                shrunk_from,
                shrunk_to: shrunk_from,
            }
        }
    }

    let mut chunk = events.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < events.len() {
            let end = (i + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(i..end);
            match check(&rebuild(sites, seed, &candidate), run) {
                Some(v) => {
                    events = candidate;
                    violation = v;
                    removed_any = true;
                    // Re-test from the same position: the next chunk
                    // slid into place.
                }
                None => i = end,
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
        if events.is_empty() {
            break;
        }
    }

    let shrunk_to = events.len();
    Counterexample {
        case: rebuild(sites, seed, &events),
        violation,
        shrunk_from,
        shrunk_to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::integrity::fnv1a64;

    /// Synthetic target: a "system" whose invariant breaks iff site
    /// `a` fires at index >= 2 while site `b` fires at least once.
    /// 40 eligible events per site.
    fn toy_target(case: &FuzzCase) -> RunOutcome {
        let mut plan = FaultPlan::new(Rng::new(case.seed));
        for (site, spec) in &case.sites {
            plan.enable(site, spec.clone());
        }
        let mut world = crate::world::World::new(case.seed);
        world.insert(plan);
        let mut fp = Vec::new();
        for site in ["a", "b"] {
            for _ in 0..40 {
                let hit = crate::fault::inject(&mut world, site);
                fp.push(hit.unwrap_or(0));
            }
        }
        let fired = world.expect::<FaultPlan>().fired_log();
        let a_late = fired
            .iter()
            .find(|(s, _)| *s == "a")
            .map(|(_, i)| i.iter().any(|&x| x >= 2))
            .unwrap_or(false);
        let b_any = fired
            .iter()
            .find(|(s, _)| *s == "b")
            .map(|(_, i)| !i.is_empty());
        let violation =
            (a_late && b_any.unwrap_or(false)).then_some(Violation::WrongPayload { job: 1 });
        let bytes: Vec<u8> = fp.iter().flat_map(|v| v.to_le_bytes()).collect();
        RunOutcome {
            fingerprint: fnv1a64(&bytes),
            fired,
            violation,
        }
    }

    fn toy_config() -> FuzzConfig {
        FuzzConfig {
            base_seed: 0, // callers override
            cases: 32,
            rate: 0.25,
            sites: vec!["a", "b"],
            max_shrink_runs: 400,
        }
    }

    #[test]
    fn finds_and_shrinks_to_minimal_schedule() {
        let cfg = FuzzConfig {
            base_seed: 0xF00D,
            ..toy_config()
        };
        let report = fuzz(&cfg, toy_target);
        let cx = report
            .counterexample
            .expect("25% storms must trip the toy invariant");
        assert_eq!(cx.violation, Violation::WrongPayload { job: 1 });
        // Minimal schedule: exactly one late `a` event and one `b` event.
        assert_eq!(cx.shrunk_to, 2, "repro:\n{}", cx.repro());
        assert!(cx.shrunk_from >= cx.shrunk_to);
        // The emitted schedule still reproduces.
        let replay = toy_target(&cx.case);
        assert_eq!(replay.violation, Some(Violation::WrongPayload { job: 1 }));
        let repro = cx.repro();
        assert!(repro.contains("wrong payload"), "{repro}");
        assert!(repro.contains("FaultSpec::Nth"), "{repro}");
    }

    #[test]
    fn fuzzer_is_deterministic() {
        let cfg = FuzzConfig {
            base_seed: 0xBEEF,
            ..toy_config()
        };
        let a = fuzz(&cfg, toy_target);
        let b = fuzz(&cfg, toy_target);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.cases_run, b.cases_run);
        let (ca, cb) = (a.counterexample, b.counterexample);
        assert_eq!(ca.is_some(), cb.is_some());
        if let (Some(ca), Some(cb)) = (ca, cb) {
            assert_eq!(ca.repro(), cb.repro());
            assert_eq!(ca.case.seed, cb.case.seed);
        }
    }

    #[test]
    fn clean_target_reports_no_counterexample() {
        let cfg = FuzzConfig {
            base_seed: 7,
            cases: 5,
            ..toy_config()
        };
        let report = fuzz(&cfg, |case| {
            let mut out = toy_target(case);
            out.violation = None; // target never violates
            out
        });
        assert!(report.counterexample.is_none());
        assert_eq!(report.cases_run, 5);
        assert_eq!(report.runs, 10);
    }

    #[test]
    fn nondeterminism_is_detected() {
        let mut flip = 0u64;
        let cfg = FuzzConfig {
            base_seed: 9,
            cases: 3,
            max_shrink_runs: 0,
            ..toy_config()
        };
        let report = fuzz(&cfg, |case| {
            let mut out = toy_target(case);
            flip += 1;
            out.fingerprint ^= flip; // every run fingerprints differently
            out
        });
        let cx = report
            .counterexample
            .expect("differing fingerprints are a violation");
        assert_eq!(cx.violation, Violation::NonDeterministic);
    }
}
