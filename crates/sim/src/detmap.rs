//! Insertion-ordered, seed-independent map and set.
//!
//! `std::collections::HashMap` iterates in an order derived from a
//! per-process random hasher seed, so any code that iterates one — or
//! whose behavior depends on which entry a scan visits first — breaks
//! the bit-identical same-seed replay the whole test suite asserts.
//! [`DetMap`] and [`DetSet`] keep the O(1) keyed lookups of a hash map
//! but iterate strictly in **insertion order**, which depends only on
//! the simulation's own event sequence and is therefore reproducible.
//!
//! The API mirrors `HashMap`/`HashSet` closely enough that migrating a
//! field is a type change plus an import. Differences worth knowing:
//!
//! * `remove` is O(n) in the number of live entries (it preserves the
//!   order of the survivors). Device tables here hold tens of in-flight
//!   entries, so this is irrelevant in practice.
//! * Re-inserting an existing key replaces the value but keeps the
//!   key's original position, exactly like `HashMap`.
//! * Iteration order is part of the contract and is tested.
//!
//! `dcs-lint` enforces that simulation crates use these types instead
//! of the std hash containers (rule `hash-collection`).

// dcs-lint: allow-file(hash-collection) — this module wraps HashMap; the interior index is lookup-only and every iteration goes through the insertion-ordered Vec

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A hash map that iterates in insertion order.
///
/// Drop-in replacement for the `std::collections::HashMap` patterns
/// used in this workspace; see the module docs for the differences.
#[derive(Clone)]
pub struct DetMap<K, V> {
    /// key -> position in `entries`. Never iterated.
    index: HashMap<K, usize>,
    /// Live entries in insertion order.
    entries: Vec<(K, V)>,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap {
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        DetMap {
            index: HashMap::with_capacity(cap),
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
    }

    /// Inserts `value` under `key`, returning the previous value if the
    /// key was present. An existing key keeps its insertion position.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index.get(&key) {
            Some(&i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Borrows the value for `key`, if present.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.index.get(key).map(|&i| &self.entries[i].1)
    }

    /// Mutably borrows the value for `key`, if present.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match self.index.get(key) {
            Some(&i) => Some(&mut self.entries[i].1),
            None => None,
        }
    }

    /// True when `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.index.contains_key(key)
    }

    /// Removes `key`, returning its value if it was present. The
    /// relative order of the surviving entries is preserved (O(n)).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = self.index.remove(key)?;
        let (_, value) = self.entries.remove(i);
        // Positions after the hole shift left by one. Order-independent
        // fix-up, so scanning the hash index here is benign.
        // dcs-lint: allow(hash-iter) — order-independent position fix-up
        for pos in self.index.values_mut() {
            if *pos > i {
                *pos -= 1;
            }
        }
        Some(value)
    }

    /// Removes and returns the oldest (first-inserted) entry.
    pub fn pop_first(&mut self) -> Option<(K, V)> {
        if self.entries.is_empty() {
            return None;
        }
        let (key, value) = self.entries.remove(0);
        self.index.remove(&key);
        // dcs-lint: allow(hash-iter) — order-independent position fix-up
        for pos in self.index.values_mut() {
            *pos -= 1;
        }
        Some((key, value))
    }

    /// The in-place entry API: `map.entry(k).or_insert(v)` etc.
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        Entry { map: self, key }
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates `(key, mut value)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> + '_ {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates mutable values in insertion order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> + '_ {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only the entries for which `keep` returns true, preserving
    /// the order of the survivors.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| keep(k, v));
        self.index.clear();
        for (i, (k, _)) in self.entries.iter().enumerate() {
            self.index.insert(k.clone(), i);
        }
    }

    /// Empties the map, yielding the entries in insertion order.
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> {
        self.index.clear();
        std::mem::take(&mut self.entries).into_iter()
    }
}

impl<K: Eq + Hash + Clone, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: Eq + Hash + Clone, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = DetMap::new();
        map.extend(iter);
        map
    }
}

impl<K: Eq + Hash + Clone, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K: Eq + Hash + Clone, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K, Q, V> std::ops::Index<&Q> for DetMap<K, V>
where
    K: Eq + Hash + Clone + Borrow<Q>,
    Q: Eq + Hash + ?Sized,
{
    type Output = V;
    fn index(&self, key: &Q) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<K: Eq + Hash + Clone, V: PartialEq> PartialEq for DetMap<K, V> {
    /// Content equality, like `HashMap`: insertion order does not
    /// participate.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl<K: Eq + Hash + Clone, V: Eq> Eq for DetMap<K, V> {}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

/// View into a single key of a [`DetMap`], occupied or vacant.
pub struct Entry<'a, K, V> {
    map: &'a mut DetMap<K, V>,
    key: K,
}

impl<'a, K: Eq + Hash + Clone, V> Entry<'a, K, V> {
    /// Inserts `default` if the key is vacant; returns the value.
    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    /// Inserts `make()` if the key is vacant; returns the value.
    pub fn or_insert_with(self, make: impl FnOnce() -> V) -> &'a mut V {
        let i = match self.map.index.get(&self.key) {
            Some(&i) => i,
            None => {
                let i = self.map.entries.len();
                self.map.index.insert(self.key.clone(), i);
                self.map.entries.push((self.key, make()));
                i
            }
        };
        &mut self.map.entries[i].1
    }

    /// Mutates the value in place if the key is occupied.
    pub fn and_modify(self, f: impl FnOnce(&mut V)) -> Self {
        if let Some(&i) = self.map.index.get(&self.key) {
            f(&mut self.map.entries[i].1);
        }
        self
    }
}

impl<'a, K: Eq + Hash + Clone, V: Default> Entry<'a, K, V> {
    /// Inserts `V::default()` if the key is vacant; returns the value.
    pub fn or_default(self) -> &'a mut V {
        self.or_insert_with(V::default)
    }
}

/// A hash set that iterates in insertion order. See [`DetMap`].
#[derive(Clone, Default)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T: Eq + Hash + Clone> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet { map: DetMap::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Adds `value`; returns true if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// True when `value` is present.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Removes `value`; returns true if it was present.
    pub fn remove<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.remove(value).is_some()
    }

    /// Iterates elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.map.keys()
    }

    /// Keeps only the elements for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.map.retain(|k, _| keep(k));
    }
}

impl<T: Eq + Hash + Clone> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = DetSet::new();
        set.extend(iter);
        set
    }
}

impl<T: Eq + Hash + Clone> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::vec::IntoIter<(T, ())>, fn((T, ())) -> T>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.into_iter().map(|(k, ())| k)
    }
}

impl<T: Eq + Hash + Clone + PartialEq> PartialEq for DetSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T: fmt::Debug> fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.map.entries.iter().map(|(k, _)| k))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut m = DetMap::new();
        for k in [30u32, 10, 20, 5] {
            m.insert(k, k * 2);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![30, 10, 20, 5]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, vec![60, 20, 40, 10]);
        let pairs: Vec<(u32, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(30, 60), (10, 20), (20, 40), (5, 10)]);
    }

    #[test]
    fn reinsert_keeps_position_and_returns_old() {
        let mut m = DetMap::new();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.insert("a", 9), Some(1));
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m["a"], 9);
    }

    #[test]
    fn remove_preserves_survivor_order() {
        let mut m: DetMap<u8, u8> = (0..6).map(|i| (i, i)).collect();
        assert_eq!(m.remove(&2), Some(2));
        assert_eq!(m.remove(&2), None);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 1, 3, 4, 5]);
        // Lookups survive the index fix-up.
        for k in [0u8, 1, 3, 4, 5] {
            assert_eq!(m.get(&k), Some(&k));
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn pop_first_is_fifo() {
        let mut m: DetMap<u8, &str> = DetMap::new();
        m.insert(7, "x");
        m.insert(3, "y");
        assert_eq!(m.pop_first(), Some((7, "x")));
        assert_eq!(m.get(&3), Some(&"y"));
        assert_eq!(m.pop_first(), Some((3, "y")));
        assert_eq!(m.pop_first(), None);
    }

    #[test]
    fn entry_api_matches_hashmap_semantics() {
        let mut m: DetMap<&str, u32> = DetMap::new();
        *m.entry("hits").or_insert(0) += 1;
        *m.entry("hits").or_insert(0) += 1;
        assert_eq!(m["hits"], 2);
        m.entry("tags").or_default();
        assert_eq!(m["tags"], 0);
        m.entry("hits").and_modify(|v| *v *= 10).or_insert(99);
        assert_eq!(m["hits"], 20);
        m.entry("fresh").and_modify(|v| *v *= 10).or_insert(99);
        assert_eq!(m["fresh"], 99);
        let called = m.entry("lazy").or_insert_with(|| 42);
        assert_eq!(*called, 42);
    }

    #[test]
    fn borrowed_key_lookup() {
        let mut m: DetMap<String, u32> = DetMap::new();
        m.insert("pool-a".to_string(), 1);
        assert_eq!(m.get("pool-a"), Some(&1));
        assert!(m.contains_key("pool-a"));
        assert_eq!(m.remove("pool-a"), Some(1));
        assert!(m.is_empty());
    }

    #[test]
    fn retain_and_drain() {
        let mut m: DetMap<u8, u8> = (0..8).map(|i| (i, i)).collect();
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 2, 4, 6]);
        assert_eq!(m.get(&4), Some(&4));
        let drained: Vec<(u8, u8)> = m.drain().collect();
        assert_eq!(drained, vec![(0, 0), (2, 2), (4, 4), (6, 6)]);
        assert!(m.is_empty());
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn equality_ignores_order() {
        let a: DetMap<u8, u8> = [(1, 10), (2, 20)].into_iter().collect();
        let b: DetMap<u8, u8> = [(2, 20), (1, 10)].into_iter().collect();
        assert_eq!(a, b);
        let c: DetMap<u8, u8> = [(1, 10), (2, 21)].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn set_basics_and_order() {
        let mut s = DetSet::new();
        assert!(s.insert(9u16));
        assert!(s.insert(4));
        assert!(!s.insert(9));
        assert!(s.contains(&4));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![9, 4]);
        assert!(s.remove(&9));
        assert!(!s.remove(&9));
        assert_eq!(s.len(), 1);
        s.retain(|_| false);
        assert!(s.is_empty());
    }

    #[test]
    fn debug_formats_like_std() {
        let m: DetMap<u8, u8> = [(1, 2)].into_iter().collect();
        assert_eq!(format!("{m:?}"), "{1: 2}");
        let s: DetSet<u8> = [3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{3}");
    }
}
