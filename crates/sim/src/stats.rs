//! Measurement primitives: named counters, busy-time trackers for
//! utilization accounting, and latency histograms.
//!
//! The paper's evaluation reports two kinds of numbers — latency breakdowns
//! (Figures 3a, 11) and CPU-utilization breakdowns (Figures 3b, 8, 12, 13).
//! [`Histogram`] and [`BusyTracker`] are the primitives behind both.

use std::collections::BTreeMap;

/// A monotonically increasing named counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Global named statistics kept in the [`World`](crate::World).
#[derive(Debug, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, Counter>,
}

impl Stats {
    /// Empty statistics.
    pub fn new() -> Self {
        Stats::default()
    }

    /// The counter registered under `name`, creating it at zero on first use.
    pub fn counter(&mut self, name: &'static str) -> &mut Counter {
        self.counters.entry(name).or_default()
    }

    /// Reads a counter without creating it (zero if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.value()).unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, v.value()))
    }
}

/// Tracks how much of a resource's time is spent busy, broken down by a
/// caller-supplied tag — the mechanism behind every CPU-utilization figure.
///
/// `record(tag, busy_ns)` attributes `busy_ns` nanoseconds of busy time to
/// `tag`; `utilization(span, capacity)` divides total busy time by
/// `capacity × span`.
///
/// ```
/// use dcs_sim::{BusyTracker, SimTime};
/// let mut cpu = BusyTracker::new();
/// cpu.record("kernel", 500_000);
/// cpu.record("driver", 250_000);
/// let util = cpu.utilization(1_000_000, 1.0);
/// assert!((util - 0.75).abs() < 1e-9);
/// assert_eq!(cpu.busy_for("kernel"), 500_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BusyTracker {
    by_tag: BTreeMap<String, u64>,
    total: u64,
}

impl BusyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        BusyTracker::default()
    }

    /// Attributes `busy_ns` of busy time to `tag`.
    pub fn record(&mut self, tag: &str, busy_ns: u64) {
        *self.by_tag.entry(tag.to_string()).or_insert(0) += busy_ns;
        self.total += busy_ns;
    }

    /// Total busy time across all tags, in nanoseconds.
    pub fn total_busy(&self) -> u64 {
        self.total
    }

    /// Busy time attributed to `tag` (zero if never recorded).
    pub fn busy_for(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).copied().unwrap_or(0)
    }

    /// Fraction of `capacity` servers kept busy over a span of `span_ns`:
    /// `total_busy / (span_ns * capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `span_ns` is zero or `capacity` is not positive.
    pub fn utilization(&self, span_ns: u64, capacity: f64) -> f64 {
        assert!(span_ns > 0, "utilization over an empty span");
        assert!(capacity > 0.0, "capacity must be positive");
        self.total as f64 / (span_ns as f64 * capacity)
    }

    /// Per-tag utilization fractions over a span (same denominator as
    /// [`BusyTracker::utilization`]), in tag order.
    pub fn utilization_breakdown(&self, span_ns: u64, capacity: f64) -> Vec<(String, f64)> {
        assert!(span_ns > 0, "utilization over an empty span");
        assert!(capacity > 0.0, "capacity must be positive");
        let denom = span_ns as f64 * capacity;
        self.by_tag
            .iter()
            .map(|(tag, busy)| (tag.clone(), *busy as f64 / denom))
            .collect()
    }

    /// Iterates `(tag, busy_ns)` in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.by_tag.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another tracker into this one (used to aggregate per-node
    /// trackers in two-node experiments).
    pub fn merge(&mut self, other: &BusyTracker) {
        for (tag, busy) in other.iter() {
            self.record(tag, busy);
        }
    }

    /// Resets all recorded time (used to discard warm-up phases).
    pub fn reset(&mut self) {
        self.by_tag.clear();
        self.total = 0;
    }
}

/// Sub-bucket resolution of [`Histogram`]: each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantization error of any reported quantile to `2^-SUB_BITS` (≈3.1%).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Values below `SUB` get one exact bucket each; above, 32 sub-buckets per
/// octave for the remaining 59 octaves of the u64 range.
const BUCKETS: usize = (64 - SUB_BITS as usize - 1) * SUB + SUB;

/// A latency histogram with log-linear buckets plus exact min/max/mean.
///
/// Buckets are exact below 32 and split every power-of-two octave into 32
/// linear sub-buckets above, so any quantile is reported within a 1/32
/// (≈3.1%) relative error bound of the true sample — tight enough to
/// compare tail latencies across load-balancing policies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        // (v >> shift) is in [SUB, 2*SUB): the linear sub-bucket plus SUB.
        (msb - SUB_BITS) as usize * SUB + (v >> shift) as usize
    }
}

/// Inclusive upper bound of bucket `idx` (every sample in the bucket is
/// ≤ this, and > this minus the bucket width).
#[inline]
fn bucket_bound(idx: usize) -> u64 {
    if idx < 2 * SUB {
        idx as u64
    } else {
        let shift = (idx / SUB - 1) as u32;
        (((idx % SUB + SUB + 1) as u64) << shift) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Records one sample (e.g. a request latency in nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// `ceil(q·count)`-th smallest sample, clamped to the observed max.
    /// The result `r` brackets the exact sample `e` as
    /// `e ≤ r ≤ e·(1 + 2⁻⁵) + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// [`Histogram::quantile`] with `p` expressed in percent (`p99` is
    /// `percentile(99.0)`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.quantile(p / 100.0)
    }

    /// The median (50th percentile).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(99.9)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Iterates the non-zero `(bucket_index, count)` pairs in index
    /// order — the sparse form used by serialized snapshots
    /// ([`crate::obs::HistogramSnapshot`]).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Merges another histogram into this one (aggregating per-node tail
    /// latencies into a cluster-wide distribution).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut s = Stats::new();
        s.counter("x").add(2);
        s.counter("x").add(3);
        assert_eq!(s.counter_value("x"), 5);
        assert_eq!(s.counter_value("absent"), 0);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all, vec![("x", 5)]);
    }

    #[test]
    fn busy_tracker_breakdown_sums_to_total() {
        let mut t = BusyTracker::new();
        t.record("a", 100);
        t.record("b", 300);
        t.record("a", 100);
        assert_eq!(t.total_busy(), 500);
        assert_eq!(t.busy_for("a"), 200);
        let breakdown = t.utilization_breakdown(1000, 1.0);
        let sum: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!((sum - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_merge_and_reset() {
        let mut a = BusyTracker::new();
        a.record("k", 10);
        let mut b = BusyTracker::new();
        b.record("k", 5);
        b.record("u", 1);
        a.merge(&b);
        assert_eq!(a.busy_for("k"), 15);
        assert_eq!(a.total_busy(), 16);
        a.reset();
        assert_eq!(a.total_busy(), 0);
    }

    #[test]
    fn multi_core_utilization_denominator() {
        let mut t = BusyTracker::new();
        t.record("app", 6_000);
        // 6000ns busy over a 1000ns span on 12 cores => 50%.
        assert!((t.utilization(1_000, 12.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-9);
        assert!(h.quantile(0.5).unwrap() <= 100);
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every percentile is None, at both extremes too.
        let h = Histogram::new();
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);

        // Single sample: every percentile is that sample exactly (the
        // bucket bound is clamped to the observed max).
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), Some(777), "p{p} of a single sample");
        }

        // All-equal samples: the distribution collapses to one value.
        let mut h = Histogram::new();
        for _ in 0..1_000 {
            h.record(4_096);
        }
        for p in [0.0, 25.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), Some(4_096), "p{p} of all-equal samples");
        }

        // p0 resolves to the minimum's bucket and p100 clamps to the
        // exact observed max even when its bucket bound rounds up.
        let mut h = Histogram::new();
        for v in [10u64, 20, 1_000_003] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(10));
        assert_eq!(h.percentile(100.0), Some(1_000_003));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_above_100_panics() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.percentile(100.1);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_below_zero_panics() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.quantile(-0.01);
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // Every bucket's upper bound must land back in that bucket, and the
        // next value must not.
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1023,
            1024,
            1 << 20,
            u64::MAX >> 1,
        ] {
            let idx = bucket_index(v);
            let ub = bucket_bound(idx);
            assert!(ub >= v, "bound {ub} below member {v}");
            assert_eq!(bucket_index(ub), idx, "bound {ub} left bucket of {v}");
            if ub < u64::MAX {
                assert!(
                    bucket_index(ub + 1) > idx,
                    "bucket of {v} unbounded at {ub}"
                );
            }
        }
    }

    /// The documented exactness bound: `percentile(p)` returns a value `r`
    /// with `e ≤ r ≤ e·(1 + 2⁻⁵) + 1` where `e` is the exact sample at
    /// that rank.
    #[test]
    fn percentile_exactness_bounds() {
        let mut h = Histogram::new();
        // Deterministic pseudo-random samples spanning several octaves.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut samples = Vec::new();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 5_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let rank = ((samples.len() as f64 * p / 100.0).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.percentile(p).unwrap();
            assert!(approx >= exact, "p{p}: {approx} < exact {exact}");
            let limit = exact + exact / 32 + 1;
            assert!(
                approx <= limit,
                "p{p}: {approx} > bound {limit} (exact {exact})"
            );
        }
    }

    #[test]
    fn percentile_accessors_are_ordered() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let (p50, p90, p99, p999) = (
            h.p50().unwrap(),
            h.p90().unwrap(),
            h.p99().unwrap(),
            h.p999().unwrap(),
        );
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= p999,
            "{p50} {p90} {p99} {p999}"
        );
        // Within the 1/32 bound of the exact ranks.
        assert!(
            (500_000..=500_000 + 500_000 / 32 + 1).contains(&p50),
            "{p50}"
        );
        assert!(
            (1_000_000..=1_000_000 + 1_000_000 / 32 + 1).contains(&p999),
            "{p999}"
        );
        assert_eq!(h.percentile(100.0), Some(1_000_000));
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 700, 41_000, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [88u64, 123_456_789] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    /// `utilization` is also exercised with `SimTime`-derived spans.
    #[test]
    fn utilization_from_simtime_span() {
        use crate::time::SimTime;
        let start = SimTime::ZERO;
        let end = SimTime::from_us(10);
        let mut t = BusyTracker::new();
        t.record("io", 5_000);
        assert!((t.utilization(end - start, 1.0) - 0.5).abs() < 1e-12);
    }
}
