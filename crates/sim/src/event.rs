//! Type-erased messages exchanged between components.
//!
//! Each subsystem crate defines its own payload structs (NVMe doorbell
//! writes, DMA completions, CPU job completions, …). The simulator core
//! does not need to know about any of them: a [`Msg`] carries a
//! `Box<dyn Payload>` that the receiving component downcasts back to the
//! concrete type it expects.

use std::any::Any;
use std::fmt;

use crate::component::ComponentId;

/// A type-erased message payload.
///
/// Blanket-implemented for every `'static` type that is `Debug`, so any
/// plain struct can be sent through the simulator without ceremony.
pub trait Payload: Any + fmt::Debug {
    /// Borrow as `Any` for by-reference downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Convert into `Any` for by-value downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + fmt::Debug> Payload for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A message delivered to a [`Component`](crate::Component).
///
/// `src` identifies the sender (or the component itself for self-scheduled
/// wakeups), which lets request/response protocols reply without configuring
/// back-references.
pub struct Msg {
    /// The component that scheduled this message.
    pub src: ComponentId,
    payload: Box<dyn Payload>,
}

impl Msg {
    /// Wraps a concrete payload into a message from `src`.
    pub fn new<P: Payload>(src: ComponentId, payload: P) -> Self {
        Msg {
            src,
            payload: Box::new(payload),
        }
    }

    /// Whether the payload is a `P`.
    pub fn is<P: Payload>(&self) -> bool {
        (*self.payload).as_any().is::<P>()
    }

    /// Borrows the payload as a `P`, if it is one.
    pub fn get<P: Payload>(&self) -> Option<&P> {
        (*self.payload).as_any().downcast_ref::<P>()
    }

    /// Consumes the message, returning the payload if it is a `P`; otherwise
    /// hands the message back so another downcast can be tried.
    ///
    /// ```
    /// use dcs_sim::{Msg, ComponentId};
    /// #[derive(Debug, PartialEq)]
    /// struct Tick;
    /// let msg = Msg::new(ComponentId::INVALID, Tick);
    /// assert!(msg.downcast::<u32>().is_err() || false);
    /// ```
    pub fn downcast<P: Payload>(self) -> Result<P, Msg> {
        if self.is::<P>() {
            let any = self.payload.into_any();
            Ok(*any.downcast::<P>().expect("checked by is::<P>"))
        } else {
            Err(self)
        }
    }

    /// A short description of the payload type, for diagnostics.
    pub fn payload_debug(&self) -> String {
        format!("{:?}", self.payload)
    }
}

impl fmt::Debug for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Msg")
            .field("src", &self.src)
            .field("payload", &self.payload)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Foo(u32);
    #[derive(Debug, PartialEq)]
    struct Bar(&'static str);

    #[test]
    fn downcast_by_value_succeeds_and_fails_recoverably() {
        let msg = Msg::new(ComponentId::INVALID, Foo(7));
        let msg = match msg.downcast::<Bar>() {
            Ok(_) => panic!("Foo is not Bar"),
            Err(m) => m,
        };
        assert_eq!(msg.downcast::<Foo>().unwrap(), Foo(7));
    }

    #[test]
    fn reference_downcasts() {
        let msg = Msg::new(ComponentId::INVALID, Bar("hi"));
        assert!(msg.is::<Bar>());
        assert!(!msg.is::<Foo>());
        assert_eq!(msg.get::<Bar>(), Some(&Bar("hi")));
        assert_eq!(msg.get::<Foo>(), None);
    }

    #[test]
    fn debug_includes_payload() {
        let msg = Msg::new(ComponentId::INVALID, Foo(3));
        let dbg = format!("{msg:?}");
        assert!(dbg.contains("Foo(3)"), "{dbg}");
        assert!(msg.payload_debug().contains("Foo"));
    }
}
