//! Shared simulation state: a typed singleton store plus global statistics
//! and the deterministic RNG.
//!
//! Subsystem crates stash their cross-component state here — e.g. the PCIe
//! crate registers the global physical-memory map so that a DMA completion
//! handled inside the switch can deposit bytes into SSD/NIC/HDC memory
//! without components holding references to each other.

use crate::detmap::DetMap;
use std::any::{Any, TypeId};

use crate::obs::Recorder;
use crate::rng::Rng;
use crate::stats::Stats;

/// Mutable state shared by every component, reachable through
/// [`Ctx::world`](crate::Ctx::world).
pub struct World {
    /// Deterministic random source for the whole simulation.
    pub rng: Rng,
    /// Global named counters and gauges.
    pub stats: Stats,
    /// Sim-time span/metric recorder (disabled by default; see
    /// [`crate::obs`]). Recording is purely observational, so enabling
    /// it cannot change simulation behaviour.
    pub obs: Recorder,
    resources: DetMap<TypeId, Box<dyn Any>>,
}

impl World {
    /// Creates an empty world seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        World {
            rng: Rng::new(seed),
            stats: Stats::new(),
            obs: Recorder::new(),
            resources: DetMap::new(),
        }
    }

    /// Registers (or replaces) the singleton of type `T`, returning the
    /// previous value if one was present.
    pub fn insert<T: Any>(&mut self, value: T) -> Option<T> {
        self.resources
            .insert(TypeId::of::<T>(), Box::new(value))
            .map(|old| *old.downcast::<T>().expect("keyed by TypeId"))
    }

    /// Borrows the singleton of type `T`, if registered.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.resources
            .get(&TypeId::of::<T>())
            .map(|b| b.downcast_ref::<T>().expect("keyed by TypeId"))
    }

    /// Mutably borrows the singleton of type `T`, if registered.
    pub fn get_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.resources
            .get_mut(&TypeId::of::<T>())
            .map(|b| b.downcast_mut::<T>().expect("keyed by TypeId"))
    }

    /// Borrows the singleton of type `T`.
    ///
    /// # Panics
    ///
    /// Panics if no `T` was registered — use [`World::get`] when absence is
    /// a legitimate state.
    pub fn expect<T: Any>(&self) -> &T {
        self.get::<T>().unwrap_or_else(|| {
            panic!(
                "world resource not registered: {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Mutably borrows the singleton of type `T`.
    ///
    /// # Panics
    ///
    /// Panics if no `T` was registered.
    pub fn expect_mut<T: Any>(&mut self) -> &mut T {
        self.get_mut::<T>().unwrap_or_else(|| {
            panic!(
                "world resource not registered: {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Removes and returns the singleton of type `T`, if registered.
    pub fn remove<T: Any>(&mut self) -> Option<T> {
        self.resources
            .remove(&TypeId::of::<T>())
            .map(|b| *b.downcast::<T>().expect("keyed by TypeId"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Shared(Vec<u8>);

    #[test]
    fn insert_get_mutate_remove_roundtrip() {
        let mut w = World::new(1);
        assert!(w.get::<Shared>().is_none());
        assert!(w.insert(Shared(vec![1])).is_none());
        w.expect_mut::<Shared>().0.push(2);
        assert_eq!(w.expect::<Shared>().0, vec![1, 2]);
        assert_eq!(w.insert(Shared(vec![9])), Some(Shared(vec![1, 2])));
        assert_eq!(w.remove::<Shared>(), Some(Shared(vec![9])));
        assert!(w.get::<Shared>().is_none());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn expect_panics_when_absent() {
        let w = World::new(1);
        let _ = w.expect::<Shared>();
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let mut w = World::new(1);
        w.insert(1u32);
        w.insert(2u64);
        assert_eq!(*w.expect::<u32>(), 1);
        assert_eq!(*w.expect::<u64>(), 2);
    }
}
