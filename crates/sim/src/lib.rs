//! # dcs-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the DCS-ctrl reproduction: a small,
//! deterministic, single-threaded discrete-event simulator on which the PCIe
//! fabric, the peripheral devices, the host software stack, and the HDC
//! Engine itself are built.
//!
//! The design is component/message based:
//!
//! * A [`Simulator`] owns a calendar queue of timestamped [`Msg`]s and a set
//!   of [`Component`]s addressed by [`ComponentId`].
//! * Components react to messages in [`Component::handle`] and schedule new
//!   messages through the [`Ctx`] handed to them.
//! * Shared, cross-component state (physical memories, global statistics)
//!   lives in the [`World`], a typed singleton store accessible from `Ctx`.
//!
//! Determinism: events with equal timestamps are delivered in scheduling
//! order (a monotone sequence number breaks ties), and the only randomness
//! is the seedable [`rng::Rng`] kept in the `World`. Running the same
//! scenario twice yields identical results — a property the experiment
//! harness relies on and the test suite asserts.
//!
//! ```
//! use dcs_sim::{Simulator, Component, Ctx, Msg, SimTime};
//!
//! #[derive(Debug)]
//! struct Ping(u32);
//!
//! struct Counter { seen: u32 }
//! impl Component for Counter {
//!     fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
//!         let ping = msg.downcast::<Ping>().expect("only pings are sent here");
//!         self.seen += ping.0;
//!         if self.seen < 3 {
//!             ctx.send_self_in(dcs_sim::time::us(1), Ping(1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let counter = sim.add("counter", Counter { seen: 0 });
//! sim.kickoff(counter, Ping(1));
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_us(2));
//! ```

pub(crate) mod calendar;
pub mod component;
pub mod detmap;
pub mod engine;
pub mod event;
pub mod fault;
pub mod fuzz;
pub mod integrity;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod world;

pub use component::{Component, ComponentId};
pub use detmap::{DetMap, DetSet};
pub use engine::{Ctx, Simulator};
pub use event::{Msg, Payload};
pub use fault::{FaultPlan, FaultSpec, RecoveryConfig};
pub use fuzz::{Counterexample, FuzzCase, FuzzConfig, FuzzReport, RunOutcome, Violation};
pub use integrity::{fnv1a64, AuditEntry, IntegrityAudit};
pub use obs::{
    chrome_trace, Anatomy, Json, MetricEntry, MetricValue, MetricsRegistry, MetricsReport,
    Recorder, Span,
};
pub use queue::{FifoServer, LineServer, ServerBank};
pub use rng::Rng;
pub use stats::{BusyTracker, Counter, Histogram};
pub use time::{Bandwidth, SimTime};
pub use trace::{Breakdown, Category, PhaseTrace};
pub use world::World;
