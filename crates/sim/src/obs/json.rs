//! Minimal JSON value, writer, and parser.
//!
//! The workspace is dependency-free by policy, so the observability
//! exporters carry their own JSON support. The surface is deliberately
//! small: enough to render Chrome trace-event files and metric reports,
//! and to parse them back in tests.
//!
//! * Objects preserve insertion order (they are `Vec<(String, Json)>`),
//!   so rendering is deterministic.
//! * Numbers split into [`Json::Int`] (`i128`, exact for every `u64`
//!   and for nanosecond sums) and [`Json::Float`]. The parser yields
//!   `Int` for literals with no fraction or exponent.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal (no fraction/exponent), exact up to ±2¹²⁷.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order (duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (both `Int` and `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'"' => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(text, bytes, pos),
        other => Err(format!(
            "unexpected character '{}' at byte {}",
            other as char, *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let lit = &text[start..*pos];
    if float {
        lit.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number {lit:?}: {e}"))
    } else {
        lit.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {lit:?}: {e}"))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = text[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err("unterminated escape".to_string());
                };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return Err("truncated \\u escape".to_string());
                            };
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {h:?}"))?;
                        }
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("a".to_string(), Json::Int(-42)),
            ("big".to_string(), Json::Int(u64::MAX as i128 * 1000)),
            ("f".to_string(), Json::Float(1.5)),
            (
                "s".to_string(),
                Json::Str("he said \"hi\"\n\tπ".to_string()),
            ),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Obj(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text), Ok(doc));
    }

    #[test]
    fn parses_whitespace_and_accessors() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"x\" ] } ").expect("parses");
        let arr = v.get("k").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_i128(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escape_and_control_chars() {
        let s = Json::Str("\u{1}x".to_string()).render();
        assert_eq!(s, "\"\\u0001x\"");
        assert_eq!(Json::parse(&s), Ok(Json::Str("\u{1}x".to_string())));
        assert_eq!(Json::parse("\"\\u0041\""), Ok(Json::Str("A".to_string())));
    }
}
