//! The simulator: an event calendar, a component registry, and the
//! dispatch loop that drives them.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::component::{Component, ComponentId};
use crate::event::{Msg, Payload};
use crate::time::SimTime;
use crate::world::World;

/// A message waiting on the calendar.
struct Scheduled {
    time: SimTime,
    seq: u64,
    dst: ComponentId,
    msg: Msg,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (time, seq) — seq breaks ties so same-time events keep their
        // scheduling order, which is what makes the simulation deterministic.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The deterministic discrete-event simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    calendar: BinaryHeap<Reverse<Scheduled>>,
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    world: World,
    delivered: u64,
}

impl Simulator {
    /// Creates an empty simulator whose [`World`] RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            calendar: BinaryHeap::new(),
            components: Vec::new(),
            names: Vec::new(),
            world: World::new(seed),
            delivered: 0,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of messages delivered so far.
    #[inline]
    pub fn delivered_events(&self) -> u64 {
        self.delivered
    }

    /// Shared world state (memories, stats, RNG).
    #[inline]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable shared world state.
    #[inline]
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Registers a component and returns its id.
    pub fn add<C: Component + 'static>(&mut self, name: &str, component: C) -> ComponentId {
        let id = self.reserve(name);
        self.install(id, component);
        id
    }

    /// Reserves an id so that mutually-referencing components can learn each
    /// other's addresses before construction. The slot must be filled with
    /// [`Simulator::install`] before any message reaches it.
    pub fn reserve(&mut self, name: &str) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(None);
        self.names.push(name.to_string());
        id
    }

    /// Fills a slot previously handed out by [`Simulator::reserve`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install<C: Component + 'static>(&mut self, id: ComponentId, component: C) {
        let slot = &mut self.components[id.index()];
        assert!(
            slot.is_none(),
            "component slot {} ({}) already installed",
            id,
            self.names[id.index()]
        );
        *slot = Some(Box::new(component));
    }

    /// The diagnostic name a component was registered under.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered (or reserved) components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`,
    /// attributed to no sender. Used to seed the initial events of a
    /// scenario.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at<P: Payload>(&mut self, at: SimTime, dst: ComponentId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Reverse(Scheduled {
            time: at,
            seq,
            dst,
            msg: Msg::new(ComponentId::INVALID, payload),
        }));
    }

    /// Schedules `payload` for immediate delivery to `dst` (at the current
    /// time, after already-pending same-time events).
    pub fn kickoff<P: Payload>(&mut self, dst: ComponentId, payload: P) {
        self.schedule_at(self.now, dst, payload);
    }

    /// Delivers the single next message, if any. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.calendar.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "calendar produced a past event");
        self.now = ev.time;
        self.delivered += 1;

        let mut component = self.components[ev.dst.index()].take().unwrap_or_else(|| {
            panic!(
                "message {:?} delivered to vacant component {} ({}); reserved but never installed, \
                 or a component sent itself a message while being dispatched re-entrantly",
                ev.msg,
                ev.dst,
                self.names[ev.dst.index()]
            )
        });

        let mut out = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                out: &mut out,
                world: &mut self.world,
            };
            component.handle(&mut ctx, ev.msg);
        }
        self.components[ev.dst.index()] = Some(component);

        for (time, dst, msg) in out {
            let seq = self.seq;
            self.seq += 1;
            self.calendar.push(Reverse(Scheduled {
                time,
                seq,
                dst,
                msg,
            }));
        }
        true
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the calendar is empty or the clock passes `deadline`.
    /// Events at exactly `deadline` are still delivered. Returns the number
    /// of events delivered by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.delivered;
        while let Some(Reverse(head)) = self.calendar.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        // Advance the clock to the deadline even if we ran dry early, so
        // utilization denominators are well defined.
        if self.now < deadline {
            self.now = deadline;
        }
        self.delivered - before
    }

    /// Runs at most `limit` further events (a guard for tests that must not
    /// loop forever). Returns the number delivered.
    pub fn run_steps(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Whether any events remain pending.
    pub fn is_idle(&self) -> bool {
        self.calendar.is_empty()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.calendar.len())
            .field("components", &self.components.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

/// The interface a component uses to act on the simulation while handling a
/// message: read the clock, schedule messages, touch shared state.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ComponentId,
    out: &'a mut Vec<(SimTime, ComponentId, Msg)>,
    world: &'a mut World,
}

impl Ctx<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling the message.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Shared world state.
    #[inline]
    pub fn world(&mut self) -> &mut World {
        self.world
    }

    /// Read-only shared world state.
    #[inline]
    pub fn world_ref(&self) -> &World {
        self.world
    }

    /// Schedules `payload` for delivery to `dst` after `delay` nanoseconds.
    pub fn send_in<P: Payload>(&mut self, delay: u64, dst: ComponentId, payload: P) {
        let msg = Msg::new(self.self_id, payload);
        self.out.push((self.now + delay, dst, msg));
    }

    /// Schedules `payload` for delivery to `dst` at the current time (after
    /// already-pending same-time events).
    pub fn send_now<P: Payload>(&mut self, dst: ComponentId, payload: P) {
        self.send_in(0, dst, payload);
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_at<P: Payload>(&mut self, at: SimTime, dst: ComponentId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let msg = Msg::new(self.self_id, payload);
        self.out.push((at, dst, msg));
    }

    /// Schedules a wakeup for this component after `delay` nanoseconds.
    pub fn send_self_in<P: Payload>(&mut self, delay: u64, payload: P) {
        let dst = self.self_id;
        self.send_in(delay, dst, payload);
    }

    /// Forwards an existing message (preserving its original sender) to
    /// another component after `delay`.
    pub fn forward_in(&mut self, delay: u64, dst: ComponentId, msg: Msg) {
        self.out.push((self.now + delay, dst, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[derive(Debug)]
    struct Tick(u64);

    /// Records the order in which ticks arrive.
    struct Recorder {
        seen: Vec<u64>,
        log_id: ComponentId,
    }
    impl Component for Recorder {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let t = msg
                .downcast::<Tick>()
                .expect("recorder only receives ticks");
            self.seen.push(t.0);
            ctx.world().stats.counter("ticks").add(1);
            // also prove send_now works without recursion issues
            if t.0 == 99 {
                ctx.send_now(self.log_id, Tick(100));
            }
        }
    }

    /// A component that relays to a peer with a fixed delay.
    struct Relay {
        peer: ComponentId,
        delay: u64,
    }
    impl Component for Relay {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let t = msg.downcast::<Tick>().expect("relay only receives ticks");
            ctx.send_in(self.delay, self.peer, Tick(t.0 + 1));
        }
    }

    #[test]
    fn same_time_events_deliver_in_schedule_order() {
        let mut sim = Simulator::new(0);
        let rec = sim.reserve("rec");
        sim.install(
            rec,
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        for i in 0..5 {
            sim.schedule_at(SimTime::from_us(1), rec, Tick(i));
        }
        sim.run();
        // All five land at t=1us; order must match scheduling order.
        assert_eq!(sim.now(), SimTime::from_us(1));
        assert_eq!(sim.world().stats.counter_value("ticks"), 5);
    }

    #[test]
    fn relay_chain_advances_clock() {
        let mut sim = Simulator::new(0);
        let rec_id = sim.reserve("rec");
        let relay = sim.add(
            "relay",
            Relay {
                peer: rec_id,
                delay: us(5),
            },
        );
        sim.install(
            rec_id,
            Recorder {
                seen: vec![],
                log_id: rec_id,
            },
        );
        sim.kickoff(relay, Tick(1));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(5));
        assert_eq!(sim.delivered_events(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulator::new(0);
        let rec = sim.reserve("rec");
        sim.install(
            rec,
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        sim.schedule_at(SimTime::from_us(10), rec, Tick(0));
        sim.schedule_at(SimTime::from_us(30), rec, Tick(1));
        let n = sim.run_until(SimTime::from_us(20));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_us(20));
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(30));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(0);
        sim.run_until(SimTime::from_ms(3));
        assert_eq!(sim.now(), SimTime::from_ms(3));
    }

    #[test]
    #[should_panic(expected = "vacant component")]
    fn message_to_reserved_but_uninstalled_slot_panics() {
        let mut sim = Simulator::new(0);
        let ghost = sim.reserve("ghost");
        sim.kickoff(ghost, Tick(0));
        sim.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> (u64, u64) {
            let mut sim = Simulator::new(7);
            let rec_id = sim.reserve("rec");
            let relay = sim.add(
                "relay",
                Relay {
                    peer: rec_id,
                    delay: 17,
                },
            );
            sim.install(
                rec_id,
                Recorder {
                    seen: vec![],
                    log_id: rec_id,
                },
            );
            for i in 0..100 {
                let jitter = sim.world_mut().rng.gen_range(0..1000);
                sim.schedule_at(SimTime::from_nanos(jitter), relay, Tick(i));
            }
            sim.run();
            (sim.now().as_nanos(), sim.delivered_events())
        }
        assert_eq!(run_once(), run_once());
    }
}
