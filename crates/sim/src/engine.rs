//! The simulator: an event calendar, a component registry, and the
//! dispatch loop that drives them.
//!
//! The calendar is the hierarchical timing wheel in `calendar.rs`
//! (DESIGN.md §16): near-future events live in ring slots with O(1)
//! insert, far-future timers overflow to a small heap, and the dispatch
//! loop batches consecutive same-time/same-`dst` deliveries into one
//! component borrow. The old `BinaryHeap` calendar survives as a
//! reference model behind [`Simulator::set_reference_heap`] so the
//! equivalence suites can prove the wheel observationally identical.

use crate::calendar::{Calendar, HeapCalendar, Scheduled, TimingWheel};
use crate::component::{Component, ComponentId};
use crate::event::{Msg, Payload};
use crate::time::SimTime;
use crate::world::World;

/// The deterministic discrete-event simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    calendar: Calendar,
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    world: World,
    delivered: u64,
    batched: u64,
    /// Pooled per-dispatch output buffer: taken by [`Ctx`] during
    /// `handle`, drained into the calendar, and kept (capacity intact)
    /// for the next step instead of allocating a fresh `Vec`.
    scratch_out: Vec<(SimTime, ComponentId, Msg)>,
}

impl Simulator {
    /// Creates an empty simulator whose [`World`] RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            calendar: Calendar::Wheel(TimingWheel::new()),
            components: Vec::new(),
            names: Vec::new(),
            world: World::new(seed),
            delivered: 0,
            batched: 0,
            scratch_out: Vec::new(),
        }
    }

    /// Swaps the calendar for the `BinaryHeap` reference model,
    /// migrating any pending events. Test-only: the scheduler
    /// equivalence and determinism suites run full workloads on both
    /// calendars and assert byte-identical traces. Never use this on a
    /// hot path — the wheel exists because the heap was the bottleneck.
    #[doc(hidden)]
    pub fn set_reference_heap(&mut self) {
        let mut heap = HeapCalendar::default();
        while let Some(ev) = self.calendar.pop() {
            heap.push(ev);
        }
        self.calendar = Calendar::Heap(heap);
    }

    /// Which calendar implementation is driving this simulator
    /// (`"timing-wheel"` or `"reference-heap"`).
    pub fn scheduler_name(&self) -> &'static str {
        self.calendar.name()
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of messages delivered so far.
    #[inline]
    pub fn delivered_events(&self) -> u64 {
        self.delivered
    }

    /// Of the delivered messages, how many rode a same-time/same-`dst`
    /// batch (delivered without re-borrowing the component). Purely
    /// informational — the engine benchmark reports it.
    #[inline]
    pub fn batched_events(&self) -> u64 {
        self.batched
    }

    /// The time of the next pending event without delivering it, or
    /// `None` when the calendar is empty. [`Simulator::run_until`] is
    /// built on this: the event delivered by the following
    /// [`Simulator::step`] is exactly the one peeked (no pop can
    /// observe a different head than the peek did).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.calendar.peek_time()
    }

    /// Shared world state (memories, stats, RNG).
    #[inline]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable shared world state.
    #[inline]
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Registers a component and returns its id.
    pub fn add<C: Component + 'static>(&mut self, name: &str, component: C) -> ComponentId {
        let id = self.reserve(name);
        self.install(id, component);
        id
    }

    /// Reserves an id so that mutually-referencing components can learn each
    /// other's addresses before construction. The slot must be filled with
    /// [`Simulator::install`] before any message reaches it.
    pub fn reserve(&mut self, name: &str) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(None);
        self.names.push(name.to_string());
        id
    }

    /// Fills a slot previously handed out by [`Simulator::reserve`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install<C: Component + 'static>(&mut self, id: ComponentId, component: C) {
        let slot = &mut self.components[id.index()];
        assert!(
            slot.is_none(),
            "component slot {} ({}) already installed",
            id,
            self.names[id.index()]
        );
        *slot = Some(Box::new(component));
    }

    /// The diagnostic name a component was registered under.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered (or reserved) components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`,
    /// attributed to no sender. Used to seed the initial events of a
    /// scenario.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at<P: Payload>(&mut self, at: SimTime, dst: ComponentId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Scheduled {
            time: at,
            seq,
            dst,
            msg: Msg::new(ComponentId::INVALID, payload),
        });
    }

    /// Schedules `payload` for immediate delivery to `dst` (at the current
    /// time, after already-pending same-time events).
    pub fn kickoff<P: Payload>(&mut self, dst: ComponentId, payload: P) {
        self.schedule_at(self.now, dst, payload);
    }

    /// Delivers the next message — plus, in the same component borrow,
    /// any immediately following messages with the same timestamp and
    /// destination (batched dispatch: a fan-in burst costs one
    /// take/restore, not one per message). Returns `false` when the
    /// calendar is empty.
    ///
    /// Batching preserves the exact unbatched delivery order: the
    /// batched messages are precisely the next heads of the calendar,
    /// and anything a handler schedules carries a later sequence number
    /// than every already-pending same-time event, so it sorts after
    /// the whole batch either way.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.calendar.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "calendar produced a past event");
        self.now = ev.time;
        self.delivered += 1;

        let mut component = self.components[ev.dst.index()].take().unwrap_or_else(|| {
            panic!(
                "message {:?} delivered to vacant component {} ({}); reserved but never installed, \
                 or a component sent itself a message while being dispatched re-entrantly",
                ev.msg,
                ev.dst,
                self.names[ev.dst.index()]
            )
        });

        let mut out = std::mem::take(&mut self.scratch_out);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                out: &mut out,
                world: &mut self.world,
            };
            component.handle(&mut ctx, ev.msg);
            while let Some(next) = self.calendar.pop_if(ev.time, ev.dst) {
                self.delivered += 1;
                self.batched += 1;
                component.handle(&mut ctx, next.msg);
            }
        }
        self.components[ev.dst.index()] = Some(component);

        for (time, dst, msg) in out.drain(..) {
            let seq = self.seq;
            self.seq += 1;
            self.calendar.push(Scheduled {
                time,
                seq,
                dst,
                msg,
            });
        }
        self.scratch_out = out;
        true
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the calendar is empty or the clock passes `deadline`.
    /// Events at exactly `deadline` are still delivered. Returns the number
    /// of events delivered by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.delivered;
        // The bounded peek answers "is the head at or before the
        // deadline" without materializing wheel windows beyond it, so a
        // standing far-future timer population costs this loop nothing.
        while let Some(head_time) = self.calendar.peek_time_through(deadline) {
            debug_assert!(head_time <= deadline);
            // `step` pops exactly the head the peek surfaced — the
            // calendar cannot reorder between the peek and the pop.
            let stepped = self.step();
            debug_assert!(stepped, "peeked head must be deliverable");
        }
        // Advance the clock to the deadline even if we ran dry early, so
        // utilization denominators are well defined.
        if self.now < deadline {
            self.now = deadline;
        }
        self.delivered - before
    }

    /// Runs at most `limit` further events (a guard for tests that must not
    /// loop forever). Returns the number delivered.
    pub fn run_steps(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Whether any events remain pending.
    pub fn is_idle(&self) -> bool {
        self.calendar.is_empty()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.calendar.len())
            .field("components", &self.components.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

/// The interface a component uses to act on the simulation while handling a
/// message: read the clock, schedule messages, touch shared state.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ComponentId,
    out: &'a mut Vec<(SimTime, ComponentId, Msg)>,
    world: &'a mut World,
}

impl Ctx<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling the message.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Shared world state.
    #[inline]
    pub fn world(&mut self) -> &mut World {
        self.world
    }

    /// Read-only shared world state.
    #[inline]
    pub fn world_ref(&self) -> &World {
        self.world
    }

    /// Schedules `payload` for delivery to `dst` after `delay` nanoseconds.
    pub fn send_in<P: Payload>(&mut self, delay: u64, dst: ComponentId, payload: P) {
        let msg = Msg::new(self.self_id, payload);
        self.out.push((self.now + delay, dst, msg));
    }

    /// Schedules `payload` for delivery to `dst` at the current time (after
    /// already-pending same-time events).
    pub fn send_now<P: Payload>(&mut self, dst: ComponentId, payload: P) {
        self.send_in(0, dst, payload);
    }

    /// Schedules `payload` for delivery to `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_at<P: Payload>(&mut self, at: SimTime, dst: ComponentId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let msg = Msg::new(self.self_id, payload);
        self.out.push((at, dst, msg));
    }

    /// Schedules a wakeup for this component after `delay` nanoseconds.
    pub fn send_self_in<P: Payload>(&mut self, delay: u64, payload: P) {
        let dst = self.self_id;
        self.send_in(delay, dst, payload);
    }

    /// Forwards an existing message (preserving its original sender) to
    /// another component after `delay`.
    pub fn forward_in(&mut self, delay: u64, dst: ComponentId, msg: Msg) {
        self.out.push((self.now + delay, dst, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[derive(Debug)]
    struct Tick(u64);

    /// Records the order in which ticks arrive.
    struct Recorder {
        seen: Vec<u64>,
        log_id: ComponentId,
    }
    impl Component for Recorder {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let t = msg
                .downcast::<Tick>()
                .expect("recorder only receives ticks");
            self.seen.push(t.0);
            ctx.world().stats.counter("ticks").add(1);
            // also prove send_now works without recursion issues
            if t.0 == 99 {
                ctx.send_now(self.log_id, Tick(100));
            }
        }
    }

    /// A component that relays to a peer with a fixed delay.
    struct Relay {
        peer: ComponentId,
        delay: u64,
    }
    impl Component for Relay {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let t = msg.downcast::<Tick>().expect("relay only receives ticks");
            ctx.send_in(self.delay, self.peer, Tick(t.0 + 1));
        }
    }

    #[test]
    fn same_time_events_deliver_in_schedule_order() {
        let mut sim = Simulator::new(0);
        let rec = sim.reserve("rec");
        sim.install(
            rec,
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        for i in 0..5 {
            sim.schedule_at(SimTime::from_us(1), rec, Tick(i));
        }
        sim.run();
        // All five land at t=1us; order must match scheduling order.
        assert_eq!(sim.now(), SimTime::from_us(1));
        assert_eq!(sim.world().stats.counter_value("ticks"), 5);
    }

    #[test]
    fn relay_chain_advances_clock() {
        let mut sim = Simulator::new(0);
        let rec_id = sim.reserve("rec");
        let relay = sim.add(
            "relay",
            Relay {
                peer: rec_id,
                delay: us(5),
            },
        );
        sim.install(
            rec_id,
            Recorder {
                seen: vec![],
                log_id: rec_id,
            },
        );
        sim.kickoff(relay, Tick(1));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(5));
        assert_eq!(sim.delivered_events(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulator::new(0);
        let rec = sim.reserve("rec");
        sim.install(
            rec,
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        sim.schedule_at(SimTime::from_us(10), rec, Tick(0));
        sim.schedule_at(SimTime::from_us(30), rec, Tick(1));
        let n = sim.run_until(SimTime::from_us(20));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_us(20));
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.now(), SimTime::from_us(30));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(0);
        sim.run_until(SimTime::from_ms(3));
        assert_eq!(sim.now(), SimTime::from_ms(3));
    }

    #[test]
    fn run_until_same_time_events_straddling_deadline() {
        // Regression for the peek/step double-pop hazard: several
        // events at exactly the deadline plus events just beyond it.
        // Every at-deadline event (including ones scheduled *during*
        // the run at the deadline) must deliver; nothing beyond may.
        struct Echo;
        #[derive(Debug)]
        struct AtDeadline(bool);
        impl Component for Echo {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                let m = msg.downcast::<AtDeadline>().expect("echo payload");
                ctx.world().stats.counter("echo").add(1);
                if m.0 {
                    // Schedule another event at the very same instant;
                    // run_until must still pick it up.
                    ctx.send_now(ctx.self_id(), AtDeadline(false));
                }
            }
        }
        let mut sim = Simulator::new(0);
        let e = sim.add("echo", Echo);
        let deadline = SimTime::from_us(10);
        for _ in 0..3 {
            sim.schedule_at(deadline, e, AtDeadline(true));
        }
        sim.schedule_at(deadline + 1, e, AtDeadline(false));
        sim.schedule_at(SimTime::from_us(20), e, AtDeadline(false));
        let n = sim.run_until(deadline);
        // 3 seeded at the deadline + 3 echoed at the deadline.
        assert_eq!(n, 6);
        assert_eq!(sim.now(), deadline);
        assert_eq!(sim.peek_time(), Some(deadline + 1));
        sim.run();
        assert_eq!(sim.world().stats.counter_value("echo"), 8);
    }

    #[test]
    fn batched_dispatch_preserves_order_and_counts() {
        let mut sim = Simulator::new(0);
        let rec = sim.reserve("rec");
        sim.install(
            rec,
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        let other = sim.add(
            "other",
            Recorder {
                seen: vec![],
                log_id: rec,
            },
        );
        // A same-time burst to `rec` split by one event to `other`.
        for i in 0..4 {
            sim.schedule_at(SimTime::from_us(1), rec, Tick(i));
        }
        sim.schedule_at(SimTime::from_us(1), other, Tick(90));
        for i in 4..6 {
            sim.schedule_at(SimTime::from_us(1), rec, Tick(i));
        }
        sim.run();
        assert_eq!(sim.delivered_events(), 7);
        // First burst batches 3 behind its head; trailing pair batches 1.
        assert_eq!(sim.batched_events(), 4);
        // Both components are Recorders; every delivery ticks the counter.
        assert_eq!(sim.world().stats.counter_value("ticks"), 7);
    }

    #[test]
    #[should_panic(expected = "vacant component")]
    fn message_to_reserved_but_uninstalled_slot_panics() {
        let mut sim = Simulator::new(0);
        let ghost = sim.reserve("ghost");
        sim.kickoff(ghost, Tick(0));
        sim.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once() -> (u64, u64) {
            let mut sim = Simulator::new(7);
            let rec_id = sim.reserve("rec");
            let relay = sim.add(
                "relay",
                Relay {
                    peer: rec_id,
                    delay: 17,
                },
            );
            sim.install(
                rec_id,
                Recorder {
                    seen: vec![],
                    log_id: rec_id,
                },
            );
            for i in 0..100 {
                let jitter = sim.world_mut().rng.gen_range(0..1000);
                sim.schedule_at(SimTime::from_nanos(jitter), relay, Tick(i));
            }
            sim.run();
            (sim.now().as_nanos(), sim.delivered_events())
        }
        assert_eq!(run_once(), run_once());
    }
}
