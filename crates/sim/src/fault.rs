//! Deterministic, seed-reproducible fault injection.
//!
//! A [`FaultPlan`] lives in the [`World`] and is consulted by injection
//! sites spread across the device models (wire frame drop/corruption,
//! flash media errors, PCIe link replays, MSI loss). Each site draws from
//! its own RNG stream forked off the plan's master RNG at registration
//! time, so the fault sequence a seed produces at one site is independent
//! of event interleaving at other sites: the same seed replays the same
//! faults, run after run, design after design.
//!
//! Sites are identified by name. A site not enabled in the plan never
//! fires; a world without a plan is entirely fault-free and costs one
//! resource lookup per eligible event.
//!
//! Recovery machinery (driver/engine timeouts, retries, watchdogs, poll
//! fallbacks) keys off the plan's [`RecoveryConfig`] and is armed only
//! while a plan is installed, so fault-free simulations schedule no extra
//! events and reproduce the exact event streams they did before this
//! module existed.

use std::collections::BTreeMap;

use crate::rng::Rng;
use crate::world::World;

/// How an enabled site misbehaves.
#[derive(Clone, Debug)]
pub enum FaultSpec {
    /// Fire independently with this probability at each eligible event.
    Probability(f64),
    /// Fire exactly at these 0-based eligible-event indices at the site
    /// (scheduled one-shot faults; indices need not be sorted).
    Nth(Vec<u64>),
}

/// Per-site fault/recovery tallies (deterministic for a given seed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Faults injected at the site.
    pub injected: u64,
    /// Recovery actions that cured a fault observed at/attributed to the
    /// site.
    pub recovered: u64,
    /// Faults whose retry budget ran out (surfaced as error completions).
    pub exhausted: u64,
    /// Retries attempted at the site.
    pub retried: u64,
}

struct Site {
    spec: FaultSpec,
    rng: Rng,
    /// Eligible events seen so far.
    seen: u64,
}

/// Timeout/retry knobs the recovery machinery obeys while a plan is
/// installed.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// NVMe command timeout before the driver polls the completion queue
    /// (MSI-loss fallback) and, on silence, resubmits.
    pub nvme_timeout_ns: u64,
    /// Bounded NVMe retry budget (0 disables retries: a retryable status
    /// or timeout immediately surfaces as an error completion).
    pub nvme_retries: u32,
    /// Initial NIC retransmission timeout; doubles per attempt
    /// (exponential backoff).
    pub nic_rto_ns: u64,
    /// Bounded NIC retransmission budget (0 disables retransmission).
    pub nic_retries: u32,
    /// Engine scoreboard watchdog sweep period.
    pub watchdog_period_ns: u64,
    /// Age at which the watchdog considers a sub-op hung.
    pub op_timeout_ns: u64,
    /// Completion-ring / receive-ring poll fallback period (recovers lost
    /// MSIs on paths without their own timers).
    pub poll_period_ns: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            nvme_timeout_ns: 5_000_000,
            nvme_retries: 4,
            nic_rto_ns: 1_000_000,
            nic_retries: 8,
            watchdog_period_ns: 1_000_000,
            op_timeout_ns: 20_000_000,
            poll_period_ns: 500_000,
        }
    }
}

impl RecoveryConfig {
    /// A configuration with every retry budget at zero: faults surface as
    /// error completions on first detection, and nothing is retransmitted
    /// or resubmitted.
    pub fn no_retries() -> RecoveryConfig {
        RecoveryConfig { nvme_retries: 0, nic_retries: 0, ..RecoveryConfig::default() }
    }
}

/// The deterministic fault plan (a [`World`] resource).
pub struct FaultPlan {
    master: Rng,
    sites: BTreeMap<&'static str, Site>,
    tallies: BTreeMap<&'static str, SiteStats>,
    /// Recovery knobs honored while this plan is installed.
    pub recovery: RecoveryConfig,
}

/// Frames silently dropped on the wire (delivery leg only; the sender's
/// serialization still completes).
pub const WIRE_DROP: &str = "wire.drop";
/// Single-bit frame corruption on the wire, caught by the receiver's
/// IP/TCP checksum validation.
pub const WIRE_CORRUPT: &str = "wire.corrupt";
/// Flash read media error: the SSD completes the command with a
/// retryable media-error status instead of data.
pub const NVME_MEDIA: &str = "nvme.media";
/// PCIe link-level transfer error: the TLP is replayed transparently at
/// added latency (data is never lost).
pub const PCIE_REPLAY: &str = "pcie.replay";
/// A message-signaled interrupt that never arrives.
pub const MSI_LOSS: &str = "pcie.msi_loss";

impl FaultPlan {
    /// Every injection site the device models consult.
    pub const SITES: [&'static str; 5] =
        [WIRE_DROP, WIRE_CORRUPT, NVME_MEDIA, PCIE_REPLAY, MSI_LOSS];

    /// Creates an empty plan drawing from `rng` (fork it off the world
    /// RNG for seed reproducibility).
    pub fn new(rng: Rng) -> FaultPlan {
        FaultPlan {
            master: rng,
            sites: BTreeMap::new(),
            tallies: BTreeMap::new(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// Enables `site` with `spec`; the site gets its own RNG stream
    /// forked from the plan's master RNG, so enabling order — not event
    /// interleaving — determines each site's fault sequence.
    pub fn enable(&mut self, site: &'static str, spec: FaultSpec) {
        let rng = self.master.fork();
        self.sites.insert(site, Site { spec, rng, seen: 0 });
    }

    /// Enables every known site at `rate` (the chaos-storm shape).
    pub fn uniform(rate: f64, rng: Rng) -> FaultPlan {
        let mut plan = FaultPlan::new(rng);
        for site in Self::SITES {
            plan.enable(site, FaultSpec::Probability(rate));
        }
        plan
    }

    /// Draws the fault decision for one eligible event at `site`; on a
    /// hit, returns entropy for the site to shape the fault (corruption
    /// position, etc.).
    fn draw(&mut self, site: &'static str) -> Option<u64> {
        let s = self.sites.get_mut(site)?;
        let idx = s.seen;
        s.seen += 1;
        let hit = match &s.spec {
            FaultSpec::Probability(p) => s.rng.gen_bool(*p),
            FaultSpec::Nth(idxs) => idxs.contains(&idx),
        };
        if hit {
            let entropy = s.rng.next_u64();
            self.tallies.entry(site).or_default().injected += 1;
            Some(entropy)
        } else {
            None
        }
    }

    fn tally(&mut self, site: &'static str) -> &mut SiteStats {
        self.tallies.entry(site).or_default()
    }

    /// Per-site fault/recovery tallies, in site-name order.
    pub fn tallies(&self) -> impl Iterator<Item = (&'static str, SiteStats)> + '_ {
        self.tallies.iter().map(|(k, v)| (*k, *v))
    }
}

/// Should a fault fire at `site` for the current event? Counts one
/// eligible event; `None` when no plan is installed, the site is not
/// enabled, or the dice say no. On a hit, carries site-shaping entropy.
pub fn inject(world: &mut World, site: &'static str) -> Option<u64> {
    let hit = world.get_mut::<FaultPlan>()?.draw(site);
    if hit.is_some() {
        world.stats.counter("fault.injected").add(1);
    }
    hit
}

/// True while a fault plan is installed (recovery timers arm themselves
/// only then, keeping fault-free runs event-identical to the pre-fault
/// simulator).
pub fn active(world: &World) -> bool {
    world.get::<FaultPlan>().is_some()
}

/// The installed plan's recovery knobs, if any.
pub fn recovery(world: &World) -> Option<RecoveryConfig> {
    world.get::<FaultPlan>().map(|p| p.recovery.clone())
}

/// Records a retry attempt attributed to `site`.
pub fn retried(world: &mut World, site: &'static str) {
    world.stats.counter("retry.count").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).retried += 1;
    }
}

/// Records a fault cured by recovery, attributed to `site`.
pub fn recovered(world: &mut World, site: &'static str) {
    world.stats.counter("fault.recovered").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).recovered += 1;
    }
}

/// Records a fault whose retry budget ran out, attributed to `site`.
pub fn exhausted(world: &mut World, site: &'static str) {
    world.stats.counter("fault.exhausted").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).exhausted += 1;
    }
}

/// Total `SiteStats::exhausted` across every site of the installed plan
/// (0 without a plan). Exhausted faults surface as error completions, so
/// a *jump* in this tally between two samples is a burst of
/// unrecoverable device faults — node-health layers sample it
/// periodically and treat nodes failing requests during a burst as
/// suspect without waiting out probe timeouts.
pub fn exhausted_total(world: &World) -> u64 {
    world
        .get::<FaultPlan>()
        .map(|p| p.tallies().map(|(_, s)| s.exhausted).sum())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut FaultPlan, site: &'static str, n: usize) -> Vec<Option<u64>> {
        (0..n).map(|_| plan.draw(site)).collect()
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultPlan::uniform(0.05, Rng::new(42));
        let mut b = FaultPlan::uniform(0.05, Rng::new(42));
        for site in FaultPlan::SITES {
            assert_eq!(drain(&mut a, site, 2_000), drain(&mut b, site, 2_000));
        }
        let ta: Vec<_> = a.tallies().collect();
        let tb: Vec<_> = b.tallies().collect();
        assert_eq!(ta, tb);
        assert!(ta.iter().any(|(_, s)| s.injected > 0), "5% over 2000 draws must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::uniform(0.05, Rng::new(42));
        let mut b = FaultPlan::uniform(0.05, Rng::new(43));
        let sa: Vec<_> = FaultPlan::SITES
            .iter()
            .flat_map(|s| drain(&mut a, s, 2_000))
            .collect();
        let sb: Vec<_> = FaultPlan::SITES
            .iter()
            .flat_map(|s| drain(&mut b, s, 2_000))
            .collect();
        assert_ne!(sa, sb, "different seeds must yield different plans");
    }

    #[test]
    fn sites_are_interleaving_independent() {
        // Drawing sites round-robin or site-by-site yields the same
        // per-site sequences: streams are forked per site.
        let mut a = FaultPlan::uniform(0.1, Rng::new(7));
        let mut b = FaultPlan::uniform(0.1, Rng::new(7));
        let mut seq_a: BTreeMap<&str, Vec<Option<u64>>> = BTreeMap::new();
        for _ in 0..500 {
            for site in FaultPlan::SITES {
                seq_a.entry(site).or_default().push(a.draw(site));
            }
        }
        for site in FaultPlan::SITES {
            assert_eq!(seq_a[site], drain(&mut b, site, 500));
        }
    }

    #[test]
    fn nth_fires_exactly_at_indices() {
        let mut plan = FaultPlan::new(Rng::new(1));
        plan.enable(NVME_MEDIA, FaultSpec::Nth(vec![0, 3]));
        let hits: Vec<bool> =
            drain(&mut plan, NVME_MEDIA, 6).into_iter().map(|h| h.is_some()).collect();
        assert_eq!(hits, vec![true, false, false, true, false, false]);
        // Un-enabled sites never fire.
        assert!(drain(&mut plan, WIRE_DROP, 100).iter().all(|h| h.is_none()));
    }

    #[test]
    fn world_helpers_count() {
        let mut world = World::new(9);
        assert!(inject(&mut world, WIRE_DROP).is_none(), "no plan, no faults");
        assert!(!active(&world));
        let rng = world.rng.fork();
        world.insert(FaultPlan::uniform(1.0, rng));
        assert!(active(&world));
        assert!(inject(&mut world, WIRE_DROP).is_some(), "p=1 always fires");
        retried(&mut world, "host.nvme");
        recovered(&mut world, "host.nvme");
        assert_eq!(exhausted_total(&world), 0);
        exhausted(&mut world, "host.nic");
        assert_eq!(exhausted_total(&world), 1);
        assert_eq!(world.stats.counter_value("fault.injected"), 1);
        assert_eq!(world.stats.counter_value("retry.count"), 1);
        assert_eq!(world.stats.counter_value("fault.recovered"), 1);
        assert_eq!(world.stats.counter_value("fault.exhausted"), 1);
        let plan = world.expect::<FaultPlan>();
        let t: BTreeMap<_, _> = plan.tallies().collect();
        assert_eq!(t["host.nvme"].retried, 1);
        assert_eq!(t["host.nvme"].recovered, 1);
        assert_eq!(t["host.nic"].exhausted, 1);
    }
}
