//! Deterministic, seed-reproducible fault injection.
//!
//! A [`FaultPlan`] lives in the [`World`] and is consulted by injection
//! sites spread across the device models (wire frame drop/corruption,
//! flash media errors, PCIe link replays, MSI loss, DMA payload / TLP
//! header / completion-entry corruption). Each site draws from its own
//! RNG stream derived from the plan's stream base and the site *name*,
//! so the fault sequence a seed produces at one site is independent both
//! of event interleaving at other sites and of the order in which sites
//! were enabled: the same seed replays the same faults, run after run,
//! design after design.
//!
//! Sites are identified by name. A site not enabled in the plan never
//! fires; a world without a plan is entirely fault-free and costs one
//! resource lookup per eligible event.
//!
//! Recovery machinery (driver/engine timeouts, retries, watchdogs, poll
//! fallbacks) keys off the plan's [`RecoveryConfig`] and is armed only
//! while a plan is installed, so fault-free simulations schedule no extra
//! events and reproduce the exact event streams they did before this
//! module existed.

use std::collections::BTreeMap;

use crate::rng::Rng;
use crate::world::World;

/// How an enabled site misbehaves.
#[derive(Clone, Debug)]
pub enum FaultSpec {
    /// Fire independently with this probability at each eligible event.
    Probability(f64),
    /// Fire exactly at these 0-based eligible-event indices at the site
    /// (scheduled one-shot faults; indices need not be sorted).
    Nth(Vec<u64>),
}

/// Per-site fault/recovery tallies (deterministic for a given seed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Faults injected at the site.
    pub injected: u64,
    /// Recovery actions that cured a fault observed at/attributed to the
    /// site.
    pub recovered: u64,
    /// Faults whose retry budget ran out (surfaced as error completions).
    pub exhausted: u64,
    /// Retries attempted at the site.
    pub retried: u64,
}

struct Site {
    spec: FaultSpec,
    rng: Rng,
    /// Key for per-event fault-shaping entropy. Entropy is derived from
    /// `(entropy_key, event index)` alone — independent of the decision
    /// stream — so an `Nth` schedule pinned from a `Probability` run's
    /// fired indices replays byte-identical faults (same corrupted bit,
    /// same position), which is what makes fuzzer shrinking faithful.
    entropy_key: u64,
    /// Eligible events seen so far.
    seen: u64,
    /// 0-based eligible-event indices at which the site actually fired
    /// (the raw material the chaos fuzzer shrinks into `Nth` schedules).
    fired: Vec<u64>,
}

/// Timeout/retry knobs the recovery machinery obeys while a plan is
/// installed.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// NVMe command timeout before the driver polls the completion queue
    /// (MSI-loss fallback) and, on silence, resubmits.
    pub nvme_timeout_ns: u64,
    /// Bounded NVMe retry budget (0 disables retries: a retryable status
    /// or timeout immediately surfaces as an error completion).
    pub nvme_retries: u32,
    /// Initial NIC retransmission timeout; doubles per attempt
    /// (exponential backoff).
    pub nic_rto_ns: u64,
    /// Bounded NIC retransmission budget (0 disables retransmission).
    pub nic_retries: u32,
    /// Engine scoreboard watchdog sweep period.
    pub watchdog_period_ns: u64,
    /// Age at which the watchdog considers a sub-op hung.
    pub op_timeout_ns: u64,
    /// Completion-ring / receive-ring poll fallback period (recovers lost
    /// MSIs on paths without their own timers).
    pub poll_period_ns: u64,
    /// Bounded PCIe link-replay budget per TLP: how many times the fabric
    /// re-transmits a TLP whose ECRC check failed before giving up (0
    /// disables replay: corruption immediately poisons or times out).
    pub pcie_retries: u32,
    /// Bounded NVMe controller-reset budget per command: after command
    /// retries are exhausted *and* the completion path itself is broken,
    /// the host driver may reset the controller and resubmit this many
    /// times (0 disables the reset ladder).
    pub nvme_resets: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            nvme_timeout_ns: 5_000_000,
            nvme_retries: 4,
            nic_rto_ns: 1_000_000,
            nic_retries: 8,
            watchdog_period_ns: 1_000_000,
            op_timeout_ns: 20_000_000,
            poll_period_ns: 500_000,
            pcie_retries: 2,
            nvme_resets: 1,
        }
    }
}

impl RecoveryConfig {
    /// A configuration with every retry budget at zero: faults surface as
    /// error completions on first detection, and nothing is retransmitted
    /// or resubmitted.
    pub fn no_retries() -> RecoveryConfig {
        RecoveryConfig {
            nvme_retries: 0,
            nic_retries: 0,
            pcie_retries: 0,
            nvme_resets: 0,
            ..RecoveryConfig::default()
        }
    }
}

/// The deterministic fault plan (a [`World`] resource).
pub struct FaultPlan {
    /// One value drawn from the plan's seed RNG at construction; each
    /// site's stream is `Rng::new(stream_base ^ fnv1a64(site_name))`, so
    /// a site's fault sequence depends only on the plan seed and its own
    /// name — never on how many sites were enabled before it.
    stream_base: u64,
    sites: BTreeMap<&'static str, Site>,
    tallies: BTreeMap<&'static str, SiteStats>,
    /// Recovery knobs honored while this plan is installed.
    pub recovery: RecoveryConfig,
}

/// Frames silently dropped on the wire (delivery leg only; the sender's
/// serialization still completes).
pub const WIRE_DROP: &str = "wire.drop";
/// Single-bit frame corruption on the wire, caught by the receiver's
/// IP/TCP checksum validation.
pub const WIRE_CORRUPT: &str = "wire.corrupt";
/// Flash read media error: the SSD completes the command with a
/// retryable media-error status instead of data.
pub const NVME_MEDIA: &str = "nvme.media";
/// PCIe link-level transfer error: the TLP is replayed transparently at
/// added latency (data is never lost).
pub const PCIE_REPLAY: &str = "pcie.replay";
/// A message-signaled interrupt that never arrives.
pub const MSI_LOSS: &str = "pcie.msi_loss";
/// Single-bit corruption of a Data-class DMA payload in flight; the
/// fabric's per-TLP ECRC detects it and either replays the TLP or
/// delivers a poisoned completion (never silent bad data while ECRC is
/// on).
pub const DMA_CORRUPT: &str = "pcie.dma_corrupt";
/// TLP header corruption: the receiver cannot even identify the packet,
/// so the link layer replays it, or — with the replay budget at zero —
/// the requester sees a completion timeout.
pub const TLP_HEADER: &str = "pcie.tlp_header";
/// Single-bit corruption of a completion entry (NVMe CQE writes, HDC
/// completion records, NIC receive writebacks), caught by ECRC on the
/// Completion-class DMA or by the entry's own CRC at the consumer.
pub const CPL_CORRUPT: &str = "pcie.cpl_corrupt";

impl FaultPlan {
    /// Every injection site the device models consult.
    pub const SITES: [&'static str; 8] = [
        WIRE_DROP,
        WIRE_CORRUPT,
        NVME_MEDIA,
        PCIE_REPLAY,
        MSI_LOSS,
        DMA_CORRUPT,
        TLP_HEADER,
        CPL_CORRUPT,
    ];

    /// The data-integrity subset of [`Self::SITES`]: faults that corrupt
    /// bits rather than losing packets, contained by the ECRC / poison /
    /// CRC machinery.
    pub const CORRUPTION_SITES: [&'static str; 3] = [DMA_CORRUPT, TLP_HEADER, CPL_CORRUPT];

    /// Creates an empty plan drawing from `rng` (fork it off the world
    /// RNG for seed reproducibility).
    pub fn new(mut rng: Rng) -> FaultPlan {
        FaultPlan {
            stream_base: rng.next_u64(),
            sites: BTreeMap::new(),
            tallies: BTreeMap::new(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// Enables `site` with `spec` after validating it, rejecting
    /// non-finite or out-of-range probabilities with a clear error
    /// instead of passing garbage to `Rng::gen_bool` mid-simulation.
    /// The site's RNG stream depends only on the plan seed and the site
    /// name, so neither enabling order nor event interleaving at other
    /// sites changes the fault sequence a given site produces.
    pub fn try_enable(&mut self, site: &'static str, spec: FaultSpec) -> Result<(), String> {
        if let FaultSpec::Probability(p) = spec {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "fault site {site}: probability {p} must be finite and within [0.0, 1.0]"
                ));
            }
        }
        let key = self.stream_base ^ crate::integrity::fnv1a64(site.as_bytes());
        let site_state = Site {
            spec,
            rng: Rng::new(key),
            entropy_key: key ^ 0xE57A_B11E_5EED_C0DE,
            seen: 0,
            fired: Vec::new(),
        };
        self.sites.insert(site, site_state);
        Ok(())
    }

    /// Enables `site` with `spec`.
    ///
    /// # Panics
    ///
    /// Panics with the [`Self::try_enable`] error on an invalid spec.
    pub fn enable(&mut self, site: &'static str, spec: FaultSpec) {
        if let Err(e) = self.try_enable(site, spec) {
            panic!("{e}");
        }
    }

    /// Enables every known site at `rate` (the chaos-storm shape).
    pub fn uniform(rate: f64, rng: Rng) -> FaultPlan {
        let mut plan = FaultPlan::new(rng);
        for site in Self::SITES {
            plan.enable(site, FaultSpec::Probability(rate));
        }
        plan
    }

    /// Draws the fault decision for one eligible event at `site`; on a
    /// hit, returns entropy for the site to shape the fault (corruption
    /// position, etc.).
    fn draw(&mut self, site: &'static str) -> Option<u64> {
        let s = self.sites.get_mut(site)?;
        let idx = s.seen;
        s.seen += 1;
        let hit = match &s.spec {
            FaultSpec::Probability(p) => s.rng.gen_bool(*p),
            FaultSpec::Nth(idxs) => idxs.contains(&idx),
        };
        if hit {
            let entropy =
                Rng::new(s.entropy_key ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
            s.fired.push(idx);
            self.tallies.entry(site).or_default().injected += 1;
            Some(entropy)
        } else {
            None
        }
    }

    fn tally(&mut self, site: &'static str) -> &mut SiteStats {
        self.tallies.entry(site).or_default()
    }

    /// Per-site fault/recovery tallies, in site-name order.
    pub fn tallies(&self) -> impl Iterator<Item = (&'static str, SiteStats)> + '_ {
        self.tallies.iter().map(|(k, v)| (*k, *v))
    }

    /// For each enabled site, the 0-based eligible-event indices at which
    /// it actually fired this run (site-name order). Feeding these back
    /// as [`FaultSpec::Nth`] schedules under the same seed reproduces
    /// the exact fault sequence — the fuzzer's shrinking substrate.
    pub fn fired_log(&self) -> Vec<(&'static str, Vec<u64>)> {
        self.sites
            .iter()
            .map(|(k, s)| (*k, s.fired.clone()))
            .collect()
    }
}

/// Should a fault fire at `site` for the current event? Counts one
/// eligible event; `None` when no plan is installed, the site is not
/// enabled, or the dice say no. On a hit, carries site-shaping entropy.
pub fn inject(world: &mut World, site: &'static str) -> Option<u64> {
    let hit = world.get_mut::<FaultPlan>()?.draw(site);
    if hit.is_some() {
        world.stats.counter("fault.injected").add(1);
    }
    hit
}

/// True while a fault plan is installed (recovery timers arm themselves
/// only then, keeping fault-free runs event-identical to the pre-fault
/// simulator).
pub fn active(world: &World) -> bool {
    world.get::<FaultPlan>().is_some()
}

/// The installed plan's recovery knobs, if any.
pub fn recovery(world: &World) -> Option<RecoveryConfig> {
    world.get::<FaultPlan>().map(|p| p.recovery.clone())
}

/// Records a retry attempt attributed to `site`.
pub fn retried(world: &mut World, site: &'static str) {
    world.stats.counter("retry.count").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).retried += 1;
    }
}

/// Records a fault cured by recovery, attributed to `site`.
pub fn recovered(world: &mut World, site: &'static str) {
    world.stats.counter("fault.recovered").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).recovered += 1;
    }
}

/// Records a fault whose retry budget ran out, attributed to `site`.
pub fn exhausted(world: &mut World, site: &'static str) {
    world.stats.counter("fault.exhausted").add(1);
    if let Some(plan) = world.get_mut::<FaultPlan>() {
        plan.tally(site).exhausted += 1;
    }
}

/// Total `SiteStats::exhausted` across every site of the installed plan
/// (0 without a plan). Exhausted faults surface as error completions, so
/// a *jump* in this tally between two samples is a burst of
/// unrecoverable device faults — node-health layers sample it
/// periodically and treat nodes failing requests during a burst as
/// suspect without waiting out probe timeouts.
pub fn exhausted_total(world: &World) -> u64 {
    world
        .get::<FaultPlan>()
        .map(|p| p.tallies().map(|(_, s)| s.exhausted).sum())
        .unwrap_or(0)
}

/// Total contained data-integrity events (`recovered + exhausted` over
/// the [`FaultPlan::CORRUPTION_SITES`]) of the installed plan, 0 without
/// one. Contained corruption never produces a wrong successful payload,
/// so unlike [`exhausted_total`] a jump here does not mean a node is
/// failing requests — health layers sampling it mark busy nodes
/// *Degraded* (reroute-preferred but routable) rather than Dead.
pub fn contained_total(world: &World) -> u64 {
    world
        .get::<FaultPlan>()
        .map(|p| {
            p.tallies()
                .filter(|(site, _)| FaultPlan::CORRUPTION_SITES.contains(site))
                .map(|(_, s)| s.recovered + s.exhausted)
                .sum()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut FaultPlan, site: &'static str, n: usize) -> Vec<Option<u64>> {
        (0..n).map(|_| plan.draw(site)).collect()
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultPlan::uniform(0.05, Rng::new(42));
        let mut b = FaultPlan::uniform(0.05, Rng::new(42));
        for site in FaultPlan::SITES {
            assert_eq!(drain(&mut a, site, 2_000), drain(&mut b, site, 2_000));
        }
        let ta: Vec<_> = a.tallies().collect();
        let tb: Vec<_> = b.tallies().collect();
        assert_eq!(ta, tb);
        assert!(
            ta.iter().any(|(_, s)| s.injected > 0),
            "5% over 2000 draws must fire"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::uniform(0.05, Rng::new(42));
        let mut b = FaultPlan::uniform(0.05, Rng::new(43));
        let sa: Vec<_> = FaultPlan::SITES
            .iter()
            .flat_map(|s| drain(&mut a, s, 2_000))
            .collect();
        let sb: Vec<_> = FaultPlan::SITES
            .iter()
            .flat_map(|s| drain(&mut b, s, 2_000))
            .collect();
        assert_ne!(sa, sb, "different seeds must yield different plans");
    }

    #[test]
    fn sites_are_interleaving_independent() {
        // Drawing sites round-robin or site-by-site yields the same
        // per-site sequences: streams are forked per site.
        let mut a = FaultPlan::uniform(0.1, Rng::new(7));
        let mut b = FaultPlan::uniform(0.1, Rng::new(7));
        let mut seq_a: BTreeMap<&str, Vec<Option<u64>>> = BTreeMap::new();
        for _ in 0..500 {
            for site in FaultPlan::SITES {
                seq_a.entry(site).or_default().push(a.draw(site));
            }
        }
        for site in FaultPlan::SITES {
            assert_eq!(seq_a[site], drain(&mut b, site, 500));
        }
    }

    #[test]
    fn nth_fires_exactly_at_indices() {
        let mut plan = FaultPlan::new(Rng::new(1));
        plan.enable(NVME_MEDIA, FaultSpec::Nth(vec![0, 3]));
        let hits: Vec<bool> = drain(&mut plan, NVME_MEDIA, 6)
            .into_iter()
            .map(|h| h.is_some())
            .collect();
        assert_eq!(hits, vec![true, false, false, true, false, false]);
        // Un-enabled sites never fire.
        assert!(drain(&mut plan, WIRE_DROP, 100).iter().all(|h| h.is_none()));
    }

    #[test]
    fn world_helpers_count() {
        let mut world = World::new(9);
        assert!(
            inject(&mut world, WIRE_DROP).is_none(),
            "no plan, no faults"
        );
        assert!(!active(&world));
        let rng = world.rng.fork();
        world.insert(FaultPlan::uniform(1.0, rng));
        assert!(active(&world));
        assert!(inject(&mut world, WIRE_DROP).is_some(), "p=1 always fires");
        retried(&mut world, "host.nvme");
        recovered(&mut world, "host.nvme");
        assert_eq!(exhausted_total(&world), 0);
        exhausted(&mut world, "host.nic");
        assert_eq!(exhausted_total(&world), 1);
        assert_eq!(world.stats.counter_value("fault.injected"), 1);
        assert_eq!(world.stats.counter_value("retry.count"), 1);
        assert_eq!(world.stats.counter_value("fault.recovered"), 1);
        assert_eq!(world.stats.counter_value("fault.exhausted"), 1);
        let plan = world.expect::<FaultPlan>();
        let t: BTreeMap<_, _> = plan.tallies().collect();
        assert_eq!(t["host.nvme"].retried, 1);
        assert_eq!(t["host.nvme"].recovered, 1);
        assert_eq!(t["host.nic"].exhausted, 1);
    }

    #[test]
    fn try_enable_rejects_bad_probabilities() {
        let mut plan = FaultPlan::new(Rng::new(3));
        for bad in [-0.1, 1.0001, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = plan
                .try_enable(WIRE_DROP, FaultSpec::Probability(bad))
                .expect_err("out-of-range probability must be rejected");
            assert!(err.contains("wire.drop"), "error names the site: {err}");
            assert!(err.contains("[0.0, 1.0]"), "error states the range: {err}");
        }
        assert!(
            drain(&mut plan, WIRE_DROP, 50).iter().all(|h| h.is_none()),
            "site not enabled"
        );
        plan.try_enable(WIRE_DROP, FaultSpec::Probability(0.0))
            .expect("0.0 is valid");
        plan.try_enable(WIRE_DROP, FaultSpec::Probability(1.0))
            .expect("1.0 is valid");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn enable_panics_on_bad_probability() {
        FaultPlan::new(Rng::new(3)).enable(NVME_MEDIA, FaultSpec::Probability(f64::NAN));
    }

    #[test]
    fn site_streams_are_registration_order_independent() {
        // Enable the same sites in opposite orders (and with an extra
        // unrelated site in between): each site's fault sequence for the
        // seed must be identical.
        let mut fwd = FaultPlan::new(Rng::new(0xA11CE));
        for site in FaultPlan::SITES {
            fwd.enable(site, FaultSpec::Probability(0.2));
        }
        let mut rev = FaultPlan::new(Rng::new(0xA11CE));
        rev.enable("extra.site", FaultSpec::Probability(0.5));
        for site in FaultPlan::SITES.iter().rev() {
            rev.enable(site, FaultSpec::Probability(0.2));
        }
        for site in FaultPlan::SITES {
            assert_eq!(
                drain(&mut fwd, site, 1_000),
                drain(&mut rev, site, 1_000),
                "{site}: stream must not depend on registration order"
            );
        }
    }

    #[test]
    fn fired_log_replays_as_nth_schedule() {
        let mut a = FaultPlan::new(Rng::new(77));
        a.enable(DMA_CORRUPT, FaultSpec::Probability(0.1));
        let hits_a = drain(&mut a, DMA_CORRUPT, 500);
        let log = a.fired_log();
        let (site, fired) = log.first().expect("one site enabled");
        assert_eq!(*site, DMA_CORRUPT);
        assert_eq!(fired.len(), hits_a.iter().filter(|h| h.is_some()).count());
        assert!(!fired.is_empty(), "10% over 500 draws must fire");
        // Same seed + Nth(fired) reproduces the faults exactly — not
        // just the hit pattern but the shaping entropy too, so a pinned
        // schedule corrupts the very same bits.
        let mut b = FaultPlan::new(Rng::new(77));
        b.enable(DMA_CORRUPT, FaultSpec::Nth(fired.clone()));
        let hits_b = drain(&mut b, DMA_CORRUPT, 500);
        assert_eq!(hits_a, hits_b);
    }

    #[test]
    fn contained_total_counts_only_corruption_sites() {
        let mut world = World::new(12);
        assert_eq!(contained_total(&world), 0, "no plan, nothing contained");
        let rng = world.rng.fork();
        world.insert(FaultPlan::new(rng));
        recovered(&mut world, DMA_CORRUPT);
        exhausted(&mut world, CPL_CORRUPT);
        recovered(&mut world, TLP_HEADER);
        recovered(&mut world, WIRE_DROP); // loss fault: not "contained corruption"
        exhausted(&mut world, NVME_MEDIA);
        assert_eq!(contained_total(&world), 3);
        assert_eq!(exhausted_total(&world), 2);
    }
}
