//! A small, fast, deterministic random number generator
//! (xoshiro256\*\* seeded via SplitMix64).
//!
//! The simulator keeps exactly one of these in the [`World`](crate::World)
//! so that every random decision in a scenario is reproducible from the
//! scenario seed alone. Workload crates that want the richer `rand`
//! distributions draw their seeds from this generator.

/// Deterministic xoshiro256\*\* generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64, as
    /// recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        // SplitMix64 cannot produce an all-zero state from any seed, but be
        // explicit about the invariant xoshiro requires.
        debug_assert!(s.iter().any(|&x| x != 0));
        Rng { s }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for simulation purposes (span << 2^64).
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times, as §V-C of the paper uses for request arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; guard the log against u == 0.
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller; one value per call for simplicity).
    pub fn gen_normal(&mut self) -> f64 {
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normally distributed value with the given parameters of the
    /// underlying normal (used for file-size distributions).
    pub fn gen_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gen_normal()).exp()
    }

    /// Derives an independent child generator (for decoupling workload
    /// streams from simulator-internal draws).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fills `buf` with random bytes (used to generate file payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        Rng::new(0).gen_range(5..5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::new(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_is_close() {
        let mut r = Rng::new(42);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "sample frequency {freq}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = Rng::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 zero bytes from a random generator is astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng::new(11);
        let mut child = parent.fork();
        // Child continues deterministically regardless of parent usage.
        let c1 = child.next_u64();
        let mut parent2 = Rng::new(11);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }
}
