//! Latency-breakdown accounting.
//!
//! Figures 3a and 11 of the paper decompose end-to-end operation latency
//! into labelled phases (file system, network stack, hash, device control,
//! …). Each in-flight request in our simulation carries a [`Breakdown`]
//! that the orchestrators and the HDC Engine fill in as phases complete;
//! [`PhaseTrace`] additionally keeps start/end instants so the Figure-2
//! style timeline can be printed.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Latency-breakdown categories, the union of the phase labels used across
/// Figures 2, 3a and 11 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// VFS / file-system metadata work (block-address lookup, permissions).
    FileSystem,
    /// Kernel TCP/IP stack processing and socket management.
    NetworkStack,
    /// Checksum / hash computation itself (CPU, GPU, or NDP unit).
    Hash,
    /// Host-memory staging copies (user↔kernel, bounce buffers).
    DataCopy,
    /// CPU↔GPU data movement in the GPU-offload baselines.
    GpuCopy,
    /// GPU control: kernel launch, synchronization, completion polling.
    GpuControl,
    /// The storage-device read itself (command execution on the SSD).
    Read,
    /// The storage-device write itself.
    Write,
    /// Software device-control: command build/submit, doorbells, boundary
    /// crossings.
    DeviceControl,
    /// Completion handling: interrupts, completion-queue processing,
    /// wakeups back to user space.
    RequestCompletion,
    /// HDC Engine scoreboard overhead (fetch, split, schedule, update).
    Scoreboard,
    /// Time on the network wire / NIC transmit.
    Wire,
    /// Anything not covered above.
    Other,
}

impl Category {
    /// All categories, in presentation order (matching the figure legends).
    pub const ALL: [Category; 13] = [
        Category::FileSystem,
        Category::NetworkStack,
        Category::Hash,
        Category::DataCopy,
        Category::GpuCopy,
        Category::GpuControl,
        Category::Read,
        Category::Write,
        Category::DeviceControl,
        Category::RequestCompletion,
        Category::Scoreboard,
        Category::Wire,
        Category::Other,
    ];

    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Category::FileSystem => "File System",
            Category::NetworkStack => "Network Stack",
            Category::Hash => "Hash",
            Category::DataCopy => "Data Copy",
            Category::GpuCopy => "CPU-GPU Data Copy",
            Category::GpuControl => "GPU Control",
            Category::Read => "Read",
            Category::Write => "Write",
            Category::DeviceControl => "Device Control",
            Category::RequestCompletion => "Request Completion",
            Category::Scoreboard => "Scoreboard",
            Category::Wire => "Wire",
            Category::Other => "Other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated per-category durations for one request.
///
/// ```
/// use dcs_sim::{Breakdown, Category};
/// let mut b = Breakdown::new();
/// b.add(Category::Read, 20_000);
/// b.add(Category::DeviceControl, 3_000);
/// b.add(Category::DeviceControl, 2_000);
/// assert_eq!(b.get(Category::DeviceControl), 5_000);
/// assert_eq!(b.total(), 25_000);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    spans: BTreeMap<Category, u64>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `dur_ns` to `category`.
    pub fn add(&mut self, category: Category, dur_ns: u64) {
        *self.spans.entry(category).or_insert(0) += dur_ns;
    }

    /// Accumulated time for a category (zero if never recorded).
    pub fn get(&self, category: Category) -> u64 {
        self.spans.get(&category).copied().unwrap_or(0)
    }

    /// Sum across all categories.
    pub fn total(&self) -> u64 {
        self.spans.values().sum()
    }

    /// Non-zero `(category, duration)` pairs in presentation order.
    pub fn entries(&self) -> Vec<(Category, u64)> {
        Category::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.get(c);
                (v > 0).then_some((c, v))
            })
            .collect()
    }

    /// Element-wise sum with another breakdown.
    pub fn merge(&mut self, other: &Breakdown) {
        for (&cat, &dur) in &other.spans {
            self.add(cat, dur);
        }
    }

    /// Element-wise mean of several breakdowns (empty input gives an empty
    /// breakdown). Used to average per-request breakdowns in the harness.
    pub fn mean_of(items: &[Breakdown]) -> Breakdown {
        let mut sum = Breakdown::new();
        for b in items {
            sum.merge(b);
        }
        if items.is_empty() {
            return sum;
        }
        let n = items.len() as u64;
        Breakdown {
            spans: sum.spans.into_iter().map(|(c, v)| (c, v / n)).collect(),
        }
    }

    /// The portion of the breakdown attributable to *software* (everything
    /// except raw device service and wire time). The paper's headline "42% /
    /// 72% latency reduction" claims concern this portion.
    pub fn software_total(&self) -> u64 {
        self.total()
            - self.get(Category::Read)
            - self.get(Category::Write)
            - self.get(Category::Wire)
    }
}

/// A timestamped phase log for one request — enough to print the Figure-2
/// style timeline of who was doing what, when.
#[derive(Clone, Debug, Default)]
pub struct PhaseTrace {
    phases: Vec<Phase>,
}

/// One labelled interval in a [`PhaseTrace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Breakdown category the interval belongs to.
    pub category: Category,
    /// Free-form label (e.g. `"nvme doorbell"`).
    pub label: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl PhaseTrace {
    /// An empty trace.
    pub fn new() -> Self {
        PhaseTrace::default()
    }

    /// Appends a phase.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn push(
        &mut self,
        category: Category,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        assert!(end >= start, "phase ends before it starts");
        self.phases.push(Phase {
            category,
            label: label.into(),
            start,
            end,
        });
    }

    /// The recorded phases in insertion order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Collapses the trace into a [`Breakdown`] of per-category durations.
    pub fn to_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for p in &self.phases {
            b.add(p.category, p.end - p.start);
        }
        b
    }

    /// Renders an ASCII timeline, one line per phase, for human inspection.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            out.push_str(&format!(
                "{:>12} .. {:>12}  [{:<18}] {}\n",
                p.start.to_string(),
                p.end.to_string(),
                p.category.label(),
                p.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_orders_entries() {
        let mut b = Breakdown::new();
        b.add(Category::Scoreboard, 10);
        b.add(Category::FileSystem, 5);
        b.add(Category::Scoreboard, 10);
        let entries = b.entries();
        assert_eq!(
            entries,
            vec![(Category::FileSystem, 5), (Category::Scoreboard, 20)]
        );
        assert_eq!(b.total(), 25);
    }

    #[test]
    fn software_total_excludes_device_and_wire() {
        let mut b = Breakdown::new();
        b.add(Category::Read, 20_000);
        b.add(Category::Wire, 5_000);
        b.add(Category::DeviceControl, 7_000);
        b.add(Category::FileSystem, 3_000);
        assert_eq!(b.software_total(), 10_000);
    }

    #[test]
    fn mean_of_breakdowns() {
        let mut a = Breakdown::new();
        a.add(Category::Hash, 10);
        let mut b = Breakdown::new();
        b.add(Category::Hash, 30);
        b.add(Category::Read, 2);
        let mean = Breakdown::mean_of(&[a, b]);
        assert_eq!(mean.get(Category::Hash), 20);
        assert_eq!(mean.get(Category::Read), 1);
        assert_eq!(Breakdown::mean_of(&[]), Breakdown::new());
    }

    #[test]
    fn phase_trace_roundtrips_to_breakdown() {
        let mut t = PhaseTrace::new();
        t.push(
            Category::Read,
            "flash",
            SimTime::from_us(1),
            SimTime::from_us(21),
        );
        t.push(
            Category::DeviceControl,
            "doorbell",
            SimTime::from_us(21),
            SimTime::from_us(22),
        );
        let b = t.to_breakdown();
        assert_eq!(b.get(Category::Read), 20_000);
        assert_eq!(b.get(Category::DeviceControl), 1_000);
        let rendered = t.render();
        assert!(rendered.contains("doorbell"), "{rendered}");
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn phase_rejects_negative_interval() {
        let mut t = PhaseTrace::new();
        t.push(
            Category::Read,
            "bad",
            SimTime::from_us(2),
            SimTime::from_us(1),
        );
    }

    #[test]
    fn category_labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }
}
