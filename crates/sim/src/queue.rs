//! A FIFO service-time helper for modeling serializing resources (PCIe
//! links, flash channels, NDP units, network wires).
//!
//! Instead of simulating per-flit occupancy, a [`FifoServer`] computes, for
//! each offered unit of work, when that work would *complete* if the
//! resource serves strictly in arrival order — the standard
//! `completion = max(now, busy_until) + service` recurrence. Components
//! embed one and schedule the completion message at the returned time. The
//! server also accounts busy time so link/unit utilization can be reported.

use crate::time::SimTime;

/// A work-conserving, strictly-FIFO single server.
///
/// ```
/// use dcs_sim::{FifoServer, SimTime};
/// let mut link = FifoServer::new();
/// // Two back-to-back 1us transfers offered at t=0 finish at 1us and 2us.
/// let a = link.offer(SimTime::ZERO, 1_000);
/// let b = link.offer(SimTime::ZERO, 1_000);
/// assert_eq!(a, SimTime::from_us(1));
/// assert_eq!(b, SimTime::from_us(2));
/// assert_eq!(link.busy_time(), 2_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FifoServer {
    busy_until: SimTime,
    busy_time: u64,
    completed: u64,
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Offers one unit of work needing `service_ns` of service at time
    /// `now`; returns the completion instant.
    pub fn offer(&mut self, now: SimTime, service_ns: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + service_ns;
        self.busy_until = done;
        self.busy_time += service_ns;
        self.completed += 1;
        done
    }

    /// Like [`FifoServer::offer`] but also returns the start instant — useful
    /// for breakdown accounting that distinguishes queueing from service.
    pub fn offer_with_start(&mut self, now: SimTime, service_ns: u64) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let done = start + service_ns;
        self.busy_until = done;
        self.busy_time += service_ns;
        self.completed += 1;
        (start, done)
    }

    /// The instant the server next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total accumulated service time, in nanoseconds.
    pub fn busy_time(&self) -> u64 {
        self.busy_time
    }

    /// Number of completed work units.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Fraction of a `[0, span_ns]` window the server spent busy.
    ///
    /// # Panics
    ///
    /// Panics if `span_ns` is zero.
    pub fn utilization(&self, span_ns: u64) -> f64 {
        assert!(span_ns > 0, "utilization over an empty span");
        self.busy_time as f64 / span_ns as f64
    }
}

/// A bank of identical FIFO servers dispatching each offered unit of work to
/// the server that can finish it earliest (models an n-unit NDP bank or a
/// multi-lane link).
#[derive(Clone, Debug)]
pub struct ServerBank {
    servers: Vec<FifoServer>,
}

impl ServerBank {
    /// A bank of `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a server bank needs at least one server");
        ServerBank {
            servers: vec![FifoServer::new(); n],
        }
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Offers one unit of work, routed to the earliest-available server;
    /// returns its completion instant.
    pub fn offer(&mut self, now: SimTime, service_ns: u64) -> SimTime {
        let best = self
            .servers
            .iter_mut()
            .min_by_key(|s| s.busy_until())
            .expect("bank is non-empty");
        best.offer(now, service_ns)
    }

    /// Total busy time summed across servers.
    pub fn busy_time(&self) -> u64 {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// Aggregate utilization of the bank over a window.
    pub fn utilization(&self, span_ns: u64) -> f64 {
        assert!(span_ns > 0, "utilization over an empty span");
        self.busy_time() as f64 / (span_ns as f64 * self.servers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_overlapping_offers() {
        let mut s = FifoServer::new();
        assert_eq!(s.offer(SimTime::from_nanos(10), 5), SimTime::from_nanos(15));
        // Offered "in the past" relative to busy_until: queues behind.
        assert_eq!(s.offer(SimTime::from_nanos(12), 5), SimTime::from_nanos(20));
        // Offered after an idle gap: starts immediately.
        assert_eq!(
            s.offer(SimTime::from_nanos(100), 5),
            SimTime::from_nanos(105)
        );
        assert_eq!(s.busy_time(), 15);
        assert_eq!(s.completed(), 3);
    }

    #[test]
    fn offer_with_start_separates_queueing_from_service() {
        let mut s = FifoServer::new();
        s.offer(SimTime::ZERO, 100);
        let (start, done) = s.offer_with_start(SimTime::from_nanos(10), 50);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(done, SimTime::from_nanos(150));
    }

    #[test]
    fn idle_checks_and_utilization() {
        let mut s = FifoServer::new();
        assert!(s.is_idle_at(SimTime::ZERO));
        s.offer(SimTime::ZERO, 400);
        assert!(!s.is_idle_at(SimTime::from_nanos(399)));
        assert!(s.is_idle_at(SimTime::from_nanos(400)));
        assert!((s.utilization(1_000) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bank_spreads_load_across_servers() {
        let mut bank = ServerBank::new(2);
        // Four 10ns jobs at t=0 on 2 servers -> completions 10,10,20,20.
        let mut completions: Vec<u64> = (0..4)
            .map(|_| bank.offer(SimTime::ZERO, 10).as_nanos())
            .collect();
        completions.sort_unstable();
        assert_eq!(completions, vec![10, 10, 20, 20]);
        assert_eq!(bank.busy_time(), 40);
        assert!((bank.utilization(20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bank_rejected() {
        let _ = ServerBank::new(0);
    }
}
