//! A FIFO service-time helper for modeling serializing resources (PCIe
//! links, flash channels, NDP units, network wires).
//!
//! Instead of simulating per-flit occupancy, a [`FifoServer`] computes, for
//! each offered unit of work, when that work would *complete* if the
//! resource serves strictly in arrival order — the standard
//! `completion = max(now, busy_until) + service` recurrence. Components
//! embed one and schedule the completion message at the returned time. The
//! server also accounts busy time so link/unit utilization can be reported.

use crate::time::SimTime;

/// A work-conserving, strictly-FIFO single server.
///
/// ```
/// use dcs_sim::{FifoServer, SimTime};
/// let mut link = FifoServer::new();
/// // Two back-to-back 1us transfers offered at t=0 finish at 1us and 2us.
/// let a = link.offer(SimTime::ZERO, 1_000);
/// let b = link.offer(SimTime::ZERO, 1_000);
/// assert_eq!(a, SimTime::from_us(1));
/// assert_eq!(b, SimTime::from_us(2));
/// assert_eq!(link.busy_time(), 2_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FifoServer {
    busy_until: SimTime,
    busy_time: u64,
    completed: u64,
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Offers one unit of work needing `service_ns` of service at time
    /// `now`; returns the completion instant.
    pub fn offer(&mut self, now: SimTime, service_ns: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + service_ns;
        self.busy_until = done;
        self.busy_time += service_ns;
        self.completed += 1;
        done
    }

    /// Like [`FifoServer::offer`] but also returns the start instant — useful
    /// for breakdown accounting that distinguishes queueing from service.
    pub fn offer_with_start(&mut self, now: SimTime, service_ns: u64) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let done = start + service_ns;
        self.busy_until = done;
        self.busy_time += service_ns;
        self.completed += 1;
        (start, done)
    }

    /// The instant the server next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total accumulated service time, in nanoseconds.
    pub fn busy_time(&self) -> u64 {
        self.busy_time
    }

    /// Number of completed work units.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Fraction of a `[0, span_ns]` window the server spent busy.
    ///
    /// # Panics
    ///
    /// Panics if `span_ns` is zero.
    pub fn utilization(&self, span_ns: u64) -> f64 {
        assert!(span_ns > 0, "utilization over an empty span");
        self.busy_time as f64 / span_ns as f64
    }
}

/// A work-conserving line that admits out-of-order *arrivals*: each
/// offered frame starts at the earliest instant the line is idle at or
/// after the frame's arrival, filling idle gaps left by frames that
/// arrive later.
///
/// [`FifoServer`] reserves capacity in **call** order: one frame whose
/// arrival lies far in the future (because it is still crossing a
/// degraded upstream port) pushes `busy_until` out and head-of-line
/// blocks every frame offered after it — even frames that arrive long
/// before it. A real switch port cannot be occupied by a frame that has
/// not reached it yet. `LineServer` fixes the artifact while staying
/// byte-identical to `FifoServer` when arrivals are offered in
/// nondecreasing order (the healthy-cluster case), so it only changes
/// schedules where the FIFO model was wrong.
///
/// `offer` takes both the caller's current time (`now`, nondecreasing
/// across calls — simulator event order) and the frame's `arrival` at
/// this line (`>= now`). Busy intervals wholly before `now` can never
/// interact with a future arrival and are pruned, which keeps the
/// interval list short.
///
/// ```
/// use dcs_sim::{LineServer, SimTime};
/// let mut line = LineServer::new();
/// let t = SimTime::from_nanos;
/// // A frame still crossing a slow upstream port arrives at t=1000.
/// assert_eq!(line.offer(t(0), t(1000), 10), t(1010));
/// // A frame arriving *now* slips into the idle gap in front of it.
/// assert_eq!(line.offer(t(0), t(0), 10), t(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LineServer {
    /// Future busy intervals `[start, end)`, sorted, non-overlapping.
    busy: Vec<(SimTime, SimTime)>,
    busy_time: u64,
    completed: u64,
}

impl LineServer {
    /// An idle line.
    pub fn new() -> Self {
        LineServer::default()
    }

    /// Offers one frame arriving at `arrival` and needing `service_ns` on
    /// the line; returns the completion instant. `now` is the caller's
    /// current simulation time, used to prune dead intervals.
    ///
    /// # Panics
    ///
    /// Panics if `arrival < now`.
    pub fn offer(&mut self, now: SimTime, arrival: SimTime, service_ns: u64) -> SimTime {
        assert!(arrival >= now, "a frame cannot arrive in the caller's past");
        self.busy.retain(|&(_, end)| end > now);
        // Earliest idle span of `service_ns` at or after `arrival`:
        // walk the (short) interval list front to back.
        let mut start = arrival;
        let mut at = 0;
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if start + service_ns <= s {
                break; // fits in the gap before interval i
            }
            if e > start {
                start = e;
            }
            at = i + 1;
        }
        let done = start + service_ns;
        self.busy.insert(at, (start, done));
        // Coalesce with abutting neighbours so the list stays minimal.
        if at + 1 < self.busy.len() && self.busy[at].1 == self.busy[at + 1].0 {
            self.busy[at].1 = self.busy[at + 1].1;
            self.busy.remove(at + 1);
        }
        if at > 0 && self.busy[at - 1].1 == self.busy[at].0 {
            self.busy[at - 1].1 = self.busy[at].1;
            self.busy.remove(at);
        }
        self.busy_time += service_ns;
        self.completed += 1;
        done
    }

    /// Total accumulated service time, in nanoseconds.
    pub fn busy_time(&self) -> u64 {
        self.busy_time
    }

    /// Number of completed frames.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// A bank of identical FIFO servers dispatching each offered unit of work to
/// the server that can finish it earliest (models an n-unit NDP bank or a
/// multi-lane link).
#[derive(Clone, Debug)]
pub struct ServerBank {
    servers: Vec<FifoServer>,
}

impl ServerBank {
    /// A bank of `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a server bank needs at least one server");
        ServerBank {
            servers: vec![FifoServer::new(); n],
        }
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Offers one unit of work, routed to the earliest-available server;
    /// returns its completion instant.
    pub fn offer(&mut self, now: SimTime, service_ns: u64) -> SimTime {
        let best = self
            .servers
            .iter_mut()
            .min_by_key(|s| s.busy_until())
            .expect("bank is non-empty");
        best.offer(now, service_ns)
    }

    /// Total busy time summed across servers.
    pub fn busy_time(&self) -> u64 {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// Aggregate utilization of the bank over a window.
    pub fn utilization(&self, span_ns: u64) -> f64 {
        assert!(span_ns > 0, "utilization over an empty span");
        self.busy_time() as f64 / (span_ns as f64 * self.servers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_overlapping_offers() {
        let mut s = FifoServer::new();
        assert_eq!(s.offer(SimTime::from_nanos(10), 5), SimTime::from_nanos(15));
        // Offered "in the past" relative to busy_until: queues behind.
        assert_eq!(s.offer(SimTime::from_nanos(12), 5), SimTime::from_nanos(20));
        // Offered after an idle gap: starts immediately.
        assert_eq!(
            s.offer(SimTime::from_nanos(100), 5),
            SimTime::from_nanos(105)
        );
        assert_eq!(s.busy_time(), 15);
        assert_eq!(s.completed(), 3);
    }

    #[test]
    fn offer_with_start_separates_queueing_from_service() {
        let mut s = FifoServer::new();
        s.offer(SimTime::ZERO, 100);
        let (start, done) = s.offer_with_start(SimTime::from_nanos(10), 50);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(done, SimTime::from_nanos(150));
    }

    #[test]
    fn idle_checks_and_utilization() {
        let mut s = FifoServer::new();
        assert!(s.is_idle_at(SimTime::ZERO));
        s.offer(SimTime::ZERO, 400);
        assert!(!s.is_idle_at(SimTime::from_nanos(399)));
        assert!(s.is_idle_at(SimTime::from_nanos(400)));
        assert!((s.utilization(1_000) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bank_spreads_load_across_servers() {
        let mut bank = ServerBank::new(2);
        // Four 10ns jobs at t=0 on 2 servers -> completions 10,10,20,20.
        let mut completions: Vec<u64> = (0..4)
            .map(|_| bank.offer(SimTime::ZERO, 10).as_nanos())
            .collect();
        completions.sort_unstable();
        assert_eq!(completions, vec![10, 10, 20, 20]);
        assert_eq!(bank.busy_time(), 40);
        assert!((bank.utilization(20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bank_rejected() {
        let _ = ServerBank::new(0);
    }
}
