//! Scheduler-equivalence property harness (DESIGN.md §16).
//!
//! The timing-wheel calendar must be *observationally identical* to the
//! binary-heap reference model: same delivery order, same `now()`, same
//! `delivered_events()`, for any legal schedule. This harness drives
//! randomized and adversarial schedules through both calendars — the
//! wheel via `Simulator::new`, the reference via the `#[doc(hidden)]`
//! `Simulator::set_reference_heap` — and compares the full delivery
//! logs. The generator deliberately lands on every boundary the wheel
//! has: same-time ties, the `at == now` past-assert boundary, slot and
//! wheel-revolution rollovers, the far-future overflow tier, and times
//! within a hair of `u64::MAX`.

use dcs_sim::{Component, ComponentId, Ctx, Msg, Rng, SimTime, Simulator};

/// Wheel geometry mirrored from `crates/sim/src/calendar.rs`; the
/// constants are private to the crate, so the adversarial generator
/// restates them (drifting is harmless — the schedules stay legal,
/// they just stop landing exactly on the boundaries).
const SLOT_SPAN: u64 = 512;
const WHEEL_HORIZON: u64 = 128 * SLOT_SPAN;

/// Everything observable about one delivery.
#[derive(Debug, PartialEq, Eq, Default)]
struct DeliveryLog(Vec<(u64, u32, u64)>); // (now_ns, dst_index, tick id)

/// How many follow-up sends the chaos components may still make
/// (bounds the run without wall-clock involvement).
#[derive(Debug)]
struct SendBudget(u64);

#[derive(Debug)]
struct Tick(u64);

/// Logs every delivery; never replies. Near-`u64::MAX` events are
/// routed here so follow-up delays cannot overflow the clock.
struct Sink {
    index: u32,
}
impl Component for Sink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let t = msg.downcast::<Tick>().expect("sink receives ticks");
        let now = ctx.now().as_nanos();
        ctx.world()
            .expect_mut::<DeliveryLog>()
            .0
            .push((now, self.index, t.0));
    }
}

/// Logs every delivery and, budget permitting, fans out follow-up
/// ticks with adversarial delays drawn from the world RNG (identical
/// across both calendars by determinism).
struct Chaos {
    index: u32,
    peers: Vec<ComponentId>,
}
impl Component for Chaos {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let t = msg.downcast::<Tick>().expect("chaos receives ticks");
        let now = ctx.now().as_nanos();
        ctx.world()
            .expect_mut::<DeliveryLog>()
            .0
            .push((now, self.index, t.0));
        let fanout = ctx.world().rng.gen_range(0..4);
        for i in 0..fanout {
            let budget = &mut ctx.world().expect_mut::<SendBudget>().0;
            if *budget == 0 {
                return;
            }
            *budget -= 1;
            let delay = adversarial_delay(&mut ctx.world().rng);
            let peer = self.peers[ctx.world().rng.gen_range(0..self.peers.len() as u64) as usize];
            // Wrapping: ids are lineage tags, not counters, and deep
            // relay chains overflow a ×10 genealogy quickly.
            ctx.send_in(delay, peer, Tick(t.0.wrapping_mul(10).wrapping_add(i)));
        }
    }
}

/// Delays that stress every tier boundary: zero (same-time ties at the
/// `at == now` boundary), sub-slot, exact slot multiples (rollover),
/// around a full wheel revolution, and far-future overflow.
fn adversarial_delay(rng: &mut Rng) -> u64 {
    match rng.gen_range(0..8) {
        0 => 0,
        1 => rng.gen_range(1..SLOT_SPAN),
        2 => SLOT_SPAN * rng.gen_range(1..5),
        3 => SLOT_SPAN - 1 + rng.gen_range(0..3), // straddle a slot edge
        4 => WHEEL_HORIZON - SLOT_SPAN + rng.gen_range(0..2 * SLOT_SPAN),
        5 => WHEEL_HORIZON * rng.gen_range(1..4) + rng.gen_range(0..97),
        6 => rng.gen_range(0..10_000),
        _ => rng.gen_range(0..50_000_000), // ms-scale timers
    }
}

/// Builds the scenario and runs it to completion on one calendar.
/// Returns (delivery log, final now, delivered count).
fn run_scenario(seed: u64, reference_heap: bool) -> (DeliveryLog, SimTime, u64) {
    let mut sim = Simulator::new(seed);
    if reference_heap {
        sim.set_reference_heap();
    }
    sim.world_mut().insert(DeliveryLog::default());
    sim.world_mut().insert(SendBudget(600));

    let chaos_ids: Vec<ComponentId> = (0..6).map(|i| sim.reserve(&format!("chaos{i}"))).collect();
    for (i, id) in chaos_ids.iter().enumerate() {
        sim.install(
            *id,
            Chaos {
                index: i as u32,
                peers: chaos_ids.clone(),
            },
        );
    }
    let sink = sim.add("sink", Sink { index: 99 });

    // Initial schedule: a seeded mix hitting ties, boundaries, the far
    // tier, and the top of the clock. The RNG here is separate from
    // the world RNG so the schedule itself is a pure function of seed.
    let mut gen = Rng::new(seed ^ 0x5EED_5C4E);
    for n in 0..80u64 {
        let at = match gen.gen_range(0..6) {
            0 => 1_000, // a pile of exact ties
            1 => SLOT_SPAN * gen.gen_range(0..4096),
            2 => gen.gen_range(0..WHEEL_HORIZON * 3),
            3 => WHEEL_HORIZON * gen.gen_range(0..8) + gen.gen_range(0..2) * (SLOT_SPAN - 1),
            4 => gen.gen_range(0..200),
            _ => gen.gen_range(0..100_000_000),
        };
        let dst = chaos_ids[gen.gen_range(0..chaos_ids.len() as u64) as usize];
        sim.schedule_at(SimTime::from_nanos(at), dst, Tick(n));
    }
    // The top of the clock: deliverable, but must never fan out (the
    // sink absorbs them), or `now + delay` would overflow.
    for (i, off) in [0u64, 1, 511, 512, 513].iter().enumerate() {
        sim.schedule_at(
            SimTime::from_nanos(u64::MAX - off),
            sink,
            Tick(900 + i as u64),
        );
    }

    sim.run();
    let log = sim.world_mut().remove::<DeliveryLog>().expect("log stays");
    (log, sim.now(), sim.delivered_events())
}

#[test]
fn wheel_matches_heap_reference_across_seeds() {
    for seed in [
        1,
        2,
        3,
        0xDEAD,
        0xBEEF,
        0xD15EA5E,
        42,
        0xFFFF_FFFF,
        0x1234_5678_9ABC,
        7,
        11,
        13,
    ] {
        let (wheel_log, wheel_now, wheel_n) = run_scenario(seed, false);
        let (heap_log, heap_now, heap_n) = run_scenario(seed, true);
        assert!(
            wheel_log.0.len() > 80,
            "seed {seed}: scenario must do real work ({} deliveries)",
            wheel_log.0.len()
        );
        assert_eq!(wheel_log, heap_log, "seed {seed}: delivery order diverged");
        assert_eq!(wheel_now, heap_now, "seed {seed}: final now diverged");
        assert_eq!(wheel_n, heap_n, "seed {seed}: delivered count diverged");
        // The u64-top events really were delivered.
        assert_eq!(wheel_now.as_nanos(), u64::MAX, "seed {seed}");
    }
}

/// Same scenario, driven through `run_until` at randomized deadlines:
/// both calendars must agree on the per-window delivered counts and on
/// `peek_time` at every pause (the peek/step coherence the restructured
/// `run_until` relies on).
#[test]
fn run_until_windows_match_heap_reference() {
    for seed in [5u64, 0xAB, 0xCDEF, 99] {
        let build = |reference: bool| {
            let mut sim = Simulator::new(seed);
            if reference {
                sim.set_reference_heap();
            }
            sim.world_mut().insert(DeliveryLog::default());
            sim.world_mut().insert(SendBudget(300));
            let ids: Vec<ComponentId> = (0..4).map(|i| sim.reserve(&format!("c{i}"))).collect();
            for (i, id) in ids.iter().enumerate() {
                sim.install(
                    *id,
                    Chaos {
                        index: i as u32,
                        peers: ids.clone(),
                    },
                );
            }
            let mut gen = Rng::new(seed ^ 0x00DE_AD11);
            for n in 0..50u64 {
                let at = gen.gen_range(0..WHEEL_HORIZON * 2);
                sim.schedule_at(
                    SimTime::from_nanos(at),
                    ids[gen.gen_range(0..ids.len() as u64) as usize],
                    Tick(n),
                );
            }
            sim
        };
        let mut wheel = build(false);
        let mut heap = build(true);
        let mut gen = Rng::new(seed ^ 0x000E_AD11);
        let mut deadline = 0u64;
        for _ in 0..40 {
            deadline += gen.gen_range(0..WHEEL_HORIZON / 4);
            let d = SimTime::from_nanos(deadline);
            let a = wheel.run_until(d);
            let b = heap.run_until(d);
            assert_eq!(a, b, "seed {seed}: window to {deadline} diverged");
            assert_eq!(wheel.now(), heap.now(), "seed {seed}");
            assert_eq!(wheel.peek_time(), heap.peek_time(), "seed {seed}");
        }
        wheel.run();
        heap.run();
        assert_eq!(
            wheel.world().expect::<DeliveryLog>(),
            heap.world().expect::<DeliveryLog>(),
            "seed {seed}: final logs diverged"
        );
        assert_eq!(wheel.delivered_events(), heap.delivered_events());
    }
}

/// Scheduling at exactly `now` (the past-assert boundary) from outside
/// the dispatch loop, after `run_until` has advanced the clock into a
/// region the wheel may have materialized past.
#[test]
fn schedule_at_now_after_deadline_jump_matches() {
    for seed in [3u64, 17, 0xFACE] {
        let run = |reference: bool| {
            let mut sim = Simulator::new(seed);
            if reference {
                sim.set_reference_heap();
            }
            sim.world_mut().insert(DeliveryLog::default());
            let sink = sim.add("sink", Sink { index: 0 });
            // A far event to materialize toward, then a deadline stop
            // well before it.
            sim.schedule_at(SimTime::from_nanos(WHEEL_HORIZON * 5), sink, Tick(0));
            sim.run_until(SimTime::from_nanos(WHEEL_HORIZON)); // peeks the far head
            assert_eq!(sim.now().as_nanos(), WHEEL_HORIZON);
            // Now schedule behind the materialized window: at `now`
            // exactly, and between `now` and the far event.
            sim.schedule_at(sim.now(), sink, Tick(1));
            sim.schedule_at(SimTime::from_nanos(WHEEL_HORIZON * 2), sink, Tick(2));
            sim.run();
            let log = sim.world_mut().remove::<DeliveryLog>().expect("log");
            (log, sim.now(), sim.delivered_events())
        };
        assert_eq!(run(false), run(true), "seed {seed}");
    }
}
