//! Property-based tests of the simulation kernel's invariants.

use dcs_sim::{time, Breakdown, Category, Component, Ctx, FifoServer, Msg, Rng, SimTime, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FIFO servers never travel back in time, conserve total service, and
    /// serve work-conservingly.
    #[test]
    fn fifo_server_monotone(offers in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..200)) {
        let mut server = FifoServer::new();
        let mut offers = offers;
        offers.sort_by_key(|(t, _)| *t);
        let mut last_done = SimTime::ZERO;
        let mut total = 0;
        for (t, service) in offers {
            let done = server.offer(SimTime::from_nanos(t), service);
            prop_assert!(done >= last_done, "completions are FIFO-ordered");
            prop_assert!(done.as_nanos() >= t + service);
            last_done = done;
            total += service;
        }
        prop_assert_eq!(server.busy_time(), total);
    }

    /// The RNG's range sampling stays in bounds and the exponential stays
    /// positive.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&v));
            prop_assert!(rng.gen_exp(50.0) > 0.0);
            let f = rng.gen_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Breakdown merging is commutative and totals add.
    #[test]
    fn breakdown_merge(values in proptest::collection::vec((0usize..13, 0u64..1_000_000), 0..40)) {
        let cats = Category::ALL;
        let mut a = Breakdown::new();
        let mut b = Breakdown::new();
        for (i, (c, v)) in values.iter().enumerate() {
            if i % 2 == 0 { a.add(cats[*c], *v) } else { b.add(cats[*c], *v) };
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), a.total() + b.total());
    }

    /// Event delivery is globally ordered by (time, schedule order): a
    /// component observing its own inbox never sees time regress.
    #[test]
    fn event_ordering(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        struct Watcher {
            last: SimTime,
        }
        #[derive(Debug)]
        struct Tick;
        impl Component for Watcher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                msg.downcast::<Tick>().expect("ticks only");
                assert!(ctx.now() >= self.last, "time regressed");
                self.last = ctx.now();
                ctx.world().stats.counter("ticks").add(1);
            }
        }
        let mut sim = Simulator::new(1);
        let w = sim.add("w", Watcher { last: SimTime::ZERO });
        for d in &delays {
            sim.schedule_at(SimTime::from_nanos(*d), w, Tick);
        }
        sim.run();
        prop_assert_eq!(sim.world().stats.counter_value("ticks"), delays.len() as u64);
        let max = delays.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(sim.now(), SimTime::ZERO + time::ns(max));
    }
}
