//! Randomized property tests of the simulation kernel's invariants,
//! driven by the deterministic in-repo [`Rng`] (the container builds
//! offline, so no external property-testing framework is available).

use dcs_sim::{
    time, Breakdown, Category, Component, Ctx, FifoServer, Msg, Rng, SimTime, Simulator,
};

/// FIFO servers never travel back in time, conserve total service, and
/// serve work-conservingly.
#[test]
fn fifo_server_monotone() {
    let mut rng = Rng::new(0x51_F1F0);
    for _ in 0..128 {
        let n = rng.gen_range(1..200) as usize;
        let mut offers: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0..1_000_000), rng.gen_range(1..10_000)))
            .collect();
        offers.sort_by_key(|(t, _)| *t);
        let mut server = FifoServer::new();
        let mut last_done = SimTime::ZERO;
        let mut total = 0;
        for (t, service) in offers {
            let done = server.offer(SimTime::from_nanos(t), service);
            assert!(done >= last_done, "completions are FIFO-ordered");
            assert!(done.as_nanos() >= t + service);
            last_done = done;
            total += service;
        }
        assert_eq!(server.busy_time(), total);
    }
}

/// The RNG's range sampling stays in bounds and the exponential stays
/// positive.
#[test]
fn rng_bounds() {
    let mut meta = Rng::new(0x51_B07D);
    for _ in 0..128 {
        let seed = meta.next_u64();
        let lo = meta.gen_range(0..1_000);
        let span = meta.gen_range(1..1_000);
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo..lo + span);
            assert!((lo..lo + span).contains(&v));
            assert!(rng.gen_exp(50.0) > 0.0);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

/// Breakdown merging is commutative and totals add.
#[test]
fn breakdown_merge() {
    let mut rng = Rng::new(0x51_B12D);
    let cats = Category::ALL;
    for _ in 0..128 {
        let n = rng.gen_range(0..40) as usize;
        let mut a = Breakdown::new();
        let mut b = Breakdown::new();
        for i in 0..n {
            let c = rng.gen_range(0..cats.len() as u64) as usize;
            let v = rng.gen_range(0..1_000_000);
            if i % 2 == 0 {
                a.add(cats[c], v);
            } else {
                b.add(cats[c], v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), a.total() + b.total());
    }
}

/// Event delivery is globally ordered by (time, schedule order): a
/// component observing its own inbox never sees time regress.
#[test]
fn event_ordering() {
    struct Watcher {
        last: SimTime,
    }
    #[derive(Debug)]
    struct Tick;
    impl Component for Watcher {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            msg.downcast::<Tick>().expect("ticks only");
            assert!(ctx.now() >= self.last, "time regressed");
            self.last = ctx.now();
            ctx.world().stats.counter("ticks").add(1);
        }
    }
    let mut rng = Rng::new(0x51_02DE);
    for _ in 0..64 {
        let n = rng.gen_range(1..100) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
        let mut sim = Simulator::new(1);
        let w = sim.add(
            "w",
            Watcher {
                last: SimTime::ZERO,
            },
        );
        for d in &delays {
            sim.schedule_at(SimTime::from_nanos(*d), w, Tick);
        }
        sim.run();
        assert_eq!(
            sim.world().stats.counter_value("ticks"),
            delays.len() as u64
        );
        let max = delays.iter().max().copied().unwrap_or(0);
        assert_eq!(sim.now(), SimTime::ZERO + time::ns(max));
    }
}
