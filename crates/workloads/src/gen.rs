//! Request generation: Poisson arrivals and the Dropbox-like object-size
//! distribution.
//!
//! §V-C1: "To model a realistic user behavior, we generate user requests
//! with the parameters (e.g., PUT/GET ratio, file size distribution) in
//! \[42\] obtained from the real-world data-serving service. We also use
//! the Poisson process to model request arrivals."

use dcs_sim::Rng;

/// Poisson arrival process: exponential inter-arrival times.
#[derive(Debug)]
pub struct PoissonArrivals {
    mean_interarrival_ns: f64,
    rng: Rng,
}

impl PoissonArrivals {
    /// Arrivals with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival_ns` is not positive.
    pub fn new(mean_interarrival_ns: f64, rng: Rng) -> Self {
        assert!(
            mean_interarrival_ns > 0.0,
            "inter-arrival time must be positive"
        );
        PoissonArrivals {
            mean_interarrival_ns,
            rng,
        }
    }

    /// Arrivals tuned to offer `target_gbps` of load at `mean_size` bytes
    /// per request.
    pub fn for_throughput(target_gbps: f64, mean_size: f64, rng: Rng) -> Self {
        assert!(target_gbps > 0.0 && mean_size > 0.0);
        // requests/s = target bits/s / bits per request.
        let rate = target_gbps * 1e9 / (mean_size * 8.0);
        PoissonArrivals::new(1e9 / rate, rng)
    }

    /// Next inter-arrival gap in nanoseconds (≥ 1).
    pub fn next_gap(&mut self) -> u64 {
        (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1)
    }

    /// The configured mean inter-arrival time.
    pub fn mean_interarrival_ns(&self) -> f64 {
        self.mean_interarrival_ns
    }
}

/// Object-size distribution.
///
/// Drago et al. observe personal-cloud objects dominated by small files
/// with a heavy tail of multi-megabyte ones; we model that as a lognormal
/// body clamped to a block-aligned range (the clamp also keeps simulated
/// memory bounded).
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    /// Mean of the underlying normal (ln bytes).
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
    /// Smallest object (block-aligned).
    pub min: usize,
    /// Largest object (block-aligned).
    pub max: usize,
}

impl Default for SizeDistribution {
    fn default() -> Self {
        // Median ≈ e^11.8 ≈ 130 KiB; tail to 1 MiB (clamped).
        SizeDistribution {
            mu: 11.8,
            sigma: 1.1,
            min: 4096,
            max: 1 << 20,
        }
    }
}

impl SizeDistribution {
    /// Draws a block-aligned object size.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let raw = rng.gen_lognormal(self.mu, self.sigma);
        let clamped = raw.clamp(self.min as f64, self.max as f64) as usize;
        clamped.div_ceil(4096) * 4096
    }

    /// Analytic-ish mean of the *clamped, block-aligned* distribution,
    /// estimated by sampling (deterministic seed), for rate planning.
    pub fn mean_estimate(&self) -> f64 {
        let mut rng = Rng::new(0xD15C);
        let n = 20_000;
        (0..n).map(|_| self.sample(&mut rng)).sum::<usize>() as f64 / n as f64
    }
}

/// Zipfian key-popularity generator (the YCSB / Gray et al. algorithm).
///
/// Draws *ranks* in `0..items` where rank 0 is the hottest key and
/// popularity falls off as `1 / (rank+1)^theta`. `theta` parameterizes the
/// skew: YCSB's default is 0.99 (a few keys absorb most traffic);
/// `theta → 0` approaches uniform. Construction precomputes the
/// cumulative mass function once (O(n)); each draw then inverts it with
/// a binary search (O(log n)), so sampling is *exact* — unlike the
/// usual YCSB continuous approximation, whose tail error a
/// goodness-of-fit test over a few thousand ranks can detect — and,
/// driven by the deterministic [`Rng`], fully reproducible.
///
/// Callers that need the hot keys scattered across the keyspace (so
/// neighboring ranks do not shard together) should mix the returned rank
/// through a hash; the store layer does exactly that.
#[derive(Clone, Debug)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zetan: f64,
    /// `cdf[r]` = P(rank <= r); last entry is forced to exactly 1.
    cdf: Vec<f64>,
}

impl Zipfian {
    /// A generator over `items` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or `theta` is not in `[0, 1)`.
    pub fn new(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "a zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(items, theta);
        let mut cdf = Vec::with_capacity(items as usize);
        let mut acc = 0.0;
        for rank in 0..items {
            acc += 1.0 / ((rank + 1) as f64).powf(theta) / zetan;
            cdf.push(acc);
        }
        // Float rounding can leave the last entry a hair under 1; pin it
        // so every u in [0, 1) lands on a valid rank.
        *cdf.last_mut().unwrap() = 1.0;
        Zipfian {
            items,
            theta,
            zetan,
            cdf,
        }
    }

    /// The harmonic-like normalizer `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of drawing rank `r` (for goodness-of-fit checks).
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank < self.items, "rank out of range");
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Draws a rank in `0..items`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        // First rank whose cumulative mass strictly exceeds u.
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gap_mean_is_close() {
        let mut p = PoissonArrivals::new(10_000.0, Rng::new(1));
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.next_gap() as f64).sum::<f64>() / n as f64;
        assert!((mean - 10_000.0).abs() < 300.0, "{mean}");
    }

    #[test]
    fn throughput_tuning_matches_rate() {
        let p = PoissonArrivals::for_throughput(9.0, 128.0 * 1024.0, Rng::new(2));
        // 9 Gbps at 128 KiB/request ≈ 8583 req/s → ≈116.5 us gaps.
        assert!((p.mean_interarrival_ns() - 116_508.0).abs() < 1_000.0);
    }

    #[test]
    fn sizes_are_block_aligned_and_clamped() {
        let d = SizeDistribution::default();
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert_eq!(s % 4096, 0);
            assert!(s >= d.min && s <= d.max.div_ceil(4096) * 4096, "{s}");
        }
    }

    #[test]
    fn mean_estimate_is_stable_and_sane() {
        let d = SizeDistribution::default();
        let m = d.mean_estimate();
        assert!(m > 100_000.0 && m < 400_000.0, "{m}");
        assert_eq!(m, d.mean_estimate(), "deterministic");
    }

    #[test]
    fn poisson_gaps_are_exponential_not_just_right_on_average() {
        // An exponential distribution has CV = 1 and P(X < mean) = 1 - 1/e.
        // Catching either off guards against a generator that hits the
        // mean with the wrong shape (e.g. uniform or constant gaps).
        let mean = 25_000.0;
        let mut p = PoissonArrivals::new(mean, Rng::new(11));
        let n = 40_000;
        let gaps: Vec<f64> = (0..n).map(|_| p.next_gap() as f64).collect();
        let m = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.03, "coefficient of variation {cv}");
        let below = gaps.iter().filter(|&&g| g < mean).count() as f64 / n as f64;
        let expect = 1.0 - (-1.0f64).exp();
        assert!(
            (below - expect).abs() < 0.01,
            "P(gap<mean) {below} vs {expect}"
        );
    }

    #[test]
    fn size_sample_mean_matches_clamped_lognormal_analytics() {
        // For the unclamped lognormal, E[X] = exp(mu + sigma^2/2). Clamping
        // to [min, max] and block-rounding shifts that; bound the sampled
        // mean between the clamp floor's effect and the analytic mean, and
        // require run-to-run agreement under the same seed.
        let d = SizeDistribution::default();
        let unclamped_mean = (d.mu + d.sigma * d.sigma / 2.0).exp();
        let n = 40_000;
        let mut rng = Rng::new(12);
        let mean = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        // The max clamp only cuts the mean; block alignment adds < 4 KiB.
        assert!(
            mean < unclamped_mean + 4096.0,
            "sampled {mean} above analytic unclamped {unclamped_mean}"
        );
        // The clamp cannot cut the Dropbox-like mix below half its
        // analytic mean (most mass is far from the 1 MiB cap).
        assert!(
            mean > unclamped_mean / 2.0,
            "sampled {mean} vs {unclamped_mean}"
        );
        let mut rng2 = Rng::new(12);
        let mean2 = (0..n).map(|_| d.sample(&mut rng2) as f64).sum::<f64>() / n as f64;
        assert_eq!(mean, mean2, "same seed, same mean");
    }

    #[test]
    fn zipfian_chi_square_goodness_of_fit() {
        // 64 ranks at YCSB's default skew; compare observed counts against
        // the analytic cell probabilities. With dof = 63 the 99.9th
        // percentile of chi-square is ~104, so 150 gives a generous margin
        // while still catching a generator with the wrong shape (uniform
        // draws score in the tens of thousands here).
        let z = Zipfian::new(64, 0.99);
        let n = 200_000u64;
        let mut rng = Rng::new(0x21BF);
        let mut counts = vec![0u64; 64];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let chi2: f64 = (0..64)
            .map(|r| {
                let expect = z.probability(r as u64) * n as f64;
                let diff = counts[r] as f64 - expect;
                diff * diff / expect
            })
            .sum();
        assert!(chi2 < 150.0, "chi-square {chi2} rejects the zipfian fit");
        // Sanity on the same draw set: probabilities sum to 1 and the head
        // dominates the way 1/i^0.99 says it should.
        let total_p: f64 = (0..64).map(|r| z.probability(r)).sum();
        assert!((total_p - 1.0).abs() < 1e-9, "{total_p}");
        assert!(
            counts[0] > counts[10] && counts[10] > counts[63],
            "{counts:?}"
        );
    }

    #[test]
    fn zipfian_is_deterministic_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let draw = |seed| {
            let mut rng = Rng::new(seed);
            (0..5_000).map(|_| z.sample(&mut rng)).collect::<Vec<u64>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same ranks");
        assert_ne!(a, draw(8), "different seed, different ranks");
        assert!(a.iter().all(|&r| r < 1000));
    }

    #[test]
    fn zipfian_skew_concentrates_the_head() {
        // The hot-10% share of traffic must grow with theta, and theta→0
        // must approach uniform (10% of ranks ≈ 10% of draws).
        let head_share = |theta: f64| {
            let z = Zipfian::new(100, theta);
            let mut rng = Rng::new(99);
            let n = 50_000;
            let hot = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
            hot as f64 / n as f64
        };
        let flat = head_share(0.01);
        let ycsb = head_share(0.99);
        assert!((flat - 0.10).abs() < 0.02, "theta~0 head share {flat}");
        assert!(ycsb > 0.5, "theta=0.99 head share {ycsb}");
        assert!(ycsb > flat + 0.3);
    }

    #[test]
    fn zipfian_single_item_always_rank_zero() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = Rng::new(3);
        assert!((0..100).all(|_| z.sample(&mut rng) == 0));
    }

    #[test]
    fn wider_sigma_fattens_the_tail() {
        let narrow = SizeDistribution {
            sigma: 0.4,
            ..SizeDistribution::default()
        };
        let wide = SizeDistribution {
            sigma: 1.4,
            ..SizeDistribution::default()
        };
        let count_max = |d: &SizeDistribution, seed| {
            let mut rng = Rng::new(seed);
            (0..20_000).filter(|_| d.sample(&mut rng) >= d.max).count()
        };
        assert!(count_max(&wide, 13) > 10 * count_max(&narrow, 13).max(1));
    }
}
