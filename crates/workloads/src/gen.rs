//! Request generation: Poisson arrivals and the Dropbox-like object-size
//! distribution.
//!
//! §V-C1: "To model a realistic user behavior, we generate user requests
//! with the parameters (e.g., PUT/GET ratio, file size distribution) in
//! \[42\] obtained from the real-world data-serving service. We also use
//! the Poisson process to model request arrivals."

use dcs_sim::Rng;

/// Poisson arrival process: exponential inter-arrival times.
#[derive(Debug)]
pub struct PoissonArrivals {
    mean_interarrival_ns: f64,
    rng: Rng,
}

impl PoissonArrivals {
    /// Arrivals with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival_ns` is not positive.
    pub fn new(mean_interarrival_ns: f64, rng: Rng) -> Self {
        assert!(mean_interarrival_ns > 0.0, "inter-arrival time must be positive");
        PoissonArrivals { mean_interarrival_ns, rng }
    }

    /// Arrivals tuned to offer `target_gbps` of load at `mean_size` bytes
    /// per request.
    pub fn for_throughput(target_gbps: f64, mean_size: f64, rng: Rng) -> Self {
        assert!(target_gbps > 0.0 && mean_size > 0.0);
        // requests/s = target bits/s / bits per request.
        let rate = target_gbps * 1e9 / (mean_size * 8.0);
        PoissonArrivals::new(1e9 / rate, rng)
    }

    /// Next inter-arrival gap in nanoseconds (≥ 1).
    pub fn next_gap(&mut self) -> u64 {
        (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1)
    }

    /// The configured mean inter-arrival time.
    pub fn mean_interarrival_ns(&self) -> f64 {
        self.mean_interarrival_ns
    }
}

/// Object-size distribution.
///
/// Drago et al. observe personal-cloud objects dominated by small files
/// with a heavy tail of multi-megabyte ones; we model that as a lognormal
/// body clamped to a block-aligned range (the clamp also keeps simulated
/// memory bounded).
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    /// Mean of the underlying normal (ln bytes).
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
    /// Smallest object (block-aligned).
    pub min: usize,
    /// Largest object (block-aligned).
    pub max: usize,
}

impl Default for SizeDistribution {
    fn default() -> Self {
        // Median ≈ e^11.8 ≈ 130 KiB; tail to 1 MiB (clamped).
        SizeDistribution { mu: 11.8, sigma: 1.1, min: 4096, max: 1 << 20 }
    }
}

impl SizeDistribution {
    /// Draws a block-aligned object size.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let raw = rng.gen_lognormal(self.mu, self.sigma);
        let clamped = raw.clamp(self.min as f64, self.max as f64) as usize;
        clamped.div_ceil(4096) * 4096
    }

    /// Analytic-ish mean of the *clamped, block-aligned* distribution,
    /// estimated by sampling (deterministic seed), for rate planning.
    pub fn mean_estimate(&self) -> f64 {
        let mut rng = Rng::new(0xD15C);
        let n = 20_000;
        (0..n).map(|_| self.sample(&mut rng)).sum::<usize>() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gap_mean_is_close() {
        let mut p = PoissonArrivals::new(10_000.0, Rng::new(1));
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.next_gap() as f64).sum::<f64>() / n as f64;
        assert!((mean - 10_000.0).abs() < 300.0, "{mean}");
    }

    #[test]
    fn throughput_tuning_matches_rate() {
        let p = PoissonArrivals::for_throughput(9.0, 128.0 * 1024.0, Rng::new(2));
        // 9 Gbps at 128 KiB/request ≈ 8583 req/s → ≈116.5 us gaps.
        assert!((p.mean_interarrival_ns() - 116_508.0).abs() < 1_000.0);
    }

    #[test]
    fn sizes_are_block_aligned_and_clamped() {
        let d = SizeDistribution::default();
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert_eq!(s % 4096, 0);
            assert!(s >= d.min && s <= d.max.div_ceil(4096) * 4096, "{s}");
        }
    }

    #[test]
    fn mean_estimate_is_stable_and_sane() {
        let d = SizeDistribution::default();
        let m = d.mean_estimate();
        assert!(m > 100_000.0 && m < 400_000.0, "{m}");
        assert_eq!(m, d.mean_estimate(), "deterministic");
    }

    #[test]
    fn poisson_gaps_are_exponential_not_just_right_on_average() {
        // An exponential distribution has CV = 1 and P(X < mean) = 1 - 1/e.
        // Catching either off guards against a generator that hits the
        // mean with the wrong shape (e.g. uniform or constant gaps).
        let mean = 25_000.0;
        let mut p = PoissonArrivals::new(mean, Rng::new(11));
        let n = 40_000;
        let gaps: Vec<f64> = (0..n).map(|_| p.next_gap() as f64).collect();
        let m = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.03, "coefficient of variation {cv}");
        let below = gaps.iter().filter(|&&g| g < mean).count() as f64 / n as f64;
        let expect = 1.0 - (-1.0f64).exp();
        assert!((below - expect).abs() < 0.01, "P(gap<mean) {below} vs {expect}");
    }

    #[test]
    fn size_sample_mean_matches_clamped_lognormal_analytics() {
        // For the unclamped lognormal, E[X] = exp(mu + sigma^2/2). Clamping
        // to [min, max] and block-rounding shifts that; bound the sampled
        // mean between the clamp floor's effect and the analytic mean, and
        // require run-to-run agreement under the same seed.
        let d = SizeDistribution::default();
        let unclamped_mean = (d.mu + d.sigma * d.sigma / 2.0).exp();
        let n = 40_000;
        let mut rng = Rng::new(12);
        let mean =
            (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        // The max clamp only cuts the mean; block alignment adds < 4 KiB.
        assert!(
            mean < unclamped_mean + 4096.0,
            "sampled {mean} above analytic unclamped {unclamped_mean}"
        );
        // The clamp cannot cut the Dropbox-like mix below half its
        // analytic mean (most mass is far from the 1 MiB cap).
        assert!(mean > unclamped_mean / 2.0, "sampled {mean} vs {unclamped_mean}");
        let mut rng2 = Rng::new(12);
        let mean2 =
            (0..n).map(|_| d.sample(&mut rng2) as f64).sum::<f64>() / n as f64;
        assert_eq!(mean, mean2, "same seed, same mean");
    }

    #[test]
    fn wider_sigma_fattens_the_tail() {
        let narrow = SizeDistribution { sigma: 0.4, ..SizeDistribution::default() };
        let wide = SizeDistribution { sigma: 1.4, ..SizeDistribution::default() };
        let count_max = |d: &SizeDistribution, seed| {
            let mut rng = Rng::new(seed);
            (0..20_000).filter(|_| d.sample(&mut rng) >= d.max).count()
        };
        assert!(count_max(&wide, 13) > 10 * count_max(&narrow, 13).max(1));
    }
}
