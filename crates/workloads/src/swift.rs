//! The Swift-like object-store workload (§V-C1).
//!
//! GET: the server reads the object off its SSD, MD5s it (integrity
//! header), and transmits; the client receives and verifies. PUT: the
//! client streams the object; the server receives, MD5s, and persists.
//! Request sizes follow the Dropbox-derived distribution; arrivals are
//! Poisson. The harness measures the *server* node's CPU-utilization
//! breakdown at the achieved throughput (Figure 12a) — GETs and PUTs are
//! tagged separately, GPU control/copy get their own tags.

use dcs_host::job::{D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::time;

use crate::gen::SizeDistribution;
use crate::report::WorkloadReport;
use crate::scenario::{
    start_scenario_with_app, DesignUnderTest, Request, ScenarioConfig, ScenarioOutcome, Testbed,
    TestbedConfig,
};

/// Swift workload parameters.
#[derive(Clone, Debug)]
pub struct SwiftConfig {
    /// Fraction of requests that are GETs (Dropbox-like traffic is
    /// download-heavy).
    pub get_fraction: f64,
    /// Object-size distribution.
    pub sizes: SizeDistribution,
    /// Offered load in Gbps (scaled until the target saturates, §V-C1).
    pub offered_gbps: f64,
    /// Run length.
    pub duration_ns: u64,
    /// Warm-up trimmed from measurements.
    pub warmup_ns: u64,
    /// Concurrent request slots.
    pub slots: usize,
    /// Testbed configuration.
    pub testbed: TestbedConfig,
}

impl Default for SwiftConfig {
    fn default() -> Self {
        SwiftConfig {
            get_fraction: 0.67,
            sizes: SizeDistribution::default(),
            offered_gbps: 8.5,
            duration_ns: time::ms(60),
            warmup_ns: time::ms(10),
            slots: 48,
            testbed: TestbedConfig::default(),
        }
    }
}

/// Runs Swift over `design` and returns the server-node report.
pub fn run_swift(design: DesignUnderTest, cfg: &SwiftConfig) -> WorkloadReport {
    let mut tb = Testbed::new(design, &cfg.testbed);
    // Let initialization settle before the load starts.
    tb.sim.run();

    let server = tb.server.clone();
    let client = tb.client.clone();
    let sizes = cfg.sizes.clone();
    let get_fraction = cfg.get_fraction;
    let mean_size = sizes.mean_estimate();
    let mean_interarrival_ns = mean_size * 8.0 / cfg.offered_gbps * 1.0; // bits / (Gbps) = ns

    // Object placement cursors (wrap within a 4 GiB window so flash
    // backing stays sparse).
    let mut get_lba = 0u64;
    let mut put_lba = 1 << 18; // distinct area
    let lba_window = (4u64 << 30) / 4096;

    let make = Box::new(
        move |rng: &mut dcs_sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
            let len = sizes.sample(rng);
            let blocks = (len / 4096) as u64;
            let is_get = rng.gen_bool(get_fraction);
            // Per-slot connection; GETs flow server→client, PUTs the
            // reverse. Distinct port pairs per direction and slot.
            let mut id = || {
                let i = *next_id;
                *next_id += 1;
                i
            };
            if is_get {
                let flow = TcpFlow::example(1, 2, 20_000 + slot as u16, 8_000 + slot as u16);
                let lba = get_lba;
                get_lba = (get_lba + blocks) % lba_window;
                let server_job = D2dJob {
                    id: id(),
                    ops: vec![
                        D2dOp::SsdRead { ssd: 0, lba, len },
                        D2dOp::Process {
                            function: NdpFunction::Md5,
                            aux: vec![],
                        },
                        D2dOp::NicSend { flow, seq: 0 },
                    ],
                    reply_to,
                    tag: "kernel-get",
                };
                // The client just consumes the object; etag verification
                // is optional in Swift and would double-count MD5 time.
                let client_job = D2dJob {
                    id: id(),
                    ops: vec![D2dOp::NicRecv {
                        flow: flow.reversed(),
                        len,
                    }],
                    reply_to,
                    tag: "client",
                };
                Request {
                    jobs: vec![
                        (client.submit_to, client_job),
                        (server.submit_to, server_job),
                    ],
                    bytes: len,
                    app_cost_ns: 80_000 + (len / 10) as u64,
                    app_tag: "app-get",
                }
            } else {
                let flow = TcpFlow::example(2, 1, 30_000 + slot as u16, 8_100 + slot as u16);
                let lba = put_lba;
                put_lba = (1 << 18) + ((put_lba + blocks) % lba_window);
                // Client uploads from its own storage; server receives,
                // verifies, persists.
                let client_job = D2dJob {
                    id: id(),
                    ops: vec![
                        D2dOp::SsdRead {
                            ssd: 0,
                            lba: lba % lba_window,
                            len,
                        },
                        D2dOp::NicSend { flow, seq: 0 },
                    ],
                    reply_to,
                    tag: "client",
                };
                let server_job = D2dJob {
                    id: id(),
                    ops: vec![
                        D2dOp::NicRecv {
                            flow: flow.reversed(),
                            len,
                        },
                        D2dOp::Process {
                            function: NdpFunction::Md5,
                            aux: vec![],
                        },
                        D2dOp::SsdWrite { ssd: 0, lba },
                    ],
                    reply_to,
                    tag: "kernel-put",
                };
                Request {
                    jobs: vec![
                        (server.submit_to, server_job),
                        (client.submit_to, client_job),
                    ],
                    bytes: len,
                    app_cost_ns: 80_000 + (len / 10) as u64,
                    app_tag: "app-put",
                }
            }
        },
    );

    let scenario = ScenarioConfig {
        duration_ns: cfg.duration_ns,
        warmup_ns: cfg.warmup_ns,
        mean_interarrival_ns,
        slots: cfg.slots,
    };
    start_scenario_with_app(
        &mut tb.sim,
        scenario,
        make,
        vec![(server.cpu_key.clone(), server.cores)],
        Some(server.cpu),
    );
    tb.sim.run();
    let outcome = tb.sim.world().expect::<ScenarioOutcome>();
    outcome.reports[&server.cpu_key].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SwiftConfig {
        SwiftConfig {
            duration_ns: time::ms(12),
            warmup_ns: time::ms(2),
            offered_gbps: 4.0,
            slots: 12,
            sizes: SizeDistribution {
                max: 256 * 1024,
                ..SizeDistribution::default()
            },
            ..SwiftConfig::default()
        }
    }

    #[test]
    fn swift_runs_on_swopt_and_moves_data() {
        let report = run_swift(DesignUnderTest::SwOpt, &quick_cfg());
        assert!(report.requests > 5, "{report:?}");
        assert!(report.throughput_gbps() > 0.5, "{report:?}");
        assert_eq!(report.failures, 0);
        assert!(report.cpu_utilization() > 0.0);
        assert!(report.cpu_for("kernel-get") > 0.0);
    }

    #[test]
    fn swift_runs_on_dcs_with_lower_cpu() {
        let sw = run_swift(DesignUnderTest::SwOpt, &quick_cfg());
        let dcs = run_swift(DesignUnderTest::DcsCtrl, &quick_cfg());
        assert!(dcs.requests > 5);
        assert_eq!(dcs.failures, 0);
        // The headline claim, in miniature: at comparable offered load the
        // DCS server burns much less CPU.
        let sw_norm = sw.cpu_utilization() / sw.throughput_gbps();
        let dcs_norm = dcs.cpu_utilization() / dcs.throughput_gbps();
        assert!(
            dcs_norm < sw_norm * 0.7,
            "CPU/Gbps must drop ≥30%: sw {sw_norm:.4} dcs {dcs_norm:.4}"
        );
        // And the GPU tags vanish.
        assert_eq!(dcs.cpu_for("gpu-control"), 0.0);
    }
}
