//! The HDFS-balancer workload (§V-C2).
//!
//! "HDFS balancer distributes skewed data across nodes … a sender reads
//! data from an NVMe SSD and sends it to a receiver without the integrity
//! check. On the opposite side, the receiver receives the data and
//! computes a CRC32 checksum … After the receiver checks the checksum, it
//! stores the data into an NVMe SSD."
//!
//! Both node's CPU breakdowns are reported (Figure 12b shows sender and
//! receiver).

use dcs_host::job::{D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::time;

use crate::report::WorkloadReport;
use crate::scenario::{
    start_scenario_with_app, DesignUnderTest, Request, ScenarioConfig, ScenarioOutcome, Testbed,
    TestbedConfig,
};

/// HDFS balancer parameters.
#[derive(Clone, Debug)]
pub struct HdfsConfig {
    /// Transfer unit (a balancer moves data block by block; 1 MiB keeps
    /// event counts tractable while well past the LSO size).
    pub block_size: usize,
    /// Offered load in Gbps.
    pub offered_gbps: f64,
    /// Run length.
    pub duration_ns: u64,
    /// Warm-up trimmed from measurements.
    pub warmup_ns: u64,
    /// Concurrent block transfers (the balancer's mover threads).
    pub slots: usize,
    /// Testbed configuration.
    pub testbed: TestbedConfig,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: 1 << 20,
            offered_gbps: 8.5,
            duration_ns: time::ms(60),
            warmup_ns: time::ms(10),
            slots: 16,
            testbed: TestbedConfig::default(),
        }
    }
}

/// Runs the balancer over `design`; returns `(sender, receiver)` reports.
pub fn run_hdfs(design: DesignUnderTest, cfg: &HdfsConfig) -> (WorkloadReport, WorkloadReport) {
    let mut tb = Testbed::new(design, &cfg.testbed);
    tb.sim.run();

    let sender = tb.server.clone();
    let receiver = tb.client.clone();
    let block = cfg.block_size;
    let mean_interarrival_ns = block as f64 * 8.0 / cfg.offered_gbps;

    let mut src_lba = 0u64;
    let mut dst_lba = 0u64;
    let lba_window = (8u64 << 30) / 4096;
    let blocks = (block / 4096) as u64;

    let make = Box::new(
        move |_rng: &mut dcs_sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
            let mut id = || {
                let i = *next_id;
                *next_id += 1;
                i
            };
            let flow = TcpFlow::example(1, 2, 42_000 + slot as u16, 8_020 + slot as u16);
            let lba = src_lba;
            src_lba = (src_lba + blocks) % lba_window;
            let to = dst_lba;
            dst_lba = (dst_lba + blocks) % lba_window;
            // Sender: plain read + send, no integrity work.
            let send_job = D2dJob {
                id: id(),
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba,
                        len: block,
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                reply_to,
                tag: "kernel-send",
            };
            // Receiver: gather + CRC32 + store.
            let recv_job = D2dJob {
                id: id(),
                ops: vec![
                    D2dOp::NicRecv {
                        flow: flow.reversed(),
                        len: block,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Crc32,
                        aux: vec![],
                    },
                    D2dOp::SsdWrite { ssd: 0, lba: to },
                ],
                reply_to,
                tag: "kernel-recv",
            };
            Request {
                jobs: vec![(receiver.submit_to, recv_job), (sender.submit_to, send_job)],
                bytes: block,
                app_cost_ns: 30_000 + (block / 40) as u64,
                app_tag: "app",
            }
        },
    );

    let scenario = ScenarioConfig {
        duration_ns: cfg.duration_ns,
        warmup_ns: cfg.warmup_ns,
        mean_interarrival_ns,
        slots: cfg.slots,
    };
    let sender_key = tb.server.cpu_key.clone();
    let receiver_key = tb.client.cpu_key.clone();
    start_scenario_with_app(
        &mut tb.sim,
        scenario,
        make,
        vec![
            (sender_key.clone(), tb.server.cores),
            (receiver_key.clone(), tb.client.cores),
        ],
        Some(tb.server.cpu),
    );
    tb.sim.run();
    let outcome = tb.sim.world().expect::<ScenarioOutcome>();
    (
        outcome.reports[&sender_key].clone(),
        outcome.reports[&receiver_key].clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HdfsConfig {
        HdfsConfig {
            duration_ns: time::ms(12),
            warmup_ns: time::ms(2),
            offered_gbps: 5.0,
            block_size: 512 * 1024,
            slots: 8,
            ..HdfsConfig::default()
        }
    }

    #[test]
    fn hdfs_runs_on_swopt() {
        let (snd, rcv) = run_hdfs(DesignUnderTest::SwOpt, &quick_cfg());
        assert!(snd.requests > 5, "{snd:?}");
        assert_eq!(snd.failures, 0);
        assert!(snd.throughput_gbps() > 0.5);
        // The receiver pays the gather + CRC costs; its CPU exceeds the
        // sender's.
        assert!(
            rcv.cpu_utilization() > snd.cpu_utilization(),
            "{rcv:?} vs {snd:?}"
        );
    }

    #[test]
    fn hdfs_on_dcs_cuts_receiver_cpu() {
        let (_, rcv_sw) = run_hdfs(DesignUnderTest::SwOpt, &quick_cfg());
        let (_, rcv_dcs) = run_hdfs(DesignUnderTest::DcsCtrl, &quick_cfg());
        assert_eq!(rcv_dcs.failures, 0);
        let sw_norm = rcv_sw.cpu_utilization() / rcv_sw.throughput_gbps();
        let dcs_norm = rcv_dcs.cpu_utilization() / rcv_dcs.throughput_gbps();
        assert!(
            dcs_norm < sw_norm * 0.5,
            "receiver CPU/Gbps must drop sharply: sw {sw_norm:.4} dcs {dcs_norm:.4}"
        );
    }
}
