//! The YCSB-style core workload suite (A–F) for the object-store layer.
//!
//! Each workload is an operation mix over a keyspace whose popularity is
//! drawn from the [`Zipfian`] generator, matching the shapes of the Yahoo!
//! Cloud Serving Benchmark's core suite:
//!
//! | Workload | Mix | Popularity |
//! |---|---|---|
//! | A | 50% read / 50% update | zipfian |
//! | B | 95% read / 5% update | zipfian |
//! | C | 100% read | zipfian |
//! | D | 95% read / 5% insert | latest (newest keys hottest) |
//! | E | 95% scan / 5% insert | zipfian start, short uniform range |
//! | F | 50% read / 50% read-modify-write | zipfian |
//!
//! The generator emits abstract [`StoreOp`]s — kind + key (+ scan length)
//! — which the store layer maps onto tenant keyspaces and real device
//! jobs. Keys here are *ranks into the live keyspace*; the store layer
//! scatters them with a hash so neighboring ranks do not shard together.
//! Everything is driven by the deterministic [`Rng`], so a seed fixes the
//! whole operation stream.

use dcs_sim::Rng;

use crate::gen::Zipfian;

/// The six core workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbWorkload {
    /// Update heavy: 50/50 read/update, zipfian.
    A,
    /// Read mostly: 95/5 read/update, zipfian.
    B,
    /// Read only, zipfian.
    C,
    /// Read latest: 95/5 read/insert, newest keys hottest.
    D,
    /// Short ranges: 95/5 scan/insert.
    E,
    /// Read-modify-write: 50/50 read/RMW, zipfian.
    F,
}

impl YcsbWorkload {
    /// All workloads in suite order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// One-letter name.
    pub fn letter(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// Descriptive label matching the YCSB paper.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A (update heavy)",
            YcsbWorkload::B => "B (read mostly)",
            YcsbWorkload::C => "C (read only)",
            YcsbWorkload::D => "D (read latest)",
            YcsbWorkload::E => "E (short ranges)",
            YcsbWorkload::F => "F (read-modify-write)",
        }
    }

    /// The operation mix (fractions sum to 1).
    pub fn mix(self) -> OpMix {
        match self {
            YcsbWorkload::A => OpMix {
                read: 0.5,
                update: 0.5,
                ..OpMix::ZERO
            },
            YcsbWorkload::B => OpMix {
                read: 0.95,
                update: 0.05,
                ..OpMix::ZERO
            },
            YcsbWorkload::C => OpMix {
                read: 1.0,
                ..OpMix::ZERO
            },
            YcsbWorkload::D => OpMix {
                read: 0.95,
                insert: 0.05,
                ..OpMix::ZERO
            },
            YcsbWorkload::E => OpMix {
                scan: 0.95,
                insert: 0.05,
                ..OpMix::ZERO
            },
            YcsbWorkload::F => OpMix {
                read: 0.5,
                rmw: 0.5,
                ..OpMix::ZERO
            },
        }
    }

    /// Whether reads favor the most recently inserted keys (workload D).
    pub fn read_latest(self) -> bool {
        matches!(self, YcsbWorkload::D)
    }
}

impl std::fmt::Display for YcsbWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.letter())
    }
}

/// Fractions of each operation kind; whatever the named fields leave
/// uncovered falls through to `read`.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Point GETs.
    pub read: f64,
    /// Overwrites of existing keys.
    pub update: f64,
    /// Appends of new keys (grow the keyspace).
    pub insert: f64,
    /// Range scans.
    pub scan: f64,
    /// Read-modify-write cycles.
    pub rmw: f64,
    /// Deletes (not part of core YCSB; tenant specs use it to exercise
    /// the DELETE verb).
    pub delete: f64,
}

impl OpMix {
    /// The all-zero mix, for struct-update construction.
    pub const ZERO: OpMix = OpMix {
        read: 0.0,
        update: 0.0,
        insert: 0.0,
        scan: 0.0,
        rmw: 0.0,
        delete: 0.0,
    };

    /// Sum of all fractions.
    pub fn total(&self) -> f64 {
        self.read + self.update + self.insert + self.scan + self.rmw + self.delete
    }
}

/// One abstract store operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreOp {
    /// What to do.
    pub kind: StoreOpKind,
    /// Target key (rank into the live keyspace; scan start for scans).
    pub key: u64,
}

/// The operation kinds the store API serves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOpKind {
    /// Point read.
    Get,
    /// Overwrite an existing key.
    Put,
    /// Write a new key (the generator grew the keyspace for it).
    Insert,
    /// Range scan over `keys` consecutive keys starting at `key`.
    Scan {
        /// Number of keys covered.
        keys: u64,
    },
    /// Read the key, then write it back.
    ReadModifyWrite,
    /// Remove the key (tombstone write).
    Delete,
}

impl StoreOpKind {
    /// Whether the op writes (bumps the key's version and invalidates
    /// caches).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            StoreOpKind::Put
                | StoreOpKind::Insert
                | StoreOpKind::ReadModifyWrite
                | StoreOpKind::Delete
        )
    }

    /// Short label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            StoreOpKind::Get => "get",
            StoreOpKind::Put => "put",
            StoreOpKind::Insert => "insert",
            StoreOpKind::Scan { .. } => "scan",
            StoreOpKind::ReadModifyWrite => "rmw",
            StoreOpKind::Delete => "delete",
        }
    }
}

/// Draws a workload's operation stream over a growing keyspace.
#[derive(Clone, Debug)]
pub struct YcsbGenerator {
    mix: OpMix,
    read_latest: bool,
    zipf: Zipfian,
    keys: u64,
    max_scan: u64,
}

impl YcsbGenerator {
    /// Default longest scan, in keys (YCSB E uses short ranges).
    pub const DEFAULT_MAX_SCAN: u64 = 16;

    /// A generator for `workload` over `initial_keys` keys at skew
    /// `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_keys` is zero (via [`Zipfian::new`]).
    pub fn new(workload: YcsbWorkload, initial_keys: u64, theta: f64) -> YcsbGenerator {
        YcsbGenerator::with_mix(workload.mix(), workload.read_latest(), initial_keys, theta)
    }

    /// A generator with an explicit mix (tenant specs compose their own).
    pub fn with_mix(mix: OpMix, read_latest: bool, initial_keys: u64, theta: f64) -> YcsbGenerator {
        assert!(mix.total() <= 1.0 + 1e-9, "op mix exceeds 1");
        YcsbGenerator {
            mix,
            read_latest,
            zipf: Zipfian::new(initial_keys, theta),
            keys: initial_keys,
            max_scan: Self::DEFAULT_MAX_SCAN,
        }
    }

    /// Current keyspace size (grows on inserts).
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Draws a popular key. Under read-latest the hottest rank is the
    /// newest key; otherwise rank order is popularity order directly.
    fn popular_key(&self, rng: &mut Rng) -> u64 {
        let rank = self.zipf.sample(rng).min(self.keys - 1);
        if self.read_latest {
            self.keys - 1 - rank
        } else {
            rank
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self, rng: &mut Rng) -> StoreOp {
        let draw = rng.gen_f64();
        let m = self.mix;
        let mut edge = m.update;
        if draw < edge {
            return StoreOp {
                kind: StoreOpKind::Put,
                key: self.popular_key(rng),
            };
        }
        edge += m.insert;
        if draw < edge {
            let key = self.keys;
            self.keys += 1;
            return StoreOp {
                kind: StoreOpKind::Insert,
                key,
            };
        }
        edge += m.scan;
        if draw < edge {
            let start = self.popular_key(rng);
            let keys = 1 + rng.gen_range(0..self.max_scan);
            return StoreOp {
                kind: StoreOpKind::Scan { keys },
                key: start,
            };
        }
        edge += m.rmw;
        if draw < edge {
            return StoreOp {
                kind: StoreOpKind::ReadModifyWrite,
                key: self.popular_key(rng),
            };
        }
        edge += m.delete;
        if draw < edge {
            return StoreOp {
                kind: StoreOpKind::Delete,
                key: self.popular_key(rng),
            };
        }
        StoreOp {
            kind: StoreOpKind::Get,
            key: self.popular_key(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for w in YcsbWorkload::ALL {
            assert!((w.mix().total() - 1.0).abs() < 1e-9, "workload {w}");
        }
    }

    #[test]
    fn labels_cover_all_workloads() {
        let letters: Vec<_> = YcsbWorkload::ALL.iter().map(|w| w.letter()).collect();
        assert_eq!(letters, ["A", "B", "C", "D", "E", "F"]);
        assert!(YcsbWorkload::D.read_latest());
        assert!(!YcsbWorkload::A.read_latest());
    }

    #[test]
    fn op_stream_is_deterministic() {
        let draw = |seed| {
            let mut g = YcsbGenerator::new(YcsbWorkload::A, 1000, 0.99);
            let mut rng = Rng::new(seed);
            (0..2_000)
                .map(|_| g.next_op(&mut rng))
                .collect::<Vec<StoreOp>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn workload_a_mixes_reads_and_updates_evenly() {
        let mut g = YcsbGenerator::new(YcsbWorkload::A, 1000, 0.99);
        let mut rng = Rng::new(1);
        let n = 20_000;
        let writes = (0..n)
            .filter(|_| matches!(g.next_op(&mut rng).kind, StoreOpKind::Put))
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "update fraction {frac}");
    }

    #[test]
    fn workload_d_inserts_grow_keyspace_and_reads_favor_latest() {
        let mut g = YcsbGenerator::new(YcsbWorkload::D, 1000, 0.99);
        let mut rng = Rng::new(2);
        let mut latest_reads = 0u64;
        let mut reads = 0u64;
        for _ in 0..20_000 {
            let op = g.next_op(&mut rng);
            if op.kind == StoreOpKind::Get {
                reads += 1;
                // "Latest" = within the newest 5% of the live keyspace.
                if op.key >= g.keys() - g.keys() / 20 {
                    latest_reads += 1;
                }
            }
        }
        assert!(
            g.keys() > 1000,
            "inserts must grow the keyspace: {}",
            g.keys()
        );
        let share = latest_reads as f64 / reads as f64;
        assert!(share > 0.5, "read-latest share {share}");
    }

    #[test]
    fn workload_e_scans_are_short_and_bounded() {
        let mut g = YcsbGenerator::new(YcsbWorkload::E, 1000, 0.99);
        let mut rng = Rng::new(3);
        let mut scans = 0u64;
        for _ in 0..5_000 {
            let op = g.next_op(&mut rng);
            if let StoreOpKind::Scan { keys } = op.kind {
                scans += 1;
                assert!(
                    (1..=YcsbGenerator::DEFAULT_MAX_SCAN).contains(&keys),
                    "scan length {keys}"
                );
            }
        }
        assert!(scans > 4_000, "E is scan-heavy: {scans}");
    }

    #[test]
    fn custom_mix_exercises_delete() {
        let mix = OpMix {
            read: 0.8,
            delete: 0.2,
            ..OpMix::ZERO
        };
        let mut g = YcsbGenerator::with_mix(mix, false, 500, 0.9);
        let mut rng = Rng::new(4);
        let deletes = (0..10_000)
            .filter(|_| matches!(g.next_op(&mut rng).kind, StoreOpKind::Delete))
            .count();
        let frac = deletes as f64 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.02, "delete fraction {frac}");
        assert!(StoreOpKind::Delete.is_write());
        assert!(!StoreOpKind::Get.is_write());
        assert_eq!(StoreOpKind::Scan { keys: 3 }.label(), "scan");
    }
}
