//! The Figure 13 scalability projection.
//!
//! §V-C3: "We measure the throughput and CPU utilization using a 10 Gbps
//! NIC … and calculate the required number of cores based on the measured
//! result. For the estimation, we assume a 40-Gbps NIC, six NVMe SSDs,
//! and a single 6-core Intel Xeon CPU."
//!
//! The projection is linear in throughput (CPU work per byte is constant
//! for a fixed design), capped by the core budget: a design that needs
//! more than the budget at 40 Gbps tops out at the throughput the budget
//! affords.

/// A measured operating point to project from.
#[derive(Clone, Copy, Debug)]
pub struct ProjectionInput {
    /// Measured throughput, Gbps.
    pub measured_gbps: f64,
    /// Measured CPU utilization as a fraction of `cores`.
    pub measured_util: f64,
    /// Cores in the measured system.
    pub cores: usize,
}

/// One point on the projected curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionPoint {
    /// Target throughput, Gbps.
    pub gbps: f64,
    /// Cores required to sustain it.
    pub cores_required: f64,
}

/// The projected curve plus the budget-capped maximum.
#[derive(Clone, Debug)]
pub struct ProjectionResult {
    /// Cores-vs-throughput series up to the target NIC rate.
    pub curve: Vec<ProjectionPoint>,
    /// Cores needed at the full target rate.
    pub cores_at_target: f64,
    /// Maximum throughput achievable within the core budget (≤ target).
    pub max_gbps_within_budget: f64,
}

/// Projects a measured point onto `(target_gbps, core_budget)` hardware.
///
/// # Panics
///
/// Panics if the measured throughput or utilization is not positive.
pub fn project(input: ProjectionInput, target_gbps: f64, core_budget: f64) -> ProjectionResult {
    assert!(
        input.measured_gbps > 0.0,
        "measured throughput must be positive"
    );
    assert!(
        input.measured_util > 0.0,
        "measured utilization must be positive"
    );
    // Cores of work per Gbps is the design's fingerprint.
    let cores_per_gbps = input.measured_util * input.cores as f64 / input.measured_gbps;
    let steps = 16;
    let curve = (1..=steps)
        .map(|i| {
            let gbps = target_gbps * i as f64 / steps as f64;
            ProjectionPoint {
                gbps,
                cores_required: cores_per_gbps * gbps,
            }
        })
        .collect();
    let cores_at_target = cores_per_gbps * target_gbps;
    let max_gbps_within_budget = (core_budget / cores_per_gbps).min(target_gbps);
    ProjectionResult {
        curve,
        cores_at_target,
        max_gbps_within_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_projection_and_cap() {
        // 50% of 6 cores at 9 Gbps → 3 cores per 9 Gbps → 13.3 at 40.
        let input = ProjectionInput {
            measured_gbps: 9.0,
            measured_util: 0.5,
            cores: 6,
        };
        let r = project(input, 40.0, 6.0);
        assert!((r.cores_at_target - 40.0 / 3.0).abs() < 1e-9);
        // Budget-capped: 6 cores / (1/3 core per Gbps) = 18 Gbps.
        assert!((r.max_gbps_within_budget - 18.0).abs() < 1e-9);
        assert_eq!(r.curve.len(), 16);
        assert!((r.curve[15].gbps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn cheap_design_reaches_the_target() {
        // 10% of 6 cores at 9 Gbps → 0.6/9 cores per Gbps → 2.67 at 40.
        let input = ProjectionInput {
            measured_gbps: 9.0,
            measured_util: 0.1,
            cores: 6,
        };
        let r = project(input, 40.0, 6.0);
        assert!(r.cores_at_target < 3.0);
        assert!(
            (r.max_gbps_within_budget - 40.0).abs() < 1e-9,
            "hits the NIC limit"
        );
    }

    #[test]
    fn throughput_ratio_between_designs() {
        // The paper's 1.95x style comparison: capped throughputs ratio.
        let sw = project(
            ProjectionInput {
                measured_gbps: 9.0,
                measured_util: 0.55,
                cores: 6,
            },
            40.0,
            6.0,
        );
        let dcs = project(
            ProjectionInput {
                measured_gbps: 9.0,
                measured_util: 0.22,
                cores: 6,
            },
            40.0,
            6.0,
        );
        let ratio = dcs.max_gbps_within_budget / sw.max_gbps_within_budget;
        assert!(ratio > 1.5 && ratio < 2.6, "{ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_measurement_rejected() {
        project(
            ProjectionInput {
                measured_gbps: 0.0,
                measured_util: 0.5,
                cores: 6,
            },
            40.0,
            6.0,
        );
    }
}
