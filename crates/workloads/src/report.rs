//! Workload measurement results.

use std::collections::BTreeMap;

/// What a workload run measured on the server node.
#[derive(Clone, Debug, Default)]
pub struct WorkloadReport {
    /// Measured span (after warm-up), ns.
    pub span_ns: u64,
    /// Requests completed within the span.
    pub requests: u64,
    /// Payload bytes moved within the span.
    pub bytes: u64,
    /// Server-node CPU utilization (fraction of all cores) by tag.
    pub cpu_breakdown: BTreeMap<String, f64>,
    /// Requests that failed.
    pub failures: u64,
}

impl WorkloadReport {
    /// Achieved payload throughput in Gbps.
    pub fn throughput_gbps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.span_ns as f64
    }

    /// Total CPU utilization across tags (fraction of all cores).
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu_breakdown.values().sum()
    }

    /// Utilization for one tag (zero if absent).
    pub fn cpu_for(&self, tag: &str) -> f64 {
        self.cpu_breakdown.get(tag).copied().unwrap_or(0.0)
    }

    /// Renders a table row block for the harness output.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "{label}: {:.2} Gbps, {} requests, CPU {:.1}%\n",
            self.throughput_gbps(),
            self.requests,
            self.cpu_utilization() * 100.0
        );
        for (tag, util) in &self.cpu_breakdown {
            out.push_str(&format!("    {tag:<14} {:5.1}%\n", util * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_totals() {
        let mut r = WorkloadReport {
            span_ns: 1_000_000_000,
            requests: 10,
            bytes: 1_250_000_000, // 10 Gb in 1 s
            ..Default::default()
        };
        r.cpu_breakdown.insert("kernel-get".into(), 0.25);
        r.cpu_breakdown.insert("gpu-control".into(), 0.05);
        assert!((r.throughput_gbps() - 10.0).abs() < 1e-9);
        assert!((r.cpu_utilization() - 0.30).abs() < 1e-12);
        assert!((r.cpu_for("kernel-get") - 0.25).abs() < 1e-12);
        assert_eq!(r.cpu_for("absent"), 0.0);
        let text = r.render("test");
        assert!(text.contains("10.00 Gbps"));
        assert!(text.contains("kernel-get"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = WorkloadReport::default();
        assert_eq!(r.throughput_gbps(), 0.0);
        assert_eq!(r.cpu_utilization(), 0.0);
    }
}
