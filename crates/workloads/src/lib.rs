//! # dcs-workloads — the scale-out storage workloads of §V-C
//!
//! The paper evaluates DCS-ctrl on two real applications:
//!
//! * **OpenStack Swift** (§V-C1): an object store whose PUT/GET requests
//!   carry an MD5 integrity check. Requests follow a Poisson arrival
//!   process; object sizes follow the Dropbox-derived distribution of
//!   Drago et al. \[42\].
//! * **HDFS balancer** (§V-C2): a sender streams blocks off its SSD to a
//!   receiver, which CRC32-checks and stores them.
//!
//! Both run unchanged over every design — baseline executors
//! ([`dcs_host::SwExecutor`]) or the HDC Driver ([`dcs_core::HdcDriver`])
//! — because all of them accept [`D2dJob`](dcs_host::D2dJob)s. The
//! measurement harness reports throughput and CPU-utilization breakdowns
//! (Figure 12) and projects them onto faster hardware (Figure 13).

pub mod gen;
pub mod hdfs;
pub mod projection;
pub mod report;
pub mod scenario;
pub mod swift;
pub mod ycsb;

pub use gen::{PoissonArrivals, SizeDistribution, Zipfian};
pub use hdfs::{run_hdfs, HdfsConfig};
pub use projection::{project, ProjectionInput, ProjectionPoint, ProjectionResult};
pub use report::WorkloadReport;
pub use scenario::{build_testbed_nodes, DesignUnderTest, NodeRef, Testbed, TestbedConfig};
pub use swift::{run_swift, SwiftConfig};
pub use ycsb::{OpMix, StoreOp, StoreOpKind, YcsbGenerator, YcsbWorkload};
