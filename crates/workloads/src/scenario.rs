//! The design-agnostic testbed and scenario driver.
//!
//! [`Testbed`] builds the paper's two-node setup for any design under
//! test; [`ScenarioDriver`] generates requests (Poisson arrivals), keeps a
//! bounded number in flight on dedicated connection slots, and measures
//! throughput and CPU utilization over a warm-up-trimmed window.

use std::collections::{BTreeMap, VecDeque};

use dcs_core::{build_dcs_pair, DcsNodeBuilder};
use dcs_host::cpu::{CpuJob, CpuJobDone, CpuStats};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_host::{build_pair, HostNodeBuilder, SwDesign};
use dcs_nic::WireConfig;
use dcs_nvme::{NvmeConfig, NvmeHandle};
use dcs_sim::{Component, ComponentId, Ctx, FaultPlan, Msg, Rng, SimTime, Simulator};

use crate::report::WorkloadReport;

/// The designs a workload can run over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DesignUnderTest {
    /// Vanilla kernel baseline.
    Linux,
    /// Optimized software baseline.
    SwOpt,
    /// Optimized software + P2P data paths.
    SwP2p,
    /// The HDC Engine.
    DcsCtrl,
}

impl DesignUnderTest {
    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            DesignUnderTest::Linux => "Linux",
            DesignUnderTest::SwOpt => "SW opt",
            DesignUnderTest::SwP2p => "SW-ctrl P2P",
            DesignUnderTest::DcsCtrl => "DCS-ctrl",
        }
    }

    /// The designs Figure 12/13 compare.
    pub const FIG12: [DesignUnderTest; 3] = [
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ];
}

impl std::fmt::Display for DesignUnderTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One node of the testbed, as workloads see it.
#[derive(Debug, Clone)]
pub struct NodeRef {
    /// Where D2D jobs are submitted (executor or HDC driver).
    pub submit_to: ComponentId,
    /// The node's CPU pool (for application-level CPU charges).
    pub cpu: ComponentId,
    /// CPU-stats pool key.
    pub cpu_key: String,
    /// Core count.
    pub cores: usize,
    /// The node's SSDs.
    pub ssds: Vec<NvmeHandle>,
}

/// A built two-node testbed.
pub struct Testbed {
    /// The simulator (run it!).
    pub sim: Simulator,
    /// The measured storage-server node.
    pub server: NodeRef,
    /// The client/peer node.
    pub client: NodeRef,
    /// The design that was built.
    pub design: DesignUnderTest,
    /// Lazily created completion-collector component (job harness).
    harness: Option<ComponentId>,
    next_job_id: u64,
}

/// Completions collected by the testbed's job harness, in delivery order.
#[derive(Default, Debug)]
pub struct JobInbox(pub Vec<D2dDone>);

#[derive(Debug)]
struct SubmitJob {
    to: ComponentId,
    job: D2dJob,
}

/// Collector component behind [`Testbed::run_one_job`]: forwards queued
/// submissions and records every completion in the world's [`JobInbox`].
struct JobApp;

impl Component for JobApp {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<SubmitJob>() {
            Ok(SubmitJob { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("completions");
        if ctx.world().get::<JobInbox>().is_none() {
            ctx.world().insert(JobInbox::default());
        }
        ctx.world().expect_mut::<JobInbox>().0.push(done);
    }
}

/// Device configuration shared by testbeds.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// SSDs per node.
    pub ssds_per_node: usize,
    /// Wire between the nodes.
    pub wire: WireConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            ssds_per_node: 1,
            wire: WireConfig::default(),
            seed: 7,
        }
    }
}

/// Builds one server/client node pair for `design` into an existing
/// simulator, under caller-chosen node names (which key the CPU-stats
/// pools, so they must be unique within the simulation). This is the
/// building block behind [`Testbed::new`] and the multi-node clusters of
/// `dcs-cluster`, which instantiate many pairs in one deterministic world.
pub fn build_testbed_nodes(
    sim: &mut Simulator,
    design: DesignUnderTest,
    cfg: &TestbedConfig,
    server_name: &str,
    client_name: &str,
) -> (NodeRef, NodeRef) {
    let ssds = vec![NvmeConfig::default(); cfg.ssds_per_node];
    match design {
        DesignUnderTest::DcsCtrl => {
            let mut a = DcsNodeBuilder::new(server_name);
            a.ssds = ssds.clone();
            let mut b = DcsNodeBuilder::new(client_name);
            b.ssds = ssds;
            let (na, nb) = build_dcs_pair(sim, &a, &b, cfg.wire.clone());
            let server = NodeRef {
                submit_to: na.driver,
                cpu: na.cpu,
                cpu_key: na.name.clone(),
                cores: na.cores,
                ssds: na.ssds.clone(),
            };
            let client = NodeRef {
                submit_to: nb.driver,
                cpu: nb.cpu,
                cpu_key: nb.name.clone(),
                cores: nb.cores,
                ssds: nb.ssds.clone(),
            };
            (server, client)
        }
        other => {
            let sw = match other {
                DesignUnderTest::Linux => SwDesign::Linux,
                DesignUnderTest::SwOpt => SwDesign::SwOpt,
                DesignUnderTest::SwP2p => SwDesign::SwP2p,
                DesignUnderTest::DcsCtrl => unreachable!(),
            };
            let mut a = HostNodeBuilder::new(server_name, sw);
            a.ssds = ssds.clone();
            let mut b = HostNodeBuilder::new(client_name, sw);
            b.ssds = ssds;
            let (na, nb) = build_pair(sim, &a, &b, cfg.wire.clone());
            let server = NodeRef {
                submit_to: na.executor,
                cpu: na.cpu,
                cpu_key: na.name.clone(),
                cores: na.cores,
                ssds: na.ssds.clone(),
            };
            let client = NodeRef {
                submit_to: nb.executor,
                cpu: nb.cpu,
                cpu_key: nb.name.clone(),
                cores: nb.cores,
                ssds: nb.ssds.clone(),
            };
            (server, client)
        }
    }
}

impl Testbed {
    /// Builds the two-node testbed for `design`.
    pub fn new(design: DesignUnderTest, cfg: &TestbedConfig) -> Testbed {
        let mut sim = Simulator::new(cfg.seed);
        let (server, client) = build_testbed_nodes(&mut sim, design, cfg, "server", "client");
        Testbed {
            sim,
            server,
            client,
            design,
            harness: None,
            next_job_id: 1,
        }
    }

    /// Installs a [`FaultPlan`] built from an RNG forked off the world's
    /// master RNG: the same testbed seed reproduces the same fault
    /// sequence. Call before submitting work.
    pub fn install_faults(&mut self, build: impl FnOnce(Rng) -> FaultPlan) {
        let rng = self.sim.world_mut().rng.fork();
        let plan = build(rng);
        self.sim.world_mut().insert(plan);
    }

    fn app(&mut self) -> ComponentId {
        if let Some(a) = self.harness {
            return a;
        }
        let a = self.sim.add("testbed-app", JobApp);
        self.harness = Some(a);
        a
    }

    /// Submits one job to the server node, runs the simulation to idle,
    /// and returns its completion. The single-job harness shared by the
    /// fault-injection and chaos integration tests.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails to drain or the job does not
    /// complete exactly once.
    pub fn run_one_job(&mut self, ops: Vec<D2dOp>) -> D2dDone {
        let to = self.server.submit_to;
        let mut done = self.run_job_batch(vec![(to, ops, "job")]);
        assert_eq!(done.len(), 1, "{}: exactly one completion", self.design);
        done.pop().expect("checked")
    }

    /// Submits a batch of `(submit_to, ops, tag)` jobs at once (ids are
    /// assigned sequentially in batch order from the testbed's counter),
    /// runs the simulation to idle, and returns the completions in
    /// delivery order, asserting exactly one completion per job.
    pub fn run_job_batch(
        &mut self,
        jobs: Vec<(ComponentId, Vec<D2dOp>, &'static str)>,
    ) -> Vec<D2dDone> {
        let app = self.app();
        // Settle device bring-up (queue attach, ring config) first.
        self.sim.run();
        let mut ids = Vec::with_capacity(jobs.len());
        for (to, ops, tag) in jobs {
            let id = self.next_job_id;
            self.next_job_id += 1;
            ids.push(id);
            let job = D2dJob {
                id,
                ops,
                reply_to: app,
                tag,
            };
            self.sim.kickoff(app, SubmitJob { to, job });
        }
        self.sim.run();
        assert!(self.sim.is_idle(), "{}: simulation must drain", self.design);
        let inbox = self.sim.world_mut().expect_mut::<JobInbox>();
        let done = std::mem::take(&mut inbox.0);
        for &id in &ids {
            assert_eq!(
                done.iter().filter(|d| d.id == id).count(),
                1,
                "{}: job {id} must complete exactly once",
                self.design
            );
        }
        assert_eq!(
            done.len(),
            ids.len(),
            "{}: no stray completions",
            self.design
        );
        done
    }
}

/// One generated request: jobs to co-submit plus the payload size
/// attributed to it.
pub struct Request {
    /// `(submit_to, job)` pairs; all must complete to finish the request.
    pub jobs: Vec<(ComponentId, D2dJob)>,
    /// Payload bytes this request moves.
    pub bytes: usize,
    /// Application-level CPU work on the server for this request
    /// (request parsing, HTTP handling — identical across designs).
    pub app_cost_ns: u64,
    /// Utilization tag for the application charge.
    pub app_tag: &'static str,
}

/// Builds a request for connection slot `slot`; draws ids from
/// `next_job_id`.
pub type MakeRequest = Box<dyn FnMut(&mut Rng, usize, ComponentId, &mut u64) -> Request>;

/// Scenario timing parameters.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Total run length.
    pub duration_ns: u64,
    /// Measurement starts after this much warm-up.
    pub warmup_ns: u64,
    /// Mean inter-arrival time.
    pub mean_interarrival_ns: f64,
    /// Concurrent requests / connection slots.
    pub slots: usize,
}

/// The measured outcome, stored in the world when the run window closes.
#[derive(Debug, Default)]
pub struct ScenarioOutcome {
    /// Per-node reports keyed by CPU pool name.
    pub reports: BTreeMap<String, WorkloadReport>,
}

/// Internal events.
#[derive(Debug)]
struct Start;
#[derive(Debug)]
struct Arrival;
#[derive(Debug)]
struct WarmupOver;
#[derive(Debug)]
struct WindowOver;

struct InFlight {
    slot: usize,
    pending_jobs: usize,
    bytes: usize,
    failed: bool,
}

/// The generic scenario driver component.
pub struct ScenarioDriver {
    cfg: ScenarioConfig,
    make: MakeRequest,
    nodes: Vec<(String, usize)>,
    /// CPU pool charged with per-request application work (the server).
    app_cpu: Option<ComponentId>,
    rng: Rng,
    free_slots: Vec<usize>,
    backlog: VecDeque<()>,
    inflight: BTreeMap<u64, InFlight>,
    /// Job id → request key.
    job_to_req: BTreeMap<u64, u64>,
    next_job_id: u64,
    next_req: u64,
    measuring: bool,
    window_closed: bool,
    measure_start: SimTime,
    bytes: u64,
    requests: u64,
    failures: u64,
}

impl ScenarioDriver {
    /// Creates the driver.
    ///
    /// `nodes` lists `(cpu_pool_key, cores)` pairs to report on.
    pub fn new(
        cfg: ScenarioConfig,
        make: MakeRequest,
        nodes: Vec<(String, usize)>,
        app_cpu: Option<ComponentId>,
        rng: Rng,
    ) -> Self {
        let slots = (0..cfg.slots).rev().collect();
        ScenarioDriver {
            cfg,
            make,
            nodes,
            app_cpu,
            rng,
            free_slots: slots,
            backlog: VecDeque::new(),
            inflight: BTreeMap::new(),
            job_to_req: BTreeMap::new(),
            next_job_id: 1,
            next_req: 1,
            measuring: false,
            window_closed: false,
            measure_start: SimTime::ZERO,
            bytes: 0,
            requests: 0,
            failures: 0,
        }
    }

    fn launch(&mut self, ctx: &mut Ctx<'_>) {
        let Some(slot) = self.free_slots.pop() else {
            self.backlog.push_back(());
            ctx.world().stats.counter("scenario.backlogged").add(1);
            return;
        };
        let req = (self.make)(&mut self.rng, slot, ctx.self_id(), &mut self.next_job_id);
        let key = self.next_req;
        self.next_req += 1;
        if let (Some(cpu), true) = (self.app_cpu, req.app_cost_ns > 0) {
            // Fire-and-forget application work; the completion is ignored.
            let token = u64::MAX - key;
            ctx.send_now(
                cpu,
                CpuJob {
                    token,
                    cost_ns: req.app_cost_ns,
                    tag: req.app_tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
        let pending = req.jobs.len();
        for (target, job) in &req.jobs {
            self.job_to_req.insert(job.id, key);
            ctx.send_now(*target, job.clone());
        }
        self.inflight.insert(
            key,
            InFlight {
                slot,
                pending_jobs: pending,
                bytes: req.bytes,
                failed: false,
            },
        );
    }

    fn on_done(&mut self, ctx: &mut Ctx<'_>, done: D2dDone) {
        let Some(key) = self.job_to_req.remove(&done.id) else {
            panic!("completion for unknown job {}", done.id);
        };
        let finished = {
            let r = self.inflight.get_mut(&key).expect("live request");
            r.pending_jobs -= 1;
            r.failed |= !done.ok;
            r.pending_jobs == 0
        };
        if !finished {
            return;
        }
        let r = self.inflight.remove(&key).expect("live request");
        self.free_slots.push(r.slot);
        if self.measuring && !self.window_closed {
            self.requests += 1;
            if r.failed {
                self.failures += 1;
            } else {
                self.bytes += r.bytes as u64;
            }
        }
        // A freed slot can serve backlog, unless the window has closed.
        if !self.window_closed && self.backlog.pop_front().is_some() {
            self.launch(ctx);
        }
    }

    fn close_window(&mut self, ctx: &mut Ctx<'_>) {
        self.window_closed = true;
        let span = ctx.now() - self.measure_start;
        let mut outcome = ScenarioOutcome::default();
        let stats = ctx.world_ref().get::<CpuStats>();
        for (key, cores) in &self.nodes {
            let cpu_breakdown = stats
                .map(|s| s.breakdown(key, span).into_iter().collect())
                .unwrap_or_default();
            outcome.reports.insert(
                key.clone(),
                WorkloadReport {
                    span_ns: span,
                    requests: self.requests,
                    bytes: self.bytes,
                    cpu_breakdown,
                    failures: self.failures,
                },
            );
            let _ = cores;
        }
        ctx.world().insert(outcome);
    }
}

impl Component for ScenarioDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Start>() {
            Ok(Start) => {
                let gap = (self.rng.gen_exp(self.cfg.mean_interarrival_ns) as u64).max(1);
                ctx.send_self_in(gap, Arrival);
                ctx.send_self_in(self.cfg.warmup_ns, WarmupOver);
                ctx.send_self_in(self.cfg.duration_ns, WindowOver);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Arrival>() {
            Ok(Arrival) => {
                if !self.window_closed {
                    self.launch(ctx);
                    let gap = (self.rng.gen_exp(self.cfg.mean_interarrival_ns) as u64).max(1);
                    ctx.send_self_in(gap, Arrival);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WarmupOver>() {
            Ok(WarmupOver) => {
                self.measuring = true;
                self.measure_start = ctx.now();
                if let Some(stats) = ctx.world().get_mut::<CpuStats>() {
                    stats.reset();
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WindowOver>() {
            Ok(WindowOver) => {
                self.close_window(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(_) => return, // application-charge completion: nothing to do
            Err(m) => m,
        };
        match msg.downcast::<D2dDone>() {
            Ok(done) => self.on_done(ctx, done),
            Err(other) => panic!("ScenarioDriver received unexpected message: {other:?}"),
        }
    }
}

/// Installs and starts a scenario driver; returns its id. Run the sim,
/// then read [`ScenarioOutcome`] from the world.
pub fn start_scenario(
    sim: &mut Simulator,
    cfg: ScenarioConfig,
    make: MakeRequest,
    nodes: Vec<(String, usize)>,
) -> ComponentId {
    start_scenario_with_app(sim, cfg, make, nodes, None)
}

/// Like [`start_scenario`], with a CPU pool charged per-request
/// application work (see [`Request::app_cost_ns`]).
pub fn start_scenario_with_app(
    sim: &mut Simulator,
    cfg: ScenarioConfig,
    make: MakeRequest,
    nodes: Vec<(String, usize)>,
    app_cpu: Option<ComponentId>,
) -> ComponentId {
    let rng = sim.world_mut().rng.fork();
    let driver = sim.add(
        "scenario",
        ScenarioDriver::new(cfg, make, nodes, app_cpu, rng),
    );
    sim.kickoff(driver, Start);
    driver
}
