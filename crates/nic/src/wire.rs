//! The cable between two nodes.
//!
//! A full-duplex point-to-point Ethernet segment: frames from each endpoint
//! serialize at line rate (plus per-frame preamble/IFG/FCS overhead) on
//! that endpoint's transmit direction, then arrive at the peer after a
//! propagation delay. Delivery is in order and — unless a fault plan says
//! otherwise — lossless, the model's stand-in for a healthy switched LAN,
//! which is what the paper's two-node testbed used.
//!
//! With a [`dcs_sim::FaultPlan`] installed, the delivery leg consults the
//! `wire.drop` and `wire.corrupt` sites: a dropped frame vanishes after
//! serialization (the sender still sees its transmit complete, as on real
//! Ethernet), and a corrupted frame has one bit flipped inside the
//! checksummed IP/TCP region so the receiver's parse path rejects it.

use dcs_sim::{fault, time, Bandwidth, Component, ComponentId, Ctx, FifoServer, Msg};

/// Wire timing parameters.
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Line rate of the link (10 Gbps for the BCM57711; Figure 13 projects
    /// 40 Gbps).
    pub rate: Bandwidth,
    /// Physical-layer overhead added to every frame: preamble (8) +
    /// inter-frame gap (12) + FCS (4) bytes.
    pub frame_overhead: usize,
    /// One-way propagation + switch latency.
    pub propagation_ns: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            rate: Bandwidth::gbps(10.0),
            frame_overhead: 24,
            propagation_ns: time::us(2),
        }
    }
}

/// Asks the wire to transmit `frame` from the sending NIC (identified by
/// the message source) to the opposite endpoint.
#[derive(Debug)]
pub struct TransmitFrame {
    /// Sender-chosen token echoed in [`TransmitDone`].
    pub id: u64,
    /// The complete frame bytes.
    pub frame: Vec<u8>,
}

/// Tells the sending NIC its frame has fully left the adapter (transmit
/// serialization finished) — the point at which transmit resources free up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransmitDone {
    /// Token from the originating [`TransmitFrame`].
    pub id: u64,
}

/// Delivers a frame to the receiving NIC.
#[derive(Debug)]
pub struct FrameDelivery {
    /// The complete frame bytes.
    pub frame: Vec<u8>,
}

/// Internal: a frame has finished serializing; deliver + notify.
#[derive(Debug)]
struct Serialized {
    id: u64,
    to: ComponentId,
    notify: ComponentId,
    frame: Vec<u8>,
}

/// The point-to-point link component.
pub struct Wire {
    config: WireConfig,
    endpoints: [ComponentId; 2],
    tx: [FifoServer; 2],
}

impl Wire {
    /// A wire between two NIC components.
    pub fn new(config: WireConfig, a: ComponentId, b: ComponentId) -> Self {
        assert_ne!(a, b, "a wire needs two distinct endpoints");
        Wire {
            config,
            endpoints: [a, b],
            tx: [FifoServer::new(), FifoServer::new()],
        }
    }

    fn direction_of(&self, sender: ComponentId) -> usize {
        if sender == self.endpoints[0] {
            0
        } else if sender == self.endpoints[1] {
            1
        } else {
            panic!("frame from component {sender} not attached to this wire");
        }
    }
}

impl Component for Wire {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // The sender's identity comes from the message envelope, captured
        // before the downcast consumes the message.
        let src = msg.src;
        let msg = match msg.downcast::<TransmitFrame>() {
            Ok(tf) => {
                let dir = self.direction_of(src);
                let service = self
                    .config
                    .rate
                    .transfer_time(tf.frame.len() + self.config.frame_overhead);
                let done = self.tx[dir].offer(ctx.now(), service);
                let to = self.endpoints[1 - dir];
                let notify = self.endpoints[dir];
                ctx.world().stats.counter("wire.frames").add(1);
                ctx.world()
                    .stats
                    .counter("wire.bytes")
                    .add(tf.frame.len() as u64);
                let delay = done - ctx.now();
                ctx.send_self_in(
                    delay,
                    Serialized {
                        id: tf.id,
                        to,
                        notify,
                        frame: tf.frame,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<Serialized>() {
            Ok(s) => {
                ctx.send_now(s.notify, TransmitDone { id: s.id });
                let mut frame = s.frame;
                if fault::inject(ctx.world(), fault::WIRE_DROP).is_some() {
                    ctx.world().stats.counter("wire.dropped").add(1);
                    return;
                }
                if let Some(entropy) = fault::inject(ctx.world(), fault::WIRE_CORRUPT) {
                    if frame.len() > 14 {
                        // Flip one bit inside the checksummed region (past
                        // the Ethernet header) so the receiver's IP/TCP
                        // checksum validation is guaranteed to reject it.
                        let idx = 14 + (entropy % (frame.len() - 14) as u64) as usize;
                        frame[idx] ^= 1 << ((entropy >> 32) % 8);
                        ctx.world().stats.counter("wire.corrupted").add(1);
                    }
                }
                let prop = self.config.propagation_ns;
                ctx.send_in(prop, s.to, FrameDelivery { frame });
            }
            Err(other) => panic!("Wire received unexpected message: {other:?}"),
        }
    }
}

/// Creates and installs a wire between two already-reserved NIC ids.
pub fn install_wire(
    sim: &mut dcs_sim::Simulator,
    config: WireConfig,
    a: ComponentId,
    b: ComponentId,
) -> ComponentId {
    sim.add("wire", Wire::new(config, a, b))
}
