//! Ethernet II / IPv4 / TCP header construction and parsing with real
//! checksums.
//!
//! The HDC Engine's NIC controller must produce headers a commodity NIC and
//! the remote peer's stack would accept; conversely its packet-gathering
//! logic must parse received frames to identify the flow and strip headers
//! (§III-D). Both directions are implemented here and shared by the host
//! TCP/IP-stack model and the HDC controller.

/// Ethernet II header length (dst MAC, src MAC, ethertype).
pub const ETH_HEADER_LEN: usize = 14;
/// IPv4 header length without options.
pub const IPV4_HEADER_LEN: usize = 20;
/// TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;
/// Total framing our packets carry in front of the payload.
pub const HEADERS_LEN: usize = ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN;
/// Sentinel `seq` value marking a zero-payload frame as a pure protocol
/// acknowledgement (go-back-N recovery under fault injection). Data frames
/// never carry this seq with an empty payload in practice; the `ack` field
/// of such a frame is the receiver's cumulative per-flow byte count.
pub const ACK_MAGIC: u32 = 0xACCE_55ED;

/// The 5-tuple-plus-link-layer identity of an established TCP connection,
/// as the kernel hands it to the HDC Driver (§IV-B: "interacts with the
/// existing kernel … TCP/IP network stacks to find … TCP/IP connection
/// information").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TcpFlow {
    /// Source MAC address.
    pub src_mac: [u8; 6],
    /// Destination MAC address.
    pub dst_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl TcpFlow {
    /// The reverse direction of this flow (what the peer transmits on).
    pub fn reversed(&self) -> TcpFlow {
        TcpFlow {
            src_mac: self.dst_mac,
            dst_mac: self.src_mac,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A deterministic test flow between two synthetic hosts.
    pub fn example(src_last: u8, dst_last: u8, src_port: u16, dst_port: u16) -> TcpFlow {
        TcpFlow {
            src_mac: [0x02, 0, 0, 0, 0, src_last],
            dst_mac: [0x02, 0, 0, 0, 0, dst_last],
            src_ip: [10, 0, 0, src_last],
            dst_ip: [10, 0, 0, dst_last],
            src_port,
            dst_port,
        }
    }
}

/// RFC 1071 internet checksum over `data` (with `init` folded in).
fn internet_checksum(data: &[u8], init: u32) -> u16 {
    let mut sum = init;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a complete frame: Ethernet + IPv4 + TCP headers followed by
/// `payload`, with valid IP and TCP checksums.
///
/// `seq` is the TCP sequence number of the first payload byte; `ack` the
/// acknowledgement number (the model's wire is lossless so acks carry no
/// control significance, but the fields are filled for realism).
pub fn build_frame(flow: &TcpFlow, seq: u32, ack: u32, payload: &[u8]) -> Vec<u8> {
    let ip_total = (IPV4_HEADER_LEN + TCP_HEADER_LEN + payload.len()) as u16;
    let mut f = Vec::with_capacity(HEADERS_LEN + payload.len());

    // Ethernet II.
    f.extend_from_slice(&flow.dst_mac);
    f.extend_from_slice(&flow.src_mac);
    f.extend_from_slice(&0x0800u16.to_be_bytes()); // IPv4

    // IPv4.
    let ip_start = f.len();
    f.push(0x45); // version 4, IHL 5
    f.push(0); // DSCP/ECN
    f.extend_from_slice(&ip_total.to_be_bytes());
    f.extend_from_slice(&[0, 0]); // identification
    f.extend_from_slice(&[0x40, 0]); // flags: DF
    f.push(64); // TTL
    f.push(6); // protocol: TCP
    f.extend_from_slice(&[0, 0]); // checksum placeholder
    f.extend_from_slice(&flow.src_ip);
    f.extend_from_slice(&flow.dst_ip);
    let ip_csum = internet_checksum(&f[ip_start..ip_start + IPV4_HEADER_LEN], 0);
    f[ip_start + 10..ip_start + 12].copy_from_slice(&ip_csum.to_be_bytes());

    // TCP.
    let tcp_start = f.len();
    f.extend_from_slice(&flow.src_port.to_be_bytes());
    f.extend_from_slice(&flow.dst_port.to_be_bytes());
    f.extend_from_slice(&seq.to_be_bytes());
    f.extend_from_slice(&ack.to_be_bytes());
    f.push(5 << 4); // data offset = 5 words
    f.push(0b0001_1000); // flags: PSH|ACK
    f.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
    f.extend_from_slice(&[0, 0]); // checksum placeholder
    f.extend_from_slice(&[0, 0]); // urgent pointer
    f.extend_from_slice(payload);

    // TCP checksum over pseudo-header + TCP header + payload.
    let tcp_len = (TCP_HEADER_LEN + payload.len()) as u16;
    let mut pseudo = 0u32;
    pseudo += u16::from_be_bytes([flow.src_ip[0], flow.src_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([flow.src_ip[2], flow.src_ip[3]]) as u32;
    pseudo += u16::from_be_bytes([flow.dst_ip[0], flow.dst_ip[1]]) as u32;
    pseudo += u16::from_be_bytes([flow.dst_ip[2], flow.dst_ip[3]]) as u32;
    pseudo += 6; // protocol
    pseudo += tcp_len as u32;
    let tcp_csum = internet_checksum(&f[tcp_start..], pseudo);
    f[tcp_start + 16..tcp_start + 18].copy_from_slice(&tcp_csum.to_be_bytes());

    f
}

/// A successfully validated and decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsedPacket {
    /// The flow the frame belongs to (as seen from the sender).
    pub flow: TcpFlow,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Offset of the payload within the frame.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Frame validation failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Frame shorter than the fixed headers.
    Truncated,
    /// Not IPv4-over-Ethernet or not TCP.
    UnsupportedProtocol,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// TCP checksum mismatch.
    BadTcpChecksum,
    /// IP total length disagrees with the frame size.
    LengthMismatch,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseError::Truncated => "frame truncated",
            ParseError::UnsupportedProtocol => "not TCP/IPv4 over Ethernet",
            ParseError::BadIpChecksum => "bad IPv4 header checksum",
            ParseError::BadTcpChecksum => "bad TCP checksum",
            ParseError::LengthMismatch => "IP length disagrees with frame size",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses and validates a frame produced by [`build_frame`] (or any
/// conforming stack).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first validation failure.
pub fn parse_frame(frame: &[u8]) -> Result<ParsedPacket, ParseError> {
    if frame.len() < HEADERS_LEN {
        return Err(ParseError::Truncated);
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return Err(ParseError::UnsupportedProtocol);
    }
    let ip = &frame[ETH_HEADER_LEN..];
    if ip[0] != 0x45 || ip[9] != 6 {
        return Err(ParseError::UnsupportedProtocol);
    }
    if internet_checksum(&ip[..IPV4_HEADER_LEN], 0) != 0 {
        return Err(ParseError::BadIpChecksum);
    }
    let ip_total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ip_total + ETH_HEADER_LEN != frame.len() {
        return Err(ParseError::LengthMismatch);
    }
    let tcp = &ip[IPV4_HEADER_LEN..ip_total];
    let tcp_len = tcp.len();
    if tcp_len < TCP_HEADER_LEN {
        return Err(ParseError::Truncated);
    }
    // Verify the TCP checksum (pseudo-header + segment must sum to zero).
    let mut pseudo = 0u32;
    pseudo += u16::from_be_bytes([ip[12], ip[13]]) as u32;
    pseudo += u16::from_be_bytes([ip[14], ip[15]]) as u32;
    pseudo += u16::from_be_bytes([ip[16], ip[17]]) as u32;
    pseudo += u16::from_be_bytes([ip[18], ip[19]]) as u32;
    pseudo += 6;
    pseudo += tcp_len as u32;
    if internet_checksum(tcp, pseudo) != 0 {
        return Err(ParseError::BadTcpChecksum);
    }
    let flow = TcpFlow {
        dst_mac: frame[0..6].try_into().expect("6 bytes"),
        src_mac: frame[6..12].try_into().expect("6 bytes"),
        src_ip: ip[12..16].try_into().expect("4 bytes"),
        dst_ip: ip[16..20].try_into().expect("4 bytes"),
        src_port: u16::from_be_bytes([tcp[0], tcp[1]]),
        dst_port: u16::from_be_bytes([tcp[2], tcp[3]]),
    };
    Ok(ParsedPacket {
        flow,
        seq: u32::from_be_bytes(tcp[4..8].try_into().expect("4 bytes")),
        ack: u32::from_be_bytes(tcp[8..12].try_into().expect("4 bytes")),
        payload_offset: HEADERS_LEN,
        payload_len: tcp_len - TCP_HEADER_LEN,
    })
}

/// Extracts the flow and sequence numbers from a header *template* — the
/// headers an initiator stages for the NIC's LSO engine. No checksum or
/// length validation: the template's checksums are recomputed per segment
/// by the device anyway.
///
/// # Errors
///
/// Returns [`ParseError::Truncated`] if shorter than the fixed headers, or
/// [`ParseError::UnsupportedProtocol`] for non-TCP/IPv4 templates.
pub fn parse_template(template: &[u8]) -> Result<(TcpFlow, u32, u32), ParseError> {
    if template.len() < HEADERS_LEN {
        return Err(ParseError::Truncated);
    }
    let ethertype = u16::from_be_bytes([template[12], template[13]]);
    let ip = &template[ETH_HEADER_LEN..];
    if ethertype != 0x0800 || ip[0] != 0x45 || ip[9] != 6 {
        return Err(ParseError::UnsupportedProtocol);
    }
    let tcp = &ip[IPV4_HEADER_LEN..];
    let flow = TcpFlow {
        dst_mac: template[0..6].try_into().expect("6 bytes"),
        src_mac: template[6..12].try_into().expect("6 bytes"),
        src_ip: ip[12..16].try_into().expect("4 bytes"),
        dst_ip: ip[16..20].try_into().expect("4 bytes"),
        src_port: u16::from_be_bytes([tcp[0], tcp[1]]),
        dst_port: u16::from_be_bytes([tcp[2], tcp[3]]),
    };
    let seq = u32::from_be_bytes(tcp[4..8].try_into().expect("4 bytes"));
    let ack = u32::from_be_bytes(tcp[8..12].try_into().expect("4 bytes"));
    Ok((flow, seq, ack))
}

/// Builds the header template an initiator stages for an LSO send: the
/// full header stack with the starting sequence number (checksums left to
/// the device).
pub fn build_template(flow: &TcpFlow, seq: u32, ack: u32) -> Vec<u8> {
    build_frame(flow, seq, ack, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_roundtrip() {
        let flow = TcpFlow::example(3, 4, 5555, 80);
        let t = build_template(&flow, 0xAABB_CCDD, 42);
        assert_eq!(t.len(), HEADERS_LEN);
        let (f2, seq, ack) = parse_template(&t).unwrap();
        assert_eq!(f2, flow);
        assert_eq!(seq, 0xAABB_CCDD);
        assert_eq!(ack, 42);
        assert_eq!(parse_template(&t[..20]), Err(ParseError::Truncated));
    }

    #[test]
    fn build_parse_roundtrip() {
        let flow = TcpFlow::example(1, 2, 40000, 8080);
        let payload = b"object data segment";
        let frame = build_frame(&flow, 1000, 555, payload);
        assert_eq!(frame.len(), HEADERS_LEN + payload.len());
        let p = parse_frame(&frame).expect("valid frame");
        assert_eq!(p.flow, flow);
        assert_eq!(p.seq, 1000);
        assert_eq!(p.ack, 555);
        assert_eq!(
            &frame[p.payload_offset..p.payload_offset + p.payload_len],
            payload
        );
    }

    #[test]
    fn empty_payload_frame() {
        let flow = TcpFlow::example(1, 2, 1, 2);
        let frame = build_frame(&flow, 0, 0, &[]);
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.payload_len, 0);
    }

    #[test]
    fn odd_length_payload_checksums() {
        let flow = TcpFlow::example(9, 7, 1234, 80);
        for len in [1usize, 3, 1447] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let frame = build_frame(&flow, 7, 0, &payload);
            parse_frame(&frame).unwrap_or_else(|e| panic!("len {len}: {e}"));
        }
    }

    #[test]
    fn corruption_is_detected() {
        let flow = TcpFlow::example(1, 2, 40000, 8080);
        let frame = build_frame(&flow, 1, 2, b"payload bytes here");
        // Flip a payload byte: TCP checksum must catch it.
        let mut bad = frame.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert_eq!(parse_frame(&bad), Err(ParseError::BadTcpChecksum));
        // Flip an IP header byte (TTL): IP checksum must catch it.
        let mut bad = frame.clone();
        bad[ETH_HEADER_LEN + 8] = 13;
        assert_eq!(parse_frame(&bad), Err(ParseError::BadIpChecksum));
        // Truncate.
        assert_eq!(parse_frame(&frame[..10]), Err(ParseError::Truncated));
        // Wrong ethertype.
        let mut bad = frame.clone();
        bad[12] = 0x86;
        assert_eq!(parse_frame(&bad), Err(ParseError::UnsupportedProtocol));
        // Inconsistent IP total length.
        let mut bad = frame;
        bad.push(0);
        assert_eq!(parse_frame(&bad), Err(ParseError::LengthMismatch));
    }

    #[test]
    fn reversed_flow_swaps_endpoints() {
        let flow = TcpFlow::example(1, 2, 10, 20);
        let rev = flow.reversed();
        assert_eq!(rev.src_ip, flow.dst_ip);
        assert_eq!(rev.dst_port, flow.src_port);
        assert_eq!(rev.reversed(), flow);
    }

    #[test]
    fn checksum_known_value() {
        // RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
        // before inversion.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data, 0), !0xddf2);
    }
}
