//! The NIC device component.
//!
//! Transmit: doorbell → batched descriptor fetch (DMA) → header-template
//! and payload gather (DMA) → LSO segmentation with per-segment header
//! fix-up (real sequence numbers and checksums) → frames serialized on the
//! wire → per-descriptor completion MSI when the last segment leaves the
//! adapter.
//!
//! Receive: frames arrive from the wire → next posted buffer descriptor →
//! frame DMA into the buffer → write-back record → interrupt-coalesced MSI.
//! A frame arriving with no posted buffer is dropped and counted, as real
//! adapters do.

use std::collections::VecDeque;

use dcs_pcie::{
    aer, AddrRange, DmaComplete, DmaRequest, MmioWrite, Msi, PhysAddr, PhysMemory, PortId, TlpClass,
};
use dcs_sim::{fault, time, Component, ComponentId, Ctx, DetMap, Msg, Simulator};

use crate::headers::{build_frame, parse_template};
use crate::ring::{RecvDescriptor, RecvWriteback, SendDescriptor};
use crate::wire::{FrameDelivery, TransmitDone, TransmitFrame};

/// NIC timing and protocol parameters.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// TCP maximum segment size used by LSO segmentation.
    pub mss: usize,
    /// Largest payload a single send descriptor may carry.
    pub max_lso: usize,
    /// Device-side handling cost folded into each descriptor fetch, in ns.
    pub descriptor_overhead_ns: u64,
    /// Receive interrupt coalescing window, in ns.
    pub irq_coalesce_ns: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            mss: 1448,
            max_lso: 64 * 1024,
            descriptor_overhead_ns: 300,
            irq_coalesce_ns: time::us(4),
        }
    }
}

/// One-time ring/interrupt configuration, sent by the initiator before
/// first use (condenses the driver's probe-time register programming).
#[derive(Debug, Clone, Copy)]
pub struct ConfigureNic {
    /// Send descriptor ring base (initiator memory).
    pub send_ring_base: PhysAddr,
    /// Send ring depth in entries.
    pub send_ring_depth: u16,
    /// Receive descriptor ring base.
    pub recv_ring_base: PhysAddr,
    /// Receive ring depth in entries.
    pub recv_ring_depth: u16,
    /// Write-back ring base (parallel to the receive ring, 8-byte entries).
    pub wb_ring_base: PhysAddr,
    /// MSI target for transmit completions.
    pub tx_msi_addr: PhysAddr,
    /// MSI vector for transmit completions.
    pub tx_msi_vector: u32,
    /// MSI target for receive notifications.
    pub rx_msi_addr: PhysAddr,
    /// MSI vector for receive notifications.
    pub rx_msi_vector: u32,
}

/// Handle returned by [`install_nic`].
#[derive(Debug, Clone)]
pub struct NicHandle {
    /// The NIC component.
    pub device: ComponentId,
    /// Register BAR (doorbells).
    pub bar: AddrRange,
    /// Device-internal staging memory (tests may inspect it).
    pub staging: AddrRange,
    /// PCIe port the NIC occupies.
    pub port: PortId,
}

impl NicHandle {
    /// Transmit doorbell register (write the new send-ring producer index).
    pub fn tx_doorbell(&self) -> PhysAddr {
        self.bar.start + 0x100
    }

    /// Receive doorbell register (write the new recv-ring producer index).
    pub fn rx_doorbell(&self) -> PhysAddr {
        self.bar.start + 0x104
    }
}

/// Internal: raise the coalesced receive interrupt.
#[derive(Debug)]
struct RaiseRxIrq;

/// Asks the NIC to transmit a fully-formed frame directly, bypassing the
/// descriptor ring. Drivers use this for protocol control traffic (pure
/// ACKs during fault recovery); no completion MSI is raised for it.
#[derive(Debug)]
pub struct ControlFrame {
    /// The complete frame bytes.
    pub frame: Vec<u8>,
}

/// Sentinel tx-op id for control frames: tokens start at 1, so 0 never
/// collides with a descriptor-originated op.
const CTRL_OP: u64 = 0;

#[derive(Clone, Copy)]
enum DmaPurpose {
    /// A batch of `count` send descriptors landing at `staging`.
    TxDescBatch {
        start_idx: u16,
        count: u16,
        staging: PhysAddr,
        refetched: bool,
    },
    /// Header/payload gather for a descriptor; both must land before
    /// segmentation. The source/length are kept so a poisoned gather can
    /// be re-fetched once from initiator memory.
    TxGather {
        op: u64,
        src: PhysAddr,
        dst: PhysAddr,
        len: usize,
        refetched: bool,
    },
    /// A batch of `count` receive descriptors landing at `staging`.
    RxDescBatch {
        start_idx: u16,
        count: u16,
        staging: PhysAddr,
        refetched: bool,
    },
    /// A received frame being copied into a posted buffer.
    RxDeliver { ring_idx: u16, frame_len: usize },
}

struct TxOp {
    desc: SendDescriptor,
    hdr_staging: PhysAddr,
    pay_staging: PhysAddr,
    gathers_left: u8,
    segments_left: usize,
}

/// The NIC component.
pub struct NicDevice {
    config: NicConfig,
    fabric: ComponentId,
    wire: ComponentId,
    bar: AddrRange,
    staging: AddrRange,
    staging_off: u64,
    rings: Option<ConfigureNic>,
    /// Device-side consumer indices.
    tx_cons: u16,
    rx_cons: u16,
    /// In-flight DMA bookkeeping.
    dmas: DetMap<u64, DmaPurpose>,
    tx_ops: DetMap<u64, TxOp>,
    /// Wire-transmit token → (tx op, last segment?).
    frames: DetMap<u64, (u64, bool)>,
    /// Posted receive buffers in ring order.
    posted: VecDeque<(u16, RecvDescriptor)>,
    /// Ring index of the next posted buffer / write-back slot.
    rx_wb_next: u16,
    next_token: u64,
    irq_pending: bool,
}

impl NicDevice {
    /// Creates the NIC.
    pub fn new(
        config: NicConfig,
        fabric: ComponentId,
        wire: ComponentId,
        bar: AddrRange,
        staging: AddrRange,
    ) -> Self {
        NicDevice {
            config,
            fabric,
            wire,
            bar,
            staging,
            staging_off: 0,
            rings: None,
            tx_cons: 0,
            rx_cons: 0,
            dmas: DetMap::new(),
            tx_ops: DetMap::new(),
            frames: DetMap::new(),
            posted: VecDeque::new(),
            rx_wb_next: 0,
            next_token: 1,
            irq_pending: false,
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Bump-allocates `len` bytes of staging memory (recycled ring-style;
    /// staging is large relative to in-flight data).
    fn stage(&mut self, len: usize) -> PhysAddr {
        let len = (len as u64).div_ceil(64) * 64;
        if self.staging_off + len > self.staging.len {
            self.staging_off = 0;
        }
        let addr = self.staging.start + self.staging_off;
        self.staging_off += len;
        addr
    }

    fn rings(&self) -> &ConfigureNic {
        self.rings.as_ref().expect("NIC used before ConfigureNic")
    }

    /// Span name for a DMA's purpose (also the `span_end` key on
    /// completion).
    fn purpose_span(purpose: &DmaPurpose) -> &'static str {
        match purpose {
            DmaPurpose::TxDescBatch { .. } => "tx-desc-fetch",
            DmaPurpose::TxGather { .. } => "tx-gather",
            DmaPurpose::RxDescBatch { .. } => "rx-desc-fetch",
            DmaPurpose::RxDeliver { .. } => "rx-deliver",
        }
    }

    fn dma(
        &mut self,
        ctx: &mut Ctx<'_>,
        src: PhysAddr,
        dst: PhysAddr,
        len: usize,
        purpose: DmaPurpose,
    ) {
        let token = self.token();
        {
            let now = ctx.now();
            ctx.world()
                .obs
                .span_begin("nic", Self::purpose_span(&purpose), token, now);
        }
        self.dmas.insert(token, purpose);
        let req = DmaRequest {
            id: token,
            src,
            dst,
            len,
            class: TlpClass::Data,
            reply_to: ctx.self_id(),
        };
        let fabric = self.fabric;
        ctx.send_now(fabric, req);
    }

    fn on_doorbell(&mut self, ctx: &mut Ctx<'_>, write: &MmioWrite) {
        let off = write.addr - self.bar.start;
        let value = u32::from_le_bytes(
            write
                .data
                .as_slice()
                .try_into()
                .expect("doorbell writes are 4 bytes"),
        ) as u16;
        match off {
            0x100 => self.fetch_descriptors(ctx, value, true),
            0x104 => self.fetch_descriptors(ctx, value, false),
            _ => panic!("write to unmodeled NIC register {off:#x}"),
        }
    }

    /// Fetches ring entries `[cons, prod)` in at most two contiguous DMAs
    /// (two when the range wraps).
    fn fetch_descriptors(&mut self, ctx: &mut Ctx<'_>, prod: u16, is_tx: bool) {
        let rings = *self.rings();
        let (base, depth, entry, cons) = if is_tx {
            (
                rings.send_ring_base,
                rings.send_ring_depth,
                SendDescriptor::SIZE,
                self.tx_cons,
            )
        } else {
            (
                rings.recv_ring_base,
                rings.recv_ring_depth,
                RecvDescriptor::SIZE,
                self.rx_cons,
            )
        };
        let prod = prod % depth;
        let mut idx = cons;
        while idx != prod {
            let run_end = if prod > idx { prod } else { depth };
            let count = run_end - idx;
            let staging = self.stage(count as usize * entry);
            let src = base + idx as u64 * entry as u64;
            let purpose = if is_tx {
                DmaPurpose::TxDescBatch {
                    start_idx: idx,
                    count,
                    staging,
                    refetched: false,
                }
            } else {
                DmaPurpose::RxDescBatch {
                    start_idx: idx,
                    count,
                    staging,
                    refetched: false,
                }
            };
            self.dma(ctx, src, staging, count as usize * entry, purpose);
            idx = run_end % depth;
        }
        if is_tx {
            self.tx_cons = prod;
        } else {
            self.rx_cons = prod;
        }
    }

    fn on_tx_descs(&mut self, ctx: &mut Ctx<'_>, start_idx: u16, count: u16, staging: PhysAddr) {
        let _ = start_idx;
        for i in 0..count {
            let raw: [u8; SendDescriptor::SIZE] = ctx
                .world_ref()
                .expect::<PhysMemory>()
                .read(
                    staging + i as u64 * SendDescriptor::SIZE as u64,
                    SendDescriptor::SIZE,
                )
                .try_into()
                .expect("descriptor bytes");
            let desc = SendDescriptor::from_bytes(&raw);
            assert!(
                desc.payload_len as usize <= self.config.max_lso,
                "send of {} bytes exceeds the {}-byte LSO limit",
                desc.payload_len,
                self.config.max_lso
            );
            let op = self.token();
            let hdr_staging = self.stage(desc.header_len as usize);
            let pay_staging = self.stage(desc.payload_len as usize);
            self.tx_ops.insert(
                op,
                TxOp {
                    desc,
                    hdr_staging,
                    pay_staging,
                    gathers_left: 2,
                    segments_left: 0,
                },
            );
            let hdr_len = desc.header_len as usize;
            let pay_len = desc.payload_len as usize;
            self.dma(
                ctx,
                desc.header_addr,
                hdr_staging,
                hdr_len,
                DmaPurpose::TxGather {
                    op,
                    src: desc.header_addr,
                    dst: hdr_staging,
                    len: hdr_len,
                    refetched: false,
                },
            );
            self.dma(
                ctx,
                desc.payload_addr,
                pay_staging,
                pay_len,
                DmaPurpose::TxGather {
                    op,
                    src: desc.payload_addr,
                    dst: pay_staging,
                    len: pay_len,
                    refetched: false,
                },
            );
        }
    }

    fn on_tx_gather_done(&mut self, ctx: &mut Ctx<'_>, op: u64) {
        let ready = {
            let Some(txop) = self.tx_ops.get_mut(&op) else {
                // The op was aborted (poisoned sibling gather or reset)
                // while this gather was in flight.
                ctx.world().stats.counter("nic.stale_gathers").add(1);
                return;
            };
            txop.gathers_left -= 1;
            txop.gathers_left == 0
        };
        if !ready {
            return;
        }
        // Both header template and payload are staged: segment and send.
        let (template, payload, mss) = {
            let txop = &self.tx_ops[&op];
            let mem = ctx.world_ref().expect::<PhysMemory>();
            let template = mem.read(txop.hdr_staging, txop.desc.header_len as usize);
            let payload = mem.read(txop.pay_staging, txop.desc.payload_len as usize);
            let mss = if txop.desc.mss == 0 {
                self.config.mss
            } else {
                txop.desc.mss as usize
            };
            (template, payload, mss)
        };
        let (flow, seq0, ack) = parse_template(&template)
            .unwrap_or_else(|e| panic!("initiator staged a malformed header template: {e}"));
        let chunks: Vec<&[u8]> = if payload.is_empty() {
            vec![&[][..]]
        } else {
            payload.chunks(mss).collect()
        };
        self.tx_ops.get_mut(&op).expect("live").segments_left = chunks.len();
        let mut offset = 0u32;
        let n = chunks.len();
        for (i, chunk) in chunks.into_iter().enumerate() {
            let frame = build_frame(
                &flow,
                seq0.wrapping_add(offset),
                ack.wrapping_add(offset),
                chunk,
            );
            offset += chunk.len() as u32;
            let ftoken = self.token();
            self.frames.insert(ftoken, (op, i == n - 1));
            let wire = self.wire;
            let overhead = self.config.descriptor_overhead_ns;
            ctx.send_in(overhead, wire, TransmitFrame { id: ftoken, frame });
            ctx.world().stats.counter("nic.tx_frames").add(1);
            {
                let now = ctx.now();
                let obs = &mut ctx.world().obs;
                obs.span_begin("nic", "wire-tx", ftoken, now);
                obs.count("nic", "tx.frames", 1);
            }
        }
    }

    fn on_transmit_done(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        {
            let now = ctx.now();
            ctx.world().obs.span_end("nic", "wire-tx", id, now);
        }
        let Some((op, last)) = self.frames.remove(&id) else {
            ctx.world().stats.counter("nic.stale_completions").add(1);
            return;
        };
        if !last {
            return;
        }
        let txop = self.tx_ops.remove(&op);
        let _ = txop;
        let rings = *self.rings();
        let fabric = self.fabric;
        ctx.send_now(
            fabric,
            Msi {
                addr: rings.tx_msi_addr,
                vector: rings.tx_msi_vector,
            },
        );
        ctx.world().stats.counter("nic.tx_completions").add(1);
    }

    fn on_rx_descs(&mut self, ctx: &mut Ctx<'_>, count: u16, staging: PhysAddr) {
        for i in 0..count {
            let raw: [u8; RecvDescriptor::SIZE] = ctx
                .world_ref()
                .expect::<PhysMemory>()
                .read(
                    staging + i as u64 * RecvDescriptor::SIZE as u64,
                    RecvDescriptor::SIZE,
                )
                .try_into()
                .expect("descriptor bytes");
            let desc = RecvDescriptor::from_bytes(&raw);
            let ring_idx = self.next_posted_idx();
            self.posted.push_back((ring_idx, desc));
        }
    }

    /// Ring index of the next posted buffer (sequential in ring order).
    fn next_posted_idx(&mut self) -> u16 {
        let rings = self.rings();
        let idx = self.rx_wb_next;
        self.rx_wb_next = (self.rx_wb_next + 1) % rings.recv_ring_depth;
        idx
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: Vec<u8>) {
        ctx.world().stats.counter("nic.rx_frames").add(1);
        let Some((ring_idx, desc)) = self.posted.pop_front() else {
            ctx.world().stats.counter("nic.rx_dropped_no_buffer").add(1);
            return;
        };
        if frame.len() > desc.buf_len as usize {
            ctx.world().stats.counter("nic.rx_dropped_too_large").add(1);
            return;
        }
        let staging = self.stage(frame.len());
        ctx.world()
            .expect_mut::<PhysMemory>()
            .write(staging, &frame);
        self.dma(
            ctx,
            staging,
            desc.buf_addr,
            frame.len(),
            DmaPurpose::RxDeliver {
                ring_idx,
                frame_len: frame.len(),
            },
        );
    }

    fn on_rx_delivered(&mut self, ctx: &mut Ctx<'_>, ring_idx: u16, frame_len: usize) {
        let rings = *self.rings();
        let wb = RecvWriteback {
            frame_len: frame_len as u32,
            valid: true,
        };
        let wb_addr = rings.wb_ring_base + ring_idx as u64 * RecvWriteback::SIZE as u64;
        let mut bytes = wb.to_bytes();
        // Write-back corruption draws the completion-entry site. The flip
        // avoids byte 4 (the valid flag doubles as the ring's scan
        // terminator; flipping it would stall the consumer, not corrupt
        // an entry) — the checksum in byte 5 covers every flipped byte,
        // so the consumer always detects and drops the slot.
        if let Some(entropy) = fault::inject(ctx.world(), fault::CPL_CORRUPT) {
            const FLIPPABLE: [usize; 5] = [0, 1, 2, 3, 5];
            let byte = FLIPPABLE[(entropy % 5) as usize];
            bytes[byte] ^= 1 << ((entropy >> 32) % 8);
        }
        // Posted 8-byte write; its fabric cost is negligible next to the
        // frame DMA that just completed.
        ctx.world()
            .expect_mut::<PhysMemory>()
            .write(wb_addr, &bytes);
        ctx.world().stats.counter("nic.rx_delivered").add(1);
        {
            let obs = &mut ctx.world().obs;
            obs.count("nic", "rx.delivered", 1);
            obs.observe("nic", "rx.frame_bytes", frame_len as u64);
        }
        if !self.irq_pending {
            self.irq_pending = true;
            let window = self.config.irq_coalesce_ns;
            {
                let now = ctx.now();
                ctx.world()
                    .obs
                    .span("nic", "irq-coalesce", ring_idx as u64, now, now + window);
            }
            ctx.send_self_in(window, RaiseRxIrq);
        }
    }

    /// Containment for a DMA that completed poisoned or timed out.
    ///
    /// Descriptor batches and gathers are never parsed from poisoned
    /// bytes — the source is intact initiator memory, so the device
    /// re-fetches once, and aborts the work if the re-fetch fails too
    /// (the initiator's retransmission timeout takes over from there).
    /// A poisoned frame delivery proceeds: the poison is *in* the frame
    /// bytes, where the receiver's TCP checksum validation catches it
    /// and go-back-N recovers the data.
    fn on_bad_dma(&mut self, ctx: &mut Ctx<'_>, purpose: DmaPurpose) {
        ctx.world().stats.counter("nic.bad_dmas").add(1);
        match purpose {
            DmaPurpose::TxDescBatch {
                start_idx,
                count,
                staging,
                refetched,
            } => {
                if !refetched {
                    ctx.world().stats.counter("nic.dma_refetches").add(1);
                    let rings = *self.rings();
                    let src = rings.send_ring_base + start_idx as u64 * SendDescriptor::SIZE as u64;
                    self.dma(
                        ctx,
                        src,
                        staging,
                        count as usize * SendDescriptor::SIZE,
                        DmaPurpose::TxDescBatch {
                            start_idx,
                            count,
                            staging,
                            refetched: true,
                        },
                    );
                } else {
                    ctx.world().stats.counter("nic.dropped_desc_batches").add(1);
                }
            }
            DmaPurpose::RxDescBatch {
                start_idx,
                count,
                staging,
                refetched,
            } => {
                if !refetched {
                    ctx.world().stats.counter("nic.dma_refetches").add(1);
                    let rings = *self.rings();
                    let src = rings.recv_ring_base + start_idx as u64 * RecvDescriptor::SIZE as u64;
                    self.dma(
                        ctx,
                        src,
                        staging,
                        count as usize * RecvDescriptor::SIZE,
                        DmaPurpose::RxDescBatch {
                            start_idx,
                            count,
                            staging,
                            refetched: true,
                        },
                    );
                } else {
                    ctx.world().stats.counter("nic.dropped_desc_batches").add(1);
                }
            }
            DmaPurpose::TxGather {
                op,
                src,
                dst,
                len,
                refetched,
            } => {
                if !refetched {
                    ctx.world().stats.counter("nic.dma_refetches").add(1);
                    self.dma(
                        ctx,
                        src,
                        dst,
                        len,
                        DmaPurpose::TxGather {
                            op,
                            src,
                            dst,
                            len,
                            refetched: true,
                        },
                    );
                } else {
                    // Abort the whole send op; its sibling gather (if
                    // still in flight) lands stale.
                    self.tx_ops.remove(&op);
                    ctx.world().stats.counter("nic.tx_aborted_gathers").add(1);
                }
            }
            DmaPurpose::RxDeliver {
                ring_idx,
                frame_len,
            } => {
                // Deliver anyway: the frame checksum fails at the
                // consumer and the frame is dropped there.
                self.on_rx_delivered(ctx, ring_idx, frame_len)
            }
        }
    }
}

impl Component for NicDevice {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let Some(write) = msg.get::<MmioWrite>() {
            let write = write.clone();
            self.on_doorbell(ctx, &write);
            return;
        }
        let msg = match msg.downcast::<ConfigureNic>() {
            Ok(cfg) => {
                if self.rings.is_some() {
                    // Re-configuration is a device reset: abandon all
                    // in-flight work (late completions land stale) and
                    // restart ring state from index zero.
                    self.dmas = DetMap::new();
                    self.tx_ops = DetMap::new();
                    self.frames = DetMap::new();
                    self.posted.clear();
                    self.tx_cons = 0;
                    self.rx_cons = 0;
                    self.rx_wb_next = 0;
                    self.irq_pending = false;
                    let now = ctx.now();
                    let world = ctx.world();
                    world.stats.counter("nic.resets").add(1);
                    aer::record(
                        world,
                        now.as_nanos(),
                        0,
                        "nic.reset",
                        aer::AerKind::DeviceReset,
                    );
                }
                self.rings = Some(cfg);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ControlFrame>() {
            Ok(cf) => {
                let ftoken = self.token();
                self.frames.insert(ftoken, (CTRL_OP, false));
                let wire = self.wire;
                let overhead = self.config.descriptor_overhead_ns;
                ctx.send_in(
                    overhead,
                    wire,
                    TransmitFrame {
                        id: ftoken,
                        frame: cf.frame,
                    },
                );
                ctx.world().stats.counter("nic.tx_ctrl_frames").add(1);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FrameDelivery>() {
            Ok(f) => {
                self.on_frame(ctx, f.frame);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<TransmitDone>() {
            Ok(t) => {
                self.on_transmit_done(ctx, t.id);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RaiseRxIrq>() {
            Ok(RaiseRxIrq) => {
                self.irq_pending = false;
                let rings = *self.rings();
                let fabric = self.fabric;
                ctx.send_now(
                    fabric,
                    Msi {
                        addr: rings.rx_msi_addr,
                        vector: rings.rx_msi_vector,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<DmaComplete>() {
            Ok(done) => {
                let Some(purpose) = self.dmas.remove(&done.id) else {
                    // Late completion for a transfer a reset abandoned.
                    ctx.world().stats.counter("nic.stale_completions").add(1);
                    return;
                };
                {
                    let now = ctx.now();
                    ctx.world()
                        .obs
                        .span_end("nic", Self::purpose_span(&purpose), done.id, now);
                }
                if !done.status.is_ok() {
                    self.on_bad_dma(ctx, purpose);
                    return;
                }
                match purpose {
                    DmaPurpose::TxDescBatch {
                        start_idx,
                        count,
                        staging,
                        ..
                    } => self.on_tx_descs(ctx, start_idx, count, staging),
                    DmaPurpose::TxGather { op, .. } => self.on_tx_gather_done(ctx, op),
                    DmaPurpose::RxDescBatch { count, staging, .. } => {
                        self.on_rx_descs(ctx, count, staging)
                    }
                    DmaPurpose::RxDeliver {
                        ring_idx,
                        frame_len,
                    } => self.on_rx_delivered(ctx, ring_idx, frame_len),
                }
            }
            Err(other) => panic!("NicDevice received unexpected message: {other:?}"),
        }
    }
}

/// Allocates regions, claims the BAR, and installs a NIC with a
/// pre-reserved component id (NICs and the wire reference each other, so
/// ids are reserved first).
pub fn install_nic(
    sim: &mut Simulator,
    id: ComponentId,
    fabric: ComponentId,
    wire: ComponentId,
    config: NicConfig,
    name: &str,
    port: PortId,
) -> NicHandle {
    let (bar, staging) = {
        let mem = sim.world_mut().expect_mut::<PhysMemory>();
        let bar = mem.alloc_region(&format!("{name}-bar"), 1 << 16, port);
        let staging = mem.alloc_region(&format!("{name}-staging"), 32 << 20, port);
        (bar, staging)
    };
    sim.install(id, NicDevice::new(config, fabric, wire, bar, staging));
    sim.world_mut()
        .expect_mut::<dcs_pcie::MmioRouting>()
        .claim(AddrRange::new(bar.start, 0x1000), id);
    NicHandle {
        device: id,
        bar,
        staging,
        port,
    }
}
