//! # dcs-nic — a 10 GbE NIC model with real TCP/IP framing
//!
//! The HDC Engine's NIC controller (§III-C, Figure 7b) "generates TCP/IP
//! packet headers and stores them in the header buffer … builds NIC
//! commands, puts them in a send queue, and rings the registers allocated
//! in the network device". For that claim to be testable, the NIC model
//! checks real headers: frames carry genuine Ethernet/IPv4/TCP bytes with
//! valid checksums, built and parsed by [`headers`], and the receiving node
//! delivers exactly the payload bytes the sender's storage held.
//!
//! * [`headers`] — Ethernet II / IPv4 / TCP header construction and
//!   validation (IP header checksum, TCP pseudo-header checksum).
//! * [`ring`] — send/receive descriptor rings in initiator memory
//!   (Broadcom-style producer/consumer indices, serialized descriptors).
//! * [`wire`] — the cable between two nodes: line-rate serialization plus
//!   propagation delay, in-order and lossless (a switched LAN segment).
//! * [`device`] — the NIC component: TX doorbell → descriptor fetch →
//!   payload gather → LSO segmentation → frames on the wire; RX frame →
//!   posted buffer → write-back → coalesced MSI.
//!
//! Defaults model the paper's Broadcom BCM57711 (Table V): 10 Gbps line
//! rate with ≈9 Gbps effective payload bandwidth due to packet overheads
//! (the paper's footnote 3).

pub mod device;
pub mod headers;
pub mod ring;
pub mod wire;

pub use device::{install_nic, ConfigureNic, ControlFrame, NicConfig, NicDevice, NicHandle};
pub use headers::{
    ParsedPacket, TcpFlow, ACK_MAGIC, ETH_HEADER_LEN, IPV4_HEADER_LEN, TCP_HEADER_LEN,
};
pub use ring::{RecvDescriptor, RecvWriteback, RingWriter, SendDescriptor};
pub use wire::{install_wire, FrameDelivery, TransmitDone, TransmitFrame, Wire, WireConfig};
