//! NIC descriptor rings: send descriptors (with LSO metadata) and receive
//! buffer descriptors with device write-back.
//!
//! Like the NVMe rings, descriptors are real bytes in the initiator's
//! memory (host DRAM for the kernel driver, FPGA BRAM for the HDC NIC
//! controller): the initiator serializes them, the device DMA-reads and
//! parses them, and receive completions are written back in place.

use dcs_pcie::{PhysAddr, PhysMemory};

/// A transmit descriptor: where the prebuilt headers and the payload live,
/// and whether the device should LSO-segment the payload.
///
/// This condenses the Broadcom BD (buffer descriptor) layout to the fields
/// the model interprets, serialized into 32 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendDescriptor {
    /// Address of the header template (Ethernet+IP+TCP) to use.
    pub header_addr: PhysAddr,
    /// Length of the header template in bytes.
    pub header_len: u16,
    /// Address of the (contiguous) payload to transmit.
    pub payload_addr: PhysAddr,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Large-send offload: if non-zero, the device splits the payload into
    /// segments of at most this many bytes, fixing up per-segment headers.
    pub mss: u16,
    /// Initiator-chosen cookie echoed in the completion.
    pub cookie: u32,
}

impl SendDescriptor {
    /// Serialized descriptor size.
    pub const SIZE: usize = 32;

    /// Serializes the descriptor.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        b[0..8].copy_from_slice(&self.header_addr.as_u64().to_le_bytes());
        b[8..10].copy_from_slice(&self.header_len.to_le_bytes());
        b[10..12].copy_from_slice(&self.mss.to_le_bytes());
        b[12..16].copy_from_slice(&self.cookie.to_le_bytes());
        b[16..24].copy_from_slice(&self.payload_addr.as_u64().to_le_bytes());
        b[24..28].copy_from_slice(&self.payload_len.to_le_bytes());
        b
    }

    /// Parses a serialized descriptor.
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> SendDescriptor {
        SendDescriptor {
            header_addr: PhysAddr(u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"))),
            header_len: u16::from_le_bytes([b[8], b[9]]),
            mss: u16::from_le_bytes([b[10], b[11]]),
            cookie: u32::from_le_bytes(b[12..16].try_into().expect("4 bytes")),
            payload_addr: PhysAddr(u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"))),
            payload_len: u32::from_le_bytes(b[24..28].try_into().expect("4 bytes")),
        }
    }
}

/// A receive buffer descriptor posted by the initiator: one frame lands in
/// one buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvDescriptor {
    /// Buffer address.
    pub buf_addr: PhysAddr,
    /// Buffer capacity in bytes.
    pub buf_len: u32,
}

impl RecvDescriptor {
    /// Serialized descriptor size.
    pub const SIZE: usize = 16;

    /// Serializes the descriptor.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        b[0..8].copy_from_slice(&self.buf_addr.as_u64().to_le_bytes());
        b[8..12].copy_from_slice(&self.buf_len.to_le_bytes());
        b
    }

    /// Parses a serialized descriptor.
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> RecvDescriptor {
        RecvDescriptor {
            buf_addr: PhysAddr(u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"))),
            buf_len: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
        }
    }
}

/// Device write-back after a frame lands in a posted buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvWriteback {
    /// Bytes written into the buffer (whole frame, headers included).
    pub frame_len: u32,
    /// Non-zero when the frame was delivered intact.
    pub valid: bool,
}

impl RecvWriteback {
    /// Serialized write-back size.
    pub const SIZE: usize = 8;

    /// Checksum over the meaningful bytes (0..5). Order-sensitive so any
    /// single corrupted byte — including the valid flag — mismatches.
    fn checksum(b: &[u8; Self::SIZE]) -> u8 {
        b[..5]
            .iter()
            .fold(0xA5u8, |acc, &x| acc.wrapping_add(x).rotate_left(1))
    }

    /// Serializes the write-back, stamping the checksum into byte 5.
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        b[0..4].copy_from_slice(&self.frame_len.to_le_bytes());
        b[4] = self.valid as u8;
        b[5] = Self::checksum(&b);
        b
    }

    /// Whether the serialized bytes pass the checksum. Consumers must
    /// check this before trusting `frame_len`/`valid`: a write-back that
    /// fails is a corrupted completion entry and the slot's frame must be
    /// dropped, not parsed.
    pub fn verify(b: &[u8; Self::SIZE]) -> bool {
        b[5] == Self::checksum(b)
    }

    /// Parses a serialized write-back (does not validate; see [`Self::verify`]).
    pub fn from_bytes(b: &[u8; Self::SIZE]) -> RecvWriteback {
        RecvWriteback {
            frame_len: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            valid: b[4] != 0,
        }
    }
}

/// Producer-side helper for a ring of fixed-size serialized records.
///
/// Used for both send and receive rings; the device tracks its own consumer
/// index from doorbell values.
#[derive(Clone, Debug)]
pub struct RingWriter {
    base: PhysAddr,
    entry_size: usize,
    depth: u16,
    tail: u16,
}

impl RingWriter {
    /// A writer over a ring of `depth` entries of `entry_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(base: PhysAddr, entry_size: usize, depth: u16) -> Self {
        assert!(depth > 0, "ring depth must be positive");
        RingWriter {
            base,
            entry_size,
            depth,
            tail: 0,
        }
    }

    /// Ring base address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Producer index to write to the doorbell.
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Writes one serialized record and advances the producer index,
    /// returning the slot address.
    pub fn push(&mut self, mem: &mut PhysMemory, record: &[u8]) -> PhysAddr {
        assert_eq!(record.len(), self.entry_size, "record size mismatch");
        let slot = self.base + self.tail as u64 * self.entry_size as u64;
        mem.write(slot, record);
        self.tail = (self.tail + 1) % self.depth;
        slot
    }

    /// Address of slot `index`.
    pub fn slot(&self, index: u16) -> PhysAddr {
        self.base + (index % self.depth) as u64 * self.entry_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_pcie::PortId;

    #[test]
    fn send_descriptor_roundtrip() {
        let d = SendDescriptor {
            header_addr: PhysAddr(0x1234),
            header_len: 54,
            payload_addr: PhysAddr(0xABCD_0000),
            payload_len: 65536,
            mss: 1448,
            cookie: 0xDEAD_BEEF,
        };
        assert_eq!(SendDescriptor::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn recv_descriptor_and_writeback_roundtrip() {
        let d = RecvDescriptor {
            buf_addr: PhysAddr(0x9000),
            buf_len: 2048,
        };
        assert_eq!(RecvDescriptor::from_bytes(&d.to_bytes()), d);
        let w = RecvWriteback {
            frame_len: 1502,
            valid: true,
        };
        assert_eq!(RecvWriteback::from_bytes(&w.to_bytes()), w);
    }

    #[test]
    fn writeback_checksum_detects_any_single_byte_flip() {
        let w = RecvWriteback {
            frame_len: 1502,
            valid: true,
        };
        let good = w.to_bytes();
        assert!(RecvWriteback::verify(&good));
        // Flip one bit in each covered byte (incl. the checksum itself).
        for byte in 0..6 {
            for bit in 0..8 {
                let mut bad = good;
                bad[byte] ^= 1 << bit;
                assert!(
                    !RecvWriteback::verify(&bad),
                    "byte {byte} bit {bit} escaped"
                );
            }
        }
    }

    #[test]
    fn ring_writer_wraps() {
        let mut mem = PhysMemory::new();
        let r = mem.alloc_region("ring", 4096, PortId::ROOT);
        let mut ring = RingWriter::new(r.start, 16, 3);
        let d = RecvDescriptor {
            buf_addr: PhysAddr(0x1000),
            buf_len: 64,
        };
        let s0 = ring.push(&mut mem, &d.to_bytes());
        let s1 = ring.push(&mut mem, &d.to_bytes());
        let s2 = ring.push(&mut mem, &d.to_bytes());
        let s3 = ring.push(&mut mem, &d.to_bytes());
        assert_eq!(s0, r.start);
        assert_eq!(s1, r.start + 16);
        assert_eq!(s2, r.start + 32);
        assert_eq!(s3, r.start, "wraps to slot 0");
        assert_eq!(ring.slot(4), r.start + 16);
        assert_eq!(ring.tail(), 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn ring_rejects_wrong_record_size() {
        let mut mem = PhysMemory::new();
        let r = mem.alloc_region("ring", 4096, PortId::ROOT);
        let mut ring = RingWriter::new(r.start, 16, 3);
        ring.push(&mut mem, &[0u8; 8]);
    }
}
