//! Randomized property tests of the TCP/IP framing and descriptor
//! formats, driven by the deterministic in-repo [`Rng`] (the container
//! builds offline, so no external property-testing framework is
//! available).

use dcs_nic::headers::{build_frame, build_template, parse_frame, parse_template};
use dcs_nic::{RecvDescriptor, RecvWriteback, SendDescriptor, TcpFlow};
use dcs_pcie::PhysAddr;
use dcs_sim::Rng;

fn random_flow(rng: &mut Rng) -> TcpFlow {
    let mut src_mac = [0u8; 6];
    let mut dst_mac = [0u8; 6];
    let mut src_ip = [0u8; 4];
    let mut dst_ip = [0u8; 4];
    rng.fill_bytes(&mut src_mac);
    rng.fill_bytes(&mut dst_mac);
    rng.fill_bytes(&mut src_ip);
    rng.fill_bytes(&mut dst_ip);
    TcpFlow {
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port: rng.next_u64() as u16,
        dst_port: rng.next_u64() as u16,
    }
}

fn random_bytes(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.gen_range(lo as u64..hi as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Frames round-trip: any flow, seq/ack, and payload up to one MSS.
#[test]
fn frame_roundtrip() {
    let mut rng = Rng::new(0xF2A4E);
    for _ in 0..128 {
        let flow = random_flow(&mut rng);
        let seq = rng.next_u64() as u32;
        let ack = rng.next_u64() as u32;
        let payload = random_bytes(&mut rng, 0, 1448);
        let frame = build_frame(&flow, seq, ack, &payload);
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed.flow, flow);
        assert_eq!(parsed.seq, seq);
        assert_eq!(parsed.ack, ack);
        assert_eq!(
            &frame[parsed.payload_offset..parsed.payload_offset + parsed.payload_len],
            payload.as_slice()
        );
    }
}

/// Any single-byte corruption of a frame is detected.
#[test]
fn corruption_detected() {
    let mut rng = Rng::new(0xC0_2217);
    for _ in 0..128 {
        let flow = random_flow(&mut rng);
        let payload = random_bytes(&mut rng, 1, 512);
        let mut frame = build_frame(&flow, 1, 2, &payload);
        let idx = rng.gen_range(0..frame.len() as u64) as usize;
        let flip = rng.gen_range(1..256) as u8;
        frame[idx] ^= flip;
        // Either the parse fails, or (for corrupted MAC bytes, which carry
        // no checksum — as on real Ethernet, where the FCS the model folds
        // into the wire covers them) the decoded flow differs.
        match parse_frame(&frame) {
            Err(_) => {}
            Ok(parsed) => assert_ne!(parsed.flow, flow, "corruption at {idx} unnoticed"),
        }
    }
}

/// Header templates round-trip.
#[test]
fn template_roundtrip() {
    let mut rng = Rng::new(0x7E4_B1A);
    for _ in 0..128 {
        let flow = random_flow(&mut rng);
        let seq = rng.next_u64() as u32;
        let ack = rng.next_u64() as u32;
        let t = build_template(&flow, seq, ack);
        let (f2, s2, a2) = parse_template(&t).unwrap();
        assert_eq!(f2, flow);
        assert_eq!(s2, seq);
        assert_eq!(a2, ack);
    }
}

/// Descriptor wire formats round-trip.
#[test]
fn descriptors_roundtrip() {
    let mut rng = Rng::new(0xDE_5C21);
    for _ in 0..128 {
        let d = SendDescriptor {
            header_addr: PhysAddr(rng.next_u64()),
            header_len: rng.next_u64() as u16,
            payload_addr: PhysAddr(rng.next_u64()),
            payload_len: rng.next_u64() as u32,
            mss: rng.next_u64() as u16,
            cookie: rng.next_u64() as u32,
        };
        assert_eq!(SendDescriptor::from_bytes(&d.to_bytes()), d);
        let r = RecvDescriptor {
            buf_addr: PhysAddr(rng.next_u64()),
            buf_len: rng.next_u64() as u32,
        };
        assert_eq!(RecvDescriptor::from_bytes(&r.to_bytes()), r);
        let w = RecvWriteback {
            frame_len: rng.next_u64() as u32,
            valid: rng.gen_bool(0.5),
        };
        assert_eq!(RecvWriteback::from_bytes(&w.to_bytes()), w);
    }
}
