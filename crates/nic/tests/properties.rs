//! Property-based tests of the TCP/IP framing and descriptor formats.

use dcs_nic::headers::{build_frame, build_template, parse_frame, parse_template};
use dcs_nic::{RecvDescriptor, RecvWriteback, SendDescriptor, TcpFlow};
use dcs_pcie::PhysAddr;
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = TcpFlow> {
    (
        proptest::array::uniform6(any::<u8>()),
        proptest::array::uniform6(any::<u8>()),
        proptest::array::uniform4(any::<u8>()),
        proptest::array::uniform4(any::<u8>()),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port)| TcpFlow {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frames round-trip: any flow, seq/ack, and payload up to one MSS.
    #[test]
    fn frame_roundtrip(
        flow in arb_flow(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1448),
    ) {
        let frame = build_frame(&flow, seq, ack, &payload);
        let parsed = parse_frame(&frame).unwrap();
        prop_assert_eq!(parsed.flow, flow);
        prop_assert_eq!(parsed.seq, seq);
        prop_assert_eq!(parsed.ack, ack);
        prop_assert_eq!(
            &frame[parsed.payload_offset..parsed.payload_offset + parsed.payload_len],
            payload.as_slice()
        );
    }

    /// Any single-byte corruption of a frame is detected.
    #[test]
    fn corruption_detected(
        flow in arb_flow(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        idx in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut frame = build_frame(&flow, 1, 2, &payload);
        let idx = idx % frame.len();
        frame[idx] ^= flip;
        // Either the parse fails, or (for corrupted MAC bytes, which carry
        // no checksum — as on real Ethernet, where the FCS the model folds
        // into the wire covers them) the decoded flow differs.
        match parse_frame(&frame) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed.flow, flow, "corruption at {} unnoticed", idx),
        }
    }

    /// Header templates round-trip.
    #[test]
    fn template_roundtrip(flow in arb_flow(), seq in any::<u32>(), ack in any::<u32>()) {
        let t = build_template(&flow, seq, ack);
        let (f2, s2, a2) = parse_template(&t).unwrap();
        prop_assert_eq!(f2, flow);
        prop_assert_eq!(s2, seq);
        prop_assert_eq!(a2, ack);
    }

    /// Descriptor wire formats round-trip.
    #[test]
    fn descriptors_roundtrip(
        header_addr in any::<u64>(),
        header_len in any::<u16>(),
        payload_addr in any::<u64>(),
        payload_len in any::<u32>(),
        mss in any::<u16>(),
        cookie in any::<u32>(),
        buf_len in any::<u32>(),
        frame_len in any::<u32>(),
        valid in any::<bool>(),
    ) {
        let d = SendDescriptor {
            header_addr: PhysAddr(header_addr),
            header_len,
            payload_addr: PhysAddr(payload_addr),
            payload_len,
            mss,
            cookie,
        };
        prop_assert_eq!(SendDescriptor::from_bytes(&d.to_bytes()), d);
        let r = RecvDescriptor { buf_addr: PhysAddr(payload_addr), buf_len };
        prop_assert_eq!(RecvDescriptor::from_bytes(&r.to_bytes()), r);
        let w = RecvWriteback { frame_len, valid };
        prop_assert_eq!(RecvWriteback::from_bytes(&w.to_bytes()), w);
    }
}
