//! End-to-end NIC tests: two NICs on separate "nodes" joined by a wire,
//! each driven by a minimal initiator. Verifies LSO segmentation, real
//! header validation on the receive side, drop accounting, and wire
//! bandwidth behaviour.

use dcs_nic::headers::{build_template, parse_frame};
use dcs_nic::{
    install_nic, install_wire, ConfigureNic, NicConfig, NicHandle, RecvDescriptor, RecvWriteback,
    RingWriter, SendDescriptor, TcpFlow, WireConfig,
};
use dcs_pcie::{
    AddrRange, MmioRouting, MmioWrite, MsiDelivery, PcieConfig, PcieFabric, PhysAddr, PhysMemory,
    PortId,
};
use dcs_sim::{time, Component, ComponentId, Ctx, Msg, Simulator};

/// Counts MSIs per vector; the test harness inspects memory directly.
struct IrqSink;

impl Component for IrqSink {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let d = msg
            .downcast::<MsiDelivery>()
            .expect("sink only receives MSIs");
        match d.vector {
            1 => ctx.world().stats.counter("sink.tx_irq").add(1),
            2 => ctx.world().stats.counter("sink.rx_irq").add(1),
            v => panic!("unexpected vector {v}"),
        }
    }
}

struct Node {
    nic: NicHandle,
    mem_region: AddrRange,
    send_ring: RingWriter,
    recv_ring: RingWriter,
    wb_base: PhysAddr,
}

struct Rig {
    sim: Simulator,
    fabric: ComponentId,
    a: Node,
    b: Node,
}

fn setup(wire_cfg: WireConfig) -> Rig {
    let mut sim = Simulator::new(7);
    sim.world_mut().insert(PhysMemory::new());
    sim.world_mut().insert(MmioRouting::new());
    let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
    let nic_a_id = sim.reserve("nic-a");
    let nic_b_id = sim.reserve("nic-b");
    let wire = install_wire(&mut sim, wire_cfg, nic_a_id, nic_b_id);
    let nic_a = install_nic(
        &mut sim,
        nic_a_id,
        fabric,
        wire,
        NicConfig::default(),
        "nic-a",
        PortId(1),
    );
    let nic_b = install_nic(
        &mut sim,
        nic_b_id,
        fabric,
        wire,
        NicConfig::default(),
        "nic-b",
        PortId(2),
    );
    let sink = sim.add("irq-sink", IrqSink);

    let mk_node = |sim: &mut Simulator, nic: NicHandle, name: &str| {
        let region = sim.world_mut().expect_mut::<PhysMemory>().alloc_region(
            &format!("{name}-host"),
            16 << 20,
            PortId::ROOT,
        );
        let send_base = region.start;
        let recv_base = region.start + 0x10000;
        let wb_base = region.start + 0x20000;
        let msi_base = region.start + 0x30000;
        sim.world_mut()
            .expect_mut::<MmioRouting>()
            .claim(AddrRange::new(msi_base, 0x100), sink);
        sim.kickoff(
            nic.device,
            ConfigureNic {
                send_ring_base: send_base,
                send_ring_depth: 256,
                recv_ring_base: recv_base,
                recv_ring_depth: 1024,
                wb_ring_base: wb_base,
                tx_msi_addr: msi_base,
                tx_msi_vector: 1,
                rx_msi_addr: msi_base + 8,
                rx_msi_vector: 2,
            },
        );
        Node {
            nic,
            mem_region: region,
            send_ring: RingWriter::new(send_base, SendDescriptor::SIZE, 256),
            recv_ring: RingWriter::new(recv_base, RecvDescriptor::SIZE, 1024),
            wb_base,
        }
    };
    let a = mk_node(&mut sim, nic_a, "a");
    let b = mk_node(&mut sim, nic_b, "b");
    Rig { sim, fabric, a, b }
}

/// Posts `n` receive buffers of `size` bytes on a node, returning the first
/// buffer's address (buffers are contiguous).
fn post_recv(rig: &mut Rig, on_b: bool, n: usize, size: u32) -> PhysAddr {
    let node = if on_b { &mut rig.b } else { &mut rig.a };
    let bufs = node.mem_region.start + 0x100000;
    for i in 0..n {
        let d = RecvDescriptor {
            buf_addr: bufs + (i as u64) * size as u64,
            buf_len: size,
        };
        let mem = rig.sim.world_mut().expect_mut::<PhysMemory>();
        node.recv_ring.push(mem, &d.to_bytes());
    }
    let tail = node.recv_ring.tail();
    let db = node.nic.rx_doorbell();
    rig.sim.kickoff(
        rig.fabric,
        MmioWrite {
            addr: db,
            data: (tail as u32).to_le_bytes().to_vec(),
        },
    );
    bufs
}

/// Stages a payload + header template on node A and rings the TX doorbell.
fn send_payload(rig: &mut Rig, flow: &TcpFlow, seq: u32, payload: &[u8], mss: u16) {
    let node = &mut rig.a;
    let hdr_addr = node.mem_region.start + 0x40000;
    let pay_addr = node.mem_region.start + 0x200000;
    let template = build_template(flow, seq, 0);
    {
        let mem = rig.sim.world_mut().expect_mut::<PhysMemory>();
        mem.write(hdr_addr, &template);
        mem.write(pay_addr, payload);
    }
    let desc = SendDescriptor {
        header_addr: hdr_addr,
        header_len: template.len() as u16,
        payload_addr: pay_addr,
        payload_len: payload.len() as u32,
        mss,
        cookie: 1,
    };
    {
        let mem = rig.sim.world_mut().expect_mut::<PhysMemory>();
        node.send_ring.push(mem, &desc.to_bytes());
    }
    let tail = node.send_ring.tail();
    let db = node.nic.tx_doorbell();
    rig.sim.kickoff(
        rig.fabric,
        MmioWrite {
            addr: db,
            data: (tail as u32).to_le_bytes().to_vec(),
        },
    );
}

/// Reads back the delivered frames on node B using the write-back ring and
/// reassembles the payload in sequence order.
fn gather_payload(rig: &Rig, bufs: PhysAddr, buf_size: u32, frames: usize) -> Vec<u8> {
    let mem = rig.sim.world().expect::<PhysMemory>();
    let mut out = Vec::new();
    for i in 0..frames {
        let wb_raw: [u8; RecvWriteback::SIZE] = mem
            .read(
                rig.b.wb_base + (i as u64) * RecvWriteback::SIZE as u64,
                RecvWriteback::SIZE,
            )
            .try_into()
            .unwrap();
        let wb = RecvWriteback::from_bytes(&wb_raw);
        assert!(wb.valid, "frame {i} writeback invalid");
        let frame = mem.read(bufs + (i as u64) * buf_size as u64, wb.frame_len as usize);
        let parsed = parse_frame(&frame).expect("delivered frame must validate");
        out.extend_from_slice(
            &frame[parsed.payload_offset..parsed.payload_offset + parsed.payload_len],
        );
    }
    out
}

#[test]
fn lso_send_is_segmented_and_reassembles() {
    let mut rig = setup(WireConfig::default());
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let flow = TcpFlow::example(1, 2, 40000, 8080);
    let bufs = post_recv(&mut rig, true, 64, 2048);
    send_payload(&mut rig, &flow, 7777, &payload, 1448);
    rig.sim.run();
    let frames = payload.len().div_ceil(1448);
    assert_eq!(
        rig.sim.world().stats.counter_value("nic.tx_frames"),
        frames as u64
    );
    assert_eq!(
        rig.sim.world().stats.counter_value("nic.rx_delivered"),
        frames as u64
    );
    assert_eq!(
        rig.sim
            .world()
            .stats
            .counter_value("nic.rx_dropped_no_buffer"),
        0
    );
    assert_eq!(rig.sim.world().stats.counter_value("sink.tx_irq"), 1);
    assert!(rig.sim.world().stats.counter_value("sink.rx_irq") >= 1);
    let got = gather_payload(&rig, bufs, 2048, frames);
    assert_eq!(got, payload);
}

#[test]
fn sequence_numbers_advance_per_segment() {
    let mut rig = setup(WireConfig::default());
    let payload = vec![0xAB; 4000];
    let flow = TcpFlow::example(1, 2, 1, 2);
    let bufs = post_recv(&mut rig, true, 8, 2048);
    send_payload(&mut rig, &flow, 100, &payload, 1448);
    rig.sim.run();
    let mem = rig.sim.world().expect::<PhysMemory>();
    let mut seqs = Vec::new();
    for i in 0..3 {
        let wb_raw: [u8; 8] = mem.read(rig.b.wb_base + i * 8, 8).try_into().unwrap();
        let wb = RecvWriteback::from_bytes(&wb_raw);
        let frame = mem.read(bufs + i * 2048, wb.frame_len as usize);
        seqs.push(parse_frame(&frame).unwrap().seq);
    }
    assert_eq!(seqs, vec![100, 100 + 1448, 100 + 2896]);
}

#[test]
fn frames_without_posted_buffers_are_dropped() {
    let mut rig = setup(WireConfig::default());
    let payload = vec![1u8; 3000];
    let flow = TcpFlow::example(1, 2, 9, 9);
    // No buffers posted on B.
    send_payload(&mut rig, &flow, 0, &payload, 1448);
    rig.sim.run();
    assert_eq!(
        rig.sim
            .world()
            .stats
            .counter_value("nic.rx_dropped_no_buffer"),
        3
    );
    assert_eq!(rig.sim.world().stats.counter_value("nic.rx_delivered"), 0);
}

#[test]
fn wire_bandwidth_bounds_transfer_time() {
    let mut rig = setup(WireConfig::default());
    // 1 MiB needs ~725 frames; the 1024-deep ring can post at most 1023
    // descriptors before the producer index would lap the consumer.
    let len = 1 << 20; // 1 MiB
    let payload: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
    let flow = TcpFlow::example(1, 2, 4, 5);
    post_recv(&mut rig, true, 1000, 2048);
    // 1 MiB exceeds a single LSO send; issue several 64 KiB descriptors.
    for (i, chunk) in payload.chunks(64 * 1024).enumerate() {
        // Stage each chunk at distinct addresses.
        let node = &mut rig.a;
        let hdr_addr = node.mem_region.start + 0x40000 + (i as u64) * 128;
        let pay_addr = node.mem_region.start + 0x200000 + (i as u64) * 0x10000;
        let template = build_template(&flow, (i * 64 * 1024) as u32, 0);
        {
            let mem = rig.sim.world_mut().expect_mut::<PhysMemory>();
            mem.write(hdr_addr, &template);
            mem.write(pay_addr, chunk);
        }
        let desc = SendDescriptor {
            header_addr: hdr_addr,
            header_len: template.len() as u16,
            payload_addr: pay_addr,
            payload_len: chunk.len() as u32,
            mss: 1448,
            cookie: i as u32,
        };
        let mem = rig.sim.world_mut().expect_mut::<PhysMemory>();
        node.send_ring.push(mem, &desc.to_bytes());
    }
    let tail = rig.a.send_ring.tail();
    let db = rig.a.nic.tx_doorbell();
    rig.sim.kickoff(
        rig.fabric,
        MmioWrite {
            addr: db,
            data: (tail as u32).to_le_bytes().to_vec(),
        },
    );
    rig.sim.run();
    // Time floor: payload + headers + framing at 10 Gbps. Each 64 KiB
    // descriptor segments independently (46 frames per chunk).
    let frames = (len as usize).div_ceil(64 * 1024) * (64 * 1024usize).div_ceil(1448);
    let wire_bytes = len as usize + frames * (54 + 24);
    let floor = dcs_sim::Bandwidth::gbps(10.0).transfer_time(wire_bytes);
    let t = rig.sim.now().as_nanos();
    assert!(t >= floor, "{t} >= {floor}");
    assert!(t < floor + time::us(200), "{t} too far above floor {floor}");
    assert_eq!(
        rig.sim.world().stats.counter_value("nic.rx_delivered"),
        frames as u64
    );
}

#[test]
fn non_lso_small_send_is_one_frame() {
    let mut rig = setup(WireConfig::default());
    let payload = b"tiny message".to_vec();
    let flow = TcpFlow::example(3, 4, 100, 200);
    let bufs = post_recv(&mut rig, true, 4, 2048);
    send_payload(&mut rig, &flow, 5, &payload, 0); // mss=0: device default, 1 frame
    rig.sim.run();
    assert_eq!(rig.sim.world().stats.counter_value("nic.tx_frames"), 1);
    let got = gather_payload(&rig, bufs, 2048, 1);
    assert_eq!(got, payload);
}
