//! Measured outcome of a cluster run.

use dcs_sim::Histogram;

/// What one node contributed within the measurement window.
#[derive(Clone, Debug, Default)]
pub struct NodePerf {
    /// Requests completed by the node.
    pub requests: u64,
    /// Payload bytes the node served.
    pub bytes: u64,
    /// Requests shed at admission (queue full).
    pub rejected: u64,
    /// Requests that completed with an error.
    pub failures: u64,
    /// Node CPU utilization (fraction of all cores) over the window.
    pub cpu_utilization: f64,
}

/// Cluster-wide measurements over the (warm-up-trimmed) window.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Measured span, ns.
    pub span_ns: u64,
    /// Requests completed cluster-wide.
    pub requests: u64,
    /// Payload bytes served cluster-wide (goodput numerator).
    pub bytes: u64,
    /// Requests shed at admission cluster-wide.
    pub rejected: u64,
    /// Requests completed with an error.
    pub failures: u64,
    /// End-to-end request latency (arrival at the front end to response
    /// fully received back at the front end), ns.
    pub latency: Histogram,
    /// Per-node contributions, indexed by node id.
    pub per_node: Vec<NodePerf>,
}

impl ClusterReport {
    /// Served goodput in Gbps (completed, non-failed payload only).
    pub fn goodput_gbps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.span_ns as f64
    }

    /// Fraction of admitted-or-shed requests that were shed.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.requests + self.rejected + self.failures;
        if offered == 0 {
            return 0.0;
        }
        self.rejected as f64 / offered as f64
    }

    /// Imbalance of served bytes across nodes: max node over mean node
    /// (1.0 = perfectly even). Zero-traffic runs report 1.0.
    pub fn imbalance(&self) -> f64 {
        if self.per_node.is_empty() || self.bytes == 0 {
            return 1.0;
        }
        let max = self.per_node.iter().map(|n| n.bytes).max().unwrap_or(0) as f64;
        let mean = self.bytes as f64 / self.per_node.len() as f64;
        max / mean
    }

    /// A percentile of end-to-end latency in microseconds (0 if no
    /// samples).
    pub fn latency_us(&self, p: f64) -> f64 {
        self.latency.percentile(p).unwrap_or(0) as f64 / 1000.0
    }

    /// Renders the report as an aligned block for the repro harness.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "{label}: {:.2} Gbps goodput, {} reqs, shed {:.1}%, p50/p99/p999 {:.0}/{:.0}/{:.0} us, imbalance {:.2}\n",
            self.goodput_gbps(),
            self.requests,
            self.rejection_rate() * 100.0,
            self.latency_us(50.0),
            self.latency_us(99.0),
            self.latency_us(99.9),
            self.imbalance(),
        );
        for (i, n) in self.per_node.iter().enumerate() {
            out.push_str(&format!(
                "    node{i:<2} {:>6} reqs {:>8.2} Gbps {:>5} shed {:>3} fail  cpu {:>5.1}%\n",
                n.requests,
                n.bytes as f64 * 8.0 / self.span_ns.max(1) as f64,
                n.rejected,
                n.failures,
                n.cpu_utilization * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ClusterReport {
        let mut latency = Histogram::new();
        for v in [100_000u64, 200_000, 300_000, 4_000_000] {
            latency.record(v);
        }
        ClusterReport {
            span_ns: 1_000_000_000,
            requests: 4,
            bytes: 500_000_000,
            rejected: 1,
            failures: 0,
            latency,
            per_node: vec![
                NodePerf { requests: 3, bytes: 400_000_000, ..Default::default() },
                NodePerf { requests: 1, bytes: 100_000_000, ..Default::default() },
            ],
        }
    }

    #[test]
    fn goodput_rejection_imbalance() {
        let r = report();
        assert!((r.goodput_gbps() - 4.0).abs() < 1e-9);
        assert!((r.rejection_rate() - 0.2).abs() < 1e-9);
        // max 400MB over mean 250MB.
        assert!((r.imbalance() - 1.6).abs() < 1e-9);
        assert!(r.latency_us(50.0) >= 200.0);
        let text = r.render("test");
        assert!(text.contains("4.00 Gbps"), "{text}");
        assert!(text.contains("node0"), "{text}");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ClusterReport {
            span_ns: 0,
            requests: 0,
            bytes: 0,
            rejected: 0,
            failures: 0,
            latency: Histogram::new(),
            per_node: vec![],
        };
        assert_eq!(r.goodput_gbps(), 0.0);
        assert_eq!(r.rejection_rate(), 0.0);
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.latency_us(99.0), 0.0);
    }
}
