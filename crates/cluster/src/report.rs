//! Measured outcome of a cluster run.

use dcs_sim::Histogram;

/// What one node contributed within the measurement window.
#[derive(Clone, Debug, Default)]
pub struct NodePerf {
    /// Requests completed by the node.
    pub requests: u64,
    /// Payload bytes the node served.
    pub bytes: u64,
    /// Requests shed at admission (queue full).
    pub rejected: u64,
    /// Requests that completed with an error.
    pub failures: u64,
    /// Requests lost on the node (crashed or hung with them in flight,
    /// retry budget exhausted).
    pub lost: u64,
    /// Node CPU utilization (fraction of all cores) over the window.
    pub cpu_utilization: f64,
}

/// What one tenant of the store layer experienced over the window.
///
/// A tenant's *SLO attainment* is the fraction of its resolved requests
/// that were both served *and* under its latency objective — a denied or
/// shed request counts against the SLO just like a slow one, so shedding
/// a tenant cannot flatter its numbers.
#[derive(Clone, Debug, Default)]
pub struct TenantPerf {
    /// Tenant name (namespace).
    pub name: String,
    /// Requests served successfully.
    pub ok: u64,
    /// Requests denied: shed at admission, unroutable, or lost in flight.
    pub denied: u64,
    /// Payload bytes served.
    pub bytes: u64,
    /// GETs answered from a node's read cache (NVMe path skipped).
    pub cache_hits: u64,
    /// GETs that went to flash.
    pub cache_misses: u64,
    /// The tenant's latency objective, ns (0 = no SLO declared).
    pub slo_ns: u64,
    /// Served requests that finished within `slo_ns`.
    pub slo_met: u64,
    /// End-to-end latency of the tenant's served requests, ns.
    pub latency: Histogram,
}

impl TenantPerf {
    /// Fraction of resolved requests served within the SLO (vacuously 1
    /// when the tenant saw no traffic; equals availability when no SLO is
    /// declared because every served request then counts as met).
    pub fn slo_attainment(&self) -> f64 {
        ratio(self.slo_met, self.ok + self.denied)
    }

    /// Cache hit rate over the tenant's GETs (0 when it issued none).
    pub fn cache_hit_rate(&self) -> f64 {
        let gets = self.cache_hits + self.cache_misses;
        if gets == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / gets as f64
    }

    /// A percentile of the tenant's latency in microseconds.
    pub fn latency_us(&self, p: f64) -> f64 {
        self.latency.percentile(p).unwrap_or(0) as f64 / 1000.0
    }
}

/// Availability and tail latency over one slice of the window (the slices
/// are before / during / after the injected node failure).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhasePerf {
    /// Requests that arrived in the phase and were resolved (ok or not).
    pub requests: u64,
    /// Of those, requests served successfully.
    pub ok: u64,
    /// p99 end-to-end latency of the phase's served requests, ns.
    pub p99_ns: u64,
}

impl PhasePerf {
    /// Fraction of the phase's resolved requests that were served.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.ok as f64 / self.requests as f64
    }
}

/// Cluster-wide measurements over the (warm-up-trimmed) window.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Measured span, ns.
    pub span_ns: u64,
    /// Requests completed cluster-wide.
    pub requests: u64,
    /// Payload bytes served cluster-wide (goodput numerator).
    pub bytes: u64,
    /// Requests shed at admission cluster-wide.
    pub rejected: u64,
    /// Requests completed with an error.
    pub failures: u64,
    /// GETs served successfully / denied (shed, unroutable, or lost).
    pub get_ok: u64,
    /// See [`get_ok`](Self::get_ok).
    pub get_denied: u64,
    /// PUTs served successfully / denied.
    pub put_ok: u64,
    /// See [`put_ok`](Self::put_ok).
    pub put_denied: u64,
    /// Hedged second GETs issued, and how many beat the primary leg.
    pub hedged: u64,
    /// See [`hedged`](Self::hedged).
    pub hedge_wins: u64,
    /// Requests re-dispatched to another replica after their node died.
    pub retried: u64,
    /// Requests lost outright (in flight on a failed node, budget spent).
    pub lost: u64,
    /// PUTs written to a surviving replica because the primary was
    /// unroutable.
    pub put_fallbacks: u64,
    /// Healthy → Degraded transitions observed (contained-error bursts:
    /// corruptions the node detected and recovered in place).
    pub degraded_marks: u64,
    /// Crash-to-`Dead` detection latency, when a node fault was injected
    /// and detected.
    pub detection_ns: Option<u64>,
    /// Fault-to-`Slow` differential-detection latency, when a gray fault
    /// was injected on a node and the EWMA comparison caught it.
    pub slow_detection_ns: Option<u64>,
    /// Healthy → Slow evictions by differential detection.
    pub slow_evictions: u64,
    /// Slow → Healthy readmissions after the hysteresis cleared.
    pub slow_readmissions: u64,
    /// Bytes re-replicated off the dead node.
    pub repair_bytes: u64,
    /// Detection-to-repair-complete latency, when repair ran.
    pub repair_ns: Option<u64>,
    /// Bytes streamed back to a rejoining node by anti-entropy repair.
    pub rejoin_bytes: u64,
    /// Restart-to-routable latency of the rejoin lifecycle, when a node
    /// rejoined.
    pub rejoin_ns: Option<u64>,
    /// Bytes of cache warm-up transfer to a rejoining node (store runs).
    pub warmup_bytes: u64,
    /// Availability before / during / after the failure window, when a
    /// node fault was injected.
    pub phases: Option<[PhasePerf; 3]>,
    /// GETs answered from a node read cache cluster-wide (store runs).
    pub cache_hits: u64,
    /// GETs that missed every cache and went to flash (store runs).
    pub cache_misses: u64,
    /// Cached GET responses that raced a write and returned bytes older
    /// than the committed version. Must be zero: the store invalidates on
    /// write commit, and the failover suite asserts it stays zero.
    pub stale_served: u64,
    /// End-to-end request latency (arrival at the front end to response
    /// fully received back at the front end), ns.
    pub latency: Histogram,
    /// Per-node contributions, indexed by node id.
    pub per_node: Vec<NodePerf>,
    /// Per-tenant contributions (store runs; empty for the Swift mix).
    pub per_tenant: Vec<TenantPerf>,
}

impl Default for ClusterReport {
    fn default() -> Self {
        ClusterReport {
            span_ns: 0,
            requests: 0,
            bytes: 0,
            rejected: 0,
            failures: 0,
            get_ok: 0,
            get_denied: 0,
            put_ok: 0,
            put_denied: 0,
            hedged: 0,
            hedge_wins: 0,
            retried: 0,
            lost: 0,
            put_fallbacks: 0,
            degraded_marks: 0,
            detection_ns: None,
            slow_detection_ns: None,
            slow_evictions: 0,
            slow_readmissions: 0,
            repair_bytes: 0,
            repair_ns: None,
            rejoin_bytes: 0,
            rejoin_ns: None,
            warmup_bytes: 0,
            phases: None,
            cache_hits: 0,
            cache_misses: 0,
            stale_served: 0,
            latency: Histogram::new(),
            per_node: vec![],
            per_tenant: vec![],
        }
    }
}

impl ClusterReport {
    /// Served goodput in Gbps (completed, non-failed payload only).
    pub fn goodput_gbps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.span_ns as f64
    }

    /// Fraction of admitted-or-shed requests that were shed.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.requests + self.rejected + self.failures;
        if offered == 0 {
            return 0.0;
        }
        self.rejected as f64 / offered as f64
    }

    /// Fraction of resolved GETs that were served (1.0 when no GETs ran).
    pub fn get_availability(&self) -> f64 {
        ratio(self.get_ok, self.get_ok + self.get_denied)
    }

    /// Fraction of resolved PUTs that were served (write availability).
    pub fn put_availability(&self) -> f64 {
        ratio(self.put_ok, self.put_ok + self.put_denied)
    }

    /// Fraction of all resolved requests that were served.
    pub fn availability(&self) -> f64 {
        ratio(
            self.get_ok + self.put_ok,
            self.get_ok + self.get_denied + self.put_ok + self.put_denied,
        )
    }

    /// Imbalance of served bytes across nodes: max node over mean node
    /// (1.0 = perfectly even). Zero-traffic runs report 1.0.
    pub fn imbalance(&self) -> f64 {
        if self.per_node.is_empty() || self.bytes == 0 {
            return 1.0;
        }
        let max = self.per_node.iter().map(|n| n.bytes).max().unwrap_or(0) as f64;
        let mean = self.bytes as f64 / self.per_node.len() as f64;
        max / mean
    }

    /// A percentile of end-to-end latency in microseconds (0 if no
    /// samples).
    pub fn latency_us(&self, p: f64) -> f64 {
        self.latency.percentile(p).unwrap_or(0) as f64 / 1000.0
    }

    /// Cluster-wide cache hit rate over GETs that reached a cache
    /// decision (0 when the run had no cache).
    pub fn cache_hit_rate(&self) -> f64 {
        let gets = self.cache_hits + self.cache_misses;
        if gets == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / gets as f64
    }

    /// Renders the report as an aligned block for the repro harness.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "{label}: {:.2} Gbps goodput, {} reqs, shed {:.1}%, p50/p99/p999 {:.0}/{:.0}/{:.0} us, imbalance {:.2}\n",
            self.goodput_gbps(),
            self.requests,
            self.rejection_rate() * 100.0,
            self.latency_us(50.0),
            self.latency_us(99.0),
            self.latency_us(99.9),
            self.imbalance(),
        );
        if self.hedged + self.retried + self.lost + self.put_fallbacks + self.degraded_marks > 0
            || self.detection_ns.is_some()
        {
            out.push_str(&format!(
                "    health: GET avail {:.2}%, PUT avail {:.2}%, shed {}, hedged {} (wins {}), retried {}, lost {}, put-fallbacks {}, degraded {}\n",
                self.get_availability() * 100.0,
                self.put_availability() * 100.0,
                self.rejected,
                self.hedged,
                self.hedge_wins,
                self.retried,
                self.lost,
                self.put_fallbacks,
                self.degraded_marks,
            ));
        }
        if let Some(detect) = self.detection_ns {
            let repair = match self.repair_ns {
                Some(ns) => format!(
                    "repaired {:.1} MiB in {:.2} ms",
                    self.repair_bytes as f64 / (1 << 20) as f64,
                    ns as f64 / 1e6
                ),
                None => "no repair".to_string(),
            };
            out.push_str(&format!(
                "    failure: detected in {:.0} us, {repair}\n",
                detect as f64 / 1000.0
            ));
        }
        if self.slow_detection_ns.is_some() || self.slow_evictions + self.slow_readmissions > 0 {
            let detect = match self.slow_detection_ns {
                Some(ns) => format!("detected in {:.0} us", ns as f64 / 1000.0),
                None => "not detected on the faulted node".to_string(),
            };
            out.push_str(&format!(
                "    gray: {detect}, slow-evicted {}, readmitted {}\n",
                self.slow_evictions, self.slow_readmissions,
            ));
        }
        if self.rejoin_ns.is_some() || self.rejoin_bytes + self.warmup_bytes > 0 {
            let span = match self.rejoin_ns {
                Some(ns) => format!("in {:.2} ms", ns as f64 / 1e6),
                None => "still in flight".to_string(),
            };
            // Cluster runs have no node cache; only mention warm-up when
            // a store run actually transferred one.
            let warm = if self.warmup_bytes > 0 {
                format!(
                    " + {:.1} MiB cache warm-up",
                    self.warmup_bytes as f64 / (1 << 20) as f64
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "    rejoin: {:.1} MiB anti-entropy{warm} {span}\n",
                self.rejoin_bytes as f64 / (1 << 20) as f64,
            ));
        }
        if let Some(phases) = &self.phases {
            let names = ["before", "during", "after "];
            for (name, p) in names.iter().zip(phases) {
                out.push_str(&format!(
                    "    phase {name}: {:>6} reqs, avail {:>6.2}%, p99 {:>7.0} us\n",
                    p.requests,
                    p.availability() * 100.0,
                    p.p99_ns as f64 / 1000.0,
                ));
            }
        }
        if self.cache_hits + self.cache_misses > 0 {
            out.push_str(&format!(
                "    cache: {:.1}% hit ({} hits / {} misses), stale served {}\n",
                self.cache_hit_rate() * 100.0,
                self.cache_hits,
                self.cache_misses,
                self.stale_served,
            ));
        }
        for t in &self.per_tenant {
            out.push_str(&format!(
                "    tenant {:<10} {:>6} ok {:>4} denied, p50/p99/p999 {:>6.0}/{:>6.0}/{:>6.0} us, SLO {:>6.2}%, cache {:>5.1}%\n",
                t.name,
                t.ok,
                t.denied,
                t.latency_us(50.0),
                t.latency_us(99.0),
                t.latency_us(99.9),
                t.slo_attainment() * 100.0,
                t.cache_hit_rate() * 100.0,
            ));
        }
        for (i, n) in self.per_node.iter().enumerate() {
            out.push_str(&format!(
                "    node{i:<2} {:>6} reqs {:>8.2} Gbps {:>5} shed {:>3} fail {:>3} lost  cpu {:>5.1}%\n",
                n.requests,
                n.bytes as f64 * 8.0 / self.span_ns.max(1) as f64,
                n.rejected,
                n.failures,
                n.lost,
                n.cpu_utilization * 100.0,
            ));
        }
        out
    }
}

fn ratio(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        return 1.0;
    }
    num as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ClusterReport {
        let mut latency = Histogram::new();
        for v in [100_000u64, 200_000, 300_000, 4_000_000] {
            latency.record(v);
        }
        ClusterReport {
            span_ns: 1_000_000_000,
            requests: 4,
            bytes: 500_000_000,
            rejected: 1,
            failures: 0,
            latency,
            per_node: vec![
                NodePerf {
                    requests: 3,
                    bytes: 400_000_000,
                    ..Default::default()
                },
                NodePerf {
                    requests: 1,
                    bytes: 100_000_000,
                    ..Default::default()
                },
            ],
            ..ClusterReport::default()
        }
    }

    #[test]
    fn goodput_rejection_imbalance() {
        let r = report();
        assert!((r.goodput_gbps() - 4.0).abs() < 1e-9);
        assert!((r.rejection_rate() - 0.2).abs() < 1e-9);
        // max 400MB over mean 250MB.
        assert!((r.imbalance() - 1.6).abs() < 1e-9);
        assert!(r.latency_us(50.0) >= 200.0);
        let text = r.render("test");
        assert!(text.contains("4.00 Gbps"), "{text}");
        assert!(text.contains("node0"), "{text}");
        // With no failover activity the health lines stay out of the way.
        assert!(!text.contains("health:"), "{text}");
        assert!(!text.contains("failure:"), "{text}");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ClusterReport::default();
        assert_eq!(r.goodput_gbps(), 0.0);
        assert_eq!(r.rejection_rate(), 0.0);
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.latency_us(99.0), 0.0);
        assert_eq!(r.availability(), 1.0, "no traffic is vacuously available");
    }

    #[test]
    fn availability_counts_denied_and_lost() {
        let r = ClusterReport {
            get_ok: 98,
            get_denied: 2,
            put_ok: 49,
            put_denied: 1,
            ..ClusterReport::default()
        };
        assert!((r.get_availability() - 0.98).abs() < 1e-9);
        assert!((r.put_availability() - 0.98).abs() < 1e-9);
        assert!((r.availability() - 0.98).abs() < 1e-9);
    }

    #[test]
    fn failover_lines_render() {
        let r = ClusterReport {
            span_ns: 1_000_000,
            get_ok: 10,
            get_denied: 1,
            put_ok: 5,
            put_denied: 0,
            hedged: 4,
            hedge_wins: 2,
            retried: 3,
            lost: 1,
            put_fallbacks: 2,
            detection_ns: Some(2_250_000),
            repair_bytes: 4 << 20,
            repair_ns: Some(9_000_000),
            phases: Some([
                PhasePerf {
                    requests: 100,
                    ok: 100,
                    p99_ns: 500_000,
                },
                PhasePerf {
                    requests: 50,
                    ok: 45,
                    p99_ns: 2_000_000,
                },
                PhasePerf {
                    requests: 100,
                    ok: 100,
                    p99_ns: 600_000,
                },
            ]),
            ..ClusterReport::default()
        };
        let text = r.render("failover");
        assert!(text.contains("hedged 4 (wins 2)"), "{text}");
        assert!(text.contains("retried 3"), "{text}");
        assert!(text.contains("lost 1"), "{text}");
        assert!(text.contains("detected in 2250 us"), "{text}");
        assert!(text.contains("repaired 4.0 MiB"), "{text}");
        assert!(text.contains("phase during"), "{text}");
        assert!(text.contains("90.00%"), "{text}");
    }

    #[test]
    fn gray_and_rejoin_lines_render() {
        let r = ClusterReport {
            span_ns: 1_000_000,
            slow_detection_ns: Some(3_000_000),
            slow_evictions: 1,
            slow_readmissions: 1,
            rejoin_bytes: 8 << 20,
            rejoin_ns: Some(12_000_000),
            warmup_bytes: 2 << 20,
            ..ClusterReport::default()
        };
        let text = r.render("gray");
        assert!(text.contains("gray: detected in 3000 us"), "{text}");
        assert!(text.contains("slow-evicted 1, readmitted 1"), "{text}");
        assert!(
            text.contains("rejoin: 8.0 MiB anti-entropy + 2.0 MiB cache warm-up in 12.00 ms"),
            "{text}"
        );
        // The blind ablation still reports its (absent) detection.
        let blind = ClusterReport {
            slow_evictions: 0,
            slow_readmissions: 0,
            ..ClusterReport::default()
        };
        let text = blind.render("blind");
        assert!(!text.contains("gray:"), "{text}");
        assert!(!text.contains("rejoin:"), "{text}");
    }

    #[test]
    fn tenant_slo_and_cache_accounting() {
        let mut latency = Histogram::new();
        for v in [100_000u64, 150_000, 900_000] {
            latency.record(v);
        }
        let t = TenantPerf {
            name: "gold".into(),
            ok: 3,
            denied: 1,
            bytes: 1 << 20,
            cache_hits: 2,
            cache_misses: 2,
            slo_ns: 500_000,
            slo_met: 2,
            latency,
        };
        // 2 of 4 resolved requests met the SLO (one slow, one denied).
        assert!((t.slo_attainment() - 0.5).abs() < 1e-9);
        assert!((t.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert!(t.latency_us(50.0) >= 100.0);
        // Vacuous cases.
        assert_eq!(TenantPerf::default().slo_attainment(), 1.0);
        assert_eq!(TenantPerf::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn store_lines_render_per_tenant_and_cache() {
        let r = ClusterReport {
            span_ns: 1_000_000,
            cache_hits: 30,
            cache_misses: 70,
            per_tenant: vec![
                TenantPerf {
                    name: "gold".into(),
                    ok: 9,
                    slo_met: 9,
                    ..Default::default()
                },
                TenantPerf {
                    name: "scan".into(),
                    ok: 4,
                    denied: 4,
                    ..Default::default()
                },
            ],
            ..ClusterReport::default()
        };
        assert!((r.cache_hit_rate() - 0.3).abs() < 1e-9);
        let text = r.render("store");
        assert!(text.contains("cache: 30.0% hit"), "{text}");
        assert!(text.contains("stale served 0"), "{text}");
        assert!(text.contains("tenant gold"), "{text}");
        assert!(text.contains("tenant scan"), "{text}");
        // The Swift-mix report stays unchanged: no store lines.
        let plain = report().render("plain");
        assert!(!plain.contains("cache:"), "{plain}");
        assert!(!plain.contains("tenant"), "{plain}");
    }

    #[test]
    fn phase_availability_is_vacuous_when_empty() {
        assert_eq!(PhasePerf::default().availability(), 1.0);
        let p = PhasePerf {
            requests: 4,
            ok: 3,
            p99_ns: 0,
        };
        assert!((p.availability() - 0.75).abs() < 1e-9);
    }
}
