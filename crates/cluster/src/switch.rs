//! The modeled top-of-rack switch.
//!
//! A store-and-forward switch connecting the cluster front end (traffic
//! generator + load balancer) to every node's rack port. Each direction of
//! each port is a [`LineServer`]: a frame crossing the switch serializes on
//! the ingress port at that port's line rate, pays a fixed switching
//! latency, then queues at the *output* port and serializes again at the
//! output port's rate — classic output queueing, so a congested direction
//! backs up exactly one queue while the reverse direction stays clean.
//!
//! The output ports must be [`LineServer`]s (earliest idle slot at or
//! after the frame's *arrival*) rather than [`FifoServer`]s (reserve in
//! call order): when one node's port is degraded, its frames reach a
//! shared output port minutes of queueing later, and a call-order
//! reservation would let those not-yet-arrived frames head-of-line block
//! every healthy node's traffic through the shared port — an artifact,
//! not a property of real switches. With no degraded port the two models
//! produce identical schedules.
//!
//! [`FifoServer`]: dcs_sim::FifoServer
//!
//! The front-end port is typically provisioned much faster than the node
//! ports (a 100 GbE uplink over 10 GbE downlinks) so response traffic from
//! N nodes only contends at the uplink once offered load approaches the
//! uplink rate. A per-node speed factor models a degraded cable/port
//! mid-run (`set_node_speed_factor`); the load balancer's queue-aware
//! policies observe the resulting backlog and route around it.
//!
//! Note the node-facing downlink *wire* (frames, retransmission, fault
//! sites) is simulated in full by each node pair's `dcs-nic` wire; the
//! switch model adds the rack-level hops that wire does not cover: the
//! switching latency and the shared front-end uplink.

use dcs_sim::{Bandwidth, LineServer, SimTime};

/// QoS class of a data-plane transfer through the switch.
///
/// The health layer's heartbeat probes already ride a strict-priority
/// control class ([`TorSwitch::control_oneway_ns`]); `Lane` extends the
/// same machinery to *data* frames so the store layer can give an SLO
/// tenant's small requests a lane that large bulk transfers cannot block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Lane {
    /// Best-effort class: output-queued behind everything else on the
    /// port (the pre-existing behavior of every data transfer).
    #[default]
    Bulk,
    /// Strict-priority class: pays serialization at both ports and the
    /// switching latency, but never waits in an output queue. Modeled
    /// like the control lane — a priority frame preempts the head of the
    /// bulk queue, so its delay is load-independent; the tiny extra
    /// serialization it imposes on bulk traffic is below the model's
    /// resolution and is not charged back.
    Priority,
}

/// Switch provisioning.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Line rate of each node-facing port.
    pub port_rate: Bandwidth,
    /// Line rate of the front-end (load-balancer) uplink port.
    pub uplink_rate: Bandwidth,
    /// Fixed switching (forwarding + propagation) latency per traversal.
    pub latency_ns: u64,
    /// Per-frame framing overhead added to every transfer, in bytes.
    pub frame_overhead: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            port_rate: Bandwidth::gbps(10.0),
            uplink_rate: Bandwidth::gbps(100.0),
            latency_ns: 1_000,
            frame_overhead: 24,
        }
    }
}

/// One full-duplex port: independent ingress/egress servers.
#[derive(Clone, Debug, Default)]
struct Port {
    /// Traffic entering the switch through this port.
    ingress: LineServer,
    /// Traffic leaving the switch through this port.
    egress: LineServer,
}

/// The output-queued top-of-rack switch. Deterministic and side-effect
/// free: callers offer transfers and schedule simulator messages at the
/// returned completion instants.
#[derive(Clone, Debug)]
pub struct TorSwitch {
    cfg: SwitchConfig,
    nodes: Vec<Port>,
    uplink: Port,
    /// Service-rate multiplier per node port (1.0 = healthy; smaller is
    /// slower). Models a degraded port/cable.
    // dcs-lint: allow(float-in-sim-state) — written only at scheduled fault instants, from config-supplied values
    speed_factor: Vec<f64>,
}

impl TorSwitch {
    /// A switch with `nodes` node-facing ports plus the front-end uplink.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, cfg: SwitchConfig) -> TorSwitch {
        assert!(nodes > 0, "a switch needs at least one node port");
        TorSwitch {
            cfg,
            nodes: vec![Port::default(); nodes],
            uplink: Port::default(),
            speed_factor: vec![1.0; nodes],
        }
    }

    /// Number of node-facing ports.
    pub fn node_ports(&self) -> usize {
        self.nodes.len()
    }

    /// Degrades (or restores) node `node`'s port to `factor` of its line
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive or `node` is out of range.
    pub fn set_node_speed_factor(&mut self, node: usize, factor: f64) {
        assert!(factor > 0.0, "speed factor must be positive");
        self.speed_factor[node] = factor;
    }

    fn node_tx_time(&self, node: usize, bytes: usize) -> u64 {
        let t = self
            .cfg
            .port_rate
            .transfer_time(bytes + self.cfg.frame_overhead);
        ((t as f64 / self.speed_factor[node]).ceil() as u64).max(1)
    }

    fn uplink_tx_time(&self, bytes: usize) -> u64 {
        self.cfg
            .uplink_rate
            .transfer_time(bytes + self.cfg.frame_overhead)
    }

    /// Offers a `bytes`-long transfer from the front end toward node
    /// `node` at `now`; returns the instant it is fully delivered at the
    /// node port.
    pub fn to_node(&mut self, now: SimTime, node: usize, bytes: usize) -> SimTime {
        let up = self.uplink_tx_time(bytes);
        let switched = self.uplink.ingress.offer(now, now, up) + self.cfg.latency_ns;
        let down = self.node_tx_time(node, bytes);
        self.nodes[node].egress.offer(now, switched, down)
    }

    /// Offers a `bytes`-long transfer from node `node` toward the front
    /// end at `now`; returns the instant it is fully delivered at the
    /// front-end port.
    pub fn to_frontend(&mut self, now: SimTime, node: usize, bytes: usize) -> SimTime {
        let up = self.node_tx_time(node, bytes);
        let switched = self.nodes[node].ingress.offer(now, now, up) + self.cfg.latency_ns;
        let down = self.uplink_tx_time(bytes);
        self.uplink.egress.offer(now, switched, down)
    }

    /// Offers a `bytes`-long transfer from node `from` toward node `to`
    /// (east-west traffic: re-replication streams); returns the delivery
    /// instant at `to`'s port. Serializes on `from`'s ingress and `to`'s
    /// egress, so repair streams contend with foreground request/response
    /// traffic on both ports — the realistic cost of repairing under
    /// load.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn node_to_node(&mut self, now: SimTime, from: usize, to: usize, bytes: usize) -> SimTime {
        assert_ne!(from, to, "east-west transfer needs two distinct ports");
        let up = self.node_tx_time(from, bytes);
        let switched = self.nodes[from].ingress.offer(now, now, up) + self.cfg.latency_ns;
        let down = self.node_tx_time(to, bytes);
        self.nodes[to].egress.offer(now, switched, down)
    }

    /// Offers a transfer from the front end toward node `node` on the
    /// given QoS [`Lane`]. [`Lane::Bulk`] is exactly [`Self::to_node`];
    /// [`Lane::Priority`] bypasses the output queues.
    pub fn to_node_lane(&mut self, now: SimTime, node: usize, bytes: usize, lane: Lane) -> SimTime {
        match lane {
            Lane::Bulk => self.to_node(now, node, bytes),
            Lane::Priority => {
                now + self.uplink_tx_time(bytes)
                    + self.cfg.latency_ns
                    + self.node_tx_time(node, bytes)
            }
        }
    }

    /// Offers a transfer from node `node` toward the front end on the
    /// given QoS [`Lane`]. [`Lane::Bulk`] is exactly
    /// [`Self::to_frontend`]; [`Lane::Priority`] bypasses the output
    /// queues.
    pub fn to_frontend_lane(
        &mut self,
        now: SimTime,
        node: usize,
        bytes: usize,
        lane: Lane,
    ) -> SimTime {
        match lane {
            Lane::Bulk => self.to_frontend(now, node, bytes),
            Lane::Priority => {
                now + self.node_tx_time(node, bytes)
                    + self.cfg.latency_ns
                    + self.uplink_tx_time(bytes)
            }
        }
    }

    /// One-way delay of a `bytes`-long *control-plane* frame between the
    /// front end and node `node` (either direction). Control frames
    /// (heartbeat probes and their acks) ride a strict-priority QoS class:
    /// they pay serialization at both ports and the switching latency but
    /// never queue behind bulk data, so health probing stays responsive —
    /// and deterministic — under any data-plane load. A degraded port
    /// (`set_node_speed_factor`) still slows them.
    pub fn control_oneway_ns(&self, node: usize, bytes: usize) -> u64 {
        self.node_tx_time(node, bytes) + self.cfg.latency_ns + self.uplink_tx_time(bytes)
    }

    /// Busy time accumulated by node `node`'s port (both directions), ns.
    pub fn node_busy_ns(&self, node: usize) -> u64 {
        self.nodes[node].ingress.busy_time() + self.nodes[node].egress.busy_time()
    }

    /// Busy time accumulated by the uplink (both directions), ns.
    pub fn uplink_busy_ns(&self) -> u64 {
        self.uplink.ingress.busy_time() + self.uplink.egress.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SwitchConfig {
        SwitchConfig {
            port_rate: Bandwidth::gbps(10.0),
            uplink_rate: Bandwidth::gbps(100.0),
            latency_ns: 1_000,
            frame_overhead: 0,
        }
    }

    #[test]
    fn single_transfer_pays_both_ports_plus_latency() {
        let mut sw = TorSwitch::new(2, cfg());
        // 1250 bytes: 100ns at 100G ingress, 1000ns at 10G egress.
        let done = sw.to_node(SimTime::ZERO, 0, 1250);
        assert_eq!(done.as_nanos(), 100 + 1_000 + 1_000);
    }

    #[test]
    fn output_queueing_backs_up_the_shared_output_port() {
        let mut sw = TorSwitch::new(2, cfg());
        // Two responses from different nodes contend only at the uplink
        // egress: each serializes on its own node port in parallel.
        let a = sw.to_frontend(SimTime::ZERO, 0, 12_500); // 10us up, 1us down
        let b = sw.to_frontend(SimTime::ZERO, 1, 12_500);
        assert_eq!(a.as_nanos(), 10_000 + 1_000 + 1_000);
        // b's node serialization overlaps a's; only the uplink is shared.
        assert_eq!(b.as_nanos(), 10_000 + 1_000 + 2 * 1_000);
    }

    #[test]
    fn directions_are_independent() {
        let mut sw = TorSwitch::new(1, cfg());
        let big = 125_000; // 100us on the node port
        let down = sw.to_node(SimTime::ZERO, 0, big);
        let up = sw.to_frontend(SimTime::ZERO, 0, 1250);
        // The response direction is unaffected by the loaded downlink.
        assert!(up < down, "full duplex: {up:?} vs {down:?}");
    }

    #[test]
    fn degraded_port_slows_only_that_node() {
        let mut sw = TorSwitch::new(2, cfg());
        sw.set_node_speed_factor(0, 0.1);
        let slow = sw.to_node(SimTime::ZERO, 0, 1250);
        let fast = sw.to_node(SimTime::ZERO, 1, 1250);
        assert!(
            slow.as_nanos() > fast.as_nanos() * 5,
            "{slow:?} vs {fast:?}"
        );
        // Restoring brings it back.
        sw.set_node_speed_factor(0, 1.0);
        let healed = sw.to_node(slow, 0, 1250);
        assert_eq!(healed - slow, 100 + 1_000 + 1_000);
    }

    #[test]
    fn busy_accounting_accumulates() {
        let mut sw = TorSwitch::new(1, cfg());
        sw.to_node(SimTime::ZERO, 0, 1250);
        sw.to_frontend(SimTime::ZERO, 0, 1250);
        assert_eq!(sw.node_busy_ns(0), 2_000);
        assert_eq!(sw.uplink_busy_ns(), 200);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_port_switch_rejected() {
        let _ = TorSwitch::new(0, cfg());
    }

    #[test]
    fn node_to_node_contends_on_both_ports() {
        let mut sw = TorSwitch::new(3, cfg());
        // 1250 bytes: 1us on each 10G node port, plus switching latency.
        let done = sw.node_to_node(SimTime::ZERO, 0, 1, 1250);
        assert_eq!(done.as_nanos(), 1_000 + 1_000 + 1_000);
        // A repair stream into node 1 backs up behind the first chunk's
        // egress; a transfer into node 2 does not.
        let second = sw.node_to_node(SimTime::ZERO, 0, 1, 1250);
        let other = sw.node_to_node(SimTime::ZERO, 2, 0, 1250);
        assert!(second > done, "{second:?} vs {done:?}");
        assert_eq!(other.as_nanos(), 1_000 + 1_000 + 1_000);
        // And the uplink is untouched by east-west traffic.
        assert_eq!(sw.uplink_busy_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "distinct ports")]
    fn node_to_node_rejects_self_transfer() {
        let mut sw = TorSwitch::new(2, cfg());
        let _ = sw.node_to_node(SimTime::ZERO, 1, 1, 100);
    }

    #[test]
    fn priority_lane_bypasses_bulk_queues() {
        let mut sw = TorSwitch::new(2, cfg());
        // Unloaded, both lanes see the same end-to-end delay.
        let mut quiet_sw = sw.clone();
        let bulk_quiet = quiet_sw.to_node(SimTime::ZERO, 0, 1250);
        let prio_quiet = sw.to_node_lane(SimTime::ZERO, 0, 1250, Lane::Priority);
        assert_eq!(prio_quiet, bulk_quiet);
        // Saturate node 0's port in both directions.
        for _ in 0..64 {
            sw.to_node(SimTime::ZERO, 0, 125_000);
            sw.to_frontend(SimTime::ZERO, 0, 125_000);
        }
        // Priority frames still see the quiet-network delay; bulk queues.
        assert_eq!(
            sw.to_node_lane(SimTime::ZERO, 0, 1250, Lane::Priority),
            prio_quiet
        );
        assert_eq!(
            sw.to_frontend_lane(SimTime::ZERO, 0, 1250, Lane::Priority)
                .as_nanos(),
            1_000 + 1_000 + 100,
        );
        assert!(sw.to_node_lane(SimTime::ZERO, 0, 1250, Lane::Bulk) > prio_quiet);
        // A degraded port slows priority frames too (it is the wire, not
        // the queue, that degraded).
        sw.set_node_speed_factor(0, 0.1);
        assert!(sw.to_node_lane(SimTime::ZERO, 0, 1250, Lane::Priority) > prio_quiet);
    }

    #[test]
    fn bulk_lane_is_the_default_path() {
        let mut a = TorSwitch::new(1, cfg());
        let mut b = TorSwitch::new(1, cfg());
        assert_eq!(Lane::default(), Lane::Bulk);
        assert_eq!(
            a.to_node(SimTime::ZERO, 0, 9_999),
            b.to_node_lane(SimTime::ZERO, 0, 9_999, Lane::Bulk),
        );
        assert_eq!(
            a.to_frontend(SimTime::ZERO, 0, 9_999),
            b.to_frontend_lane(SimTime::ZERO, 0, 9_999, Lane::Bulk),
        );
    }

    #[test]
    fn control_lane_never_queues() {
        let mut sw = TorSwitch::new(2, cfg());
        let quiet = sw.control_oneway_ns(0, 128);
        // Saturate node 0's data path; the control lane is unaffected.
        for _ in 0..64 {
            sw.to_node(SimTime::ZERO, 0, 125_000);
            sw.to_frontend(SimTime::ZERO, 0, 125_000);
        }
        assert_eq!(sw.control_oneway_ns(0, 128), quiet);
        // A degraded port does slow the control frame's serialization.
        sw.set_node_speed_factor(0, 0.1);
        assert!(sw.control_oneway_ns(0, 128) > quiet);
    }
}
