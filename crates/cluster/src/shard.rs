//! Consistent-hash object sharding with R-way replication.
//!
//! Objects are placed on a hash ring of virtual nodes (many per physical
//! node, for balance). An object's *primary* is the owner of the first
//! vnode at or after the object's hash; its replica set is the primary
//! plus the owners of the next distinct physical nodes around the ring.
//! PUTs land on the primary; GETs may be served by any replica, which is
//! what gives the load balancer a choice to exploit.
//!
//! The ring is deterministic in the node count and vnode count alone — no
//! RNG — so every run of a given cluster shape produces the same
//! placement, and adding a node moves only the keys that hash into the
//! slices its vnodes claim (the property that makes consistent hashing
//! the standard datacenter sharding scheme).

/// SplitMix64: a well-mixed deterministic 64-bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The consistent-hash ring.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(hash, node)` pairs sorted by hash.
    vnodes: Vec<(u64, usize)>,
    nodes: usize,
    replication: usize,
}

impl HashRing {
    /// A ring over `nodes` physical nodes with `vnodes_per_node` virtual
    /// nodes each and `replication`-way replica sets (clamped to the node
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `vnodes_per_node`, or `replication` is zero.
    pub fn new(nodes: usize, vnodes_per_node: usize, replication: usize) -> HashRing {
        assert!(nodes > 0, "ring needs at least one node");
        assert!(
            vnodes_per_node > 0,
            "ring needs at least one vnode per node"
        );
        assert!(replication > 0, "replication factor must be at least one");
        let mut vnodes = Vec::with_capacity(nodes * vnodes_per_node);
        for node in 0..nodes {
            for v in 0..vnodes_per_node {
                vnodes.push((mix((node as u64) << 32 | v as u64), node));
            }
        }
        vnodes.sort_unstable();
        HashRing {
            vnodes,
            nodes,
            replication: replication.min(nodes),
        }
    }

    /// Number of physical nodes on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Effective replication factor (requested, clamped to node count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The primary node for `object`.
    pub fn primary(&self, object: u64) -> usize {
        self.replicas(object)[0]
    }

    /// The replica set for `object`: the primary followed by the next
    /// distinct physical nodes clockwise around the ring.
    pub fn replicas(&self, object: u64) -> Vec<usize> {
        self.preference_list(object, self.replication)
    }

    /// The first `n` distinct physical nodes clockwise from `object`'s
    /// ring position. The leading `replication()` entries are the replica
    /// set; the nodes after them are the successors that take over the
    /// object's data when a replica is re-replicated away from a dead
    /// node.
    pub fn preference_list(&self, object: u64, n: usize) -> Vec<usize> {
        let h = mix(object);
        let start = self.vnodes.partition_point(|&(vh, _)| vh < h);
        let mut out = Vec::with_capacity(n.min(self.nodes));
        for i in 0..self.vnodes.len() {
            let (_, node) = self.vnodes[(start + i) % self.vnodes.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The replica set for `object` with `excluded[n] == true` nodes
    /// (dead, or behind an open circuit breaker) removed. May return
    /// fewer than `replication()` entries — even none, when every replica
    /// is excluded — so callers must not assume a full set.
    pub fn replicas_excluding(&self, object: u64, excluded: &[bool]) -> Vec<usize> {
        self.replicas(object)
            .into_iter()
            .filter(|&n| !excluded.get(n).copied().unwrap_or(false))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_sets_are_distinct_and_sized() {
        let ring = HashRing::new(8, 64, 3);
        for object in 0..2_000u64 {
            let r = ring.replicas(object);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replica for {object}: {r:?}");
            assert!(r.iter().all(|&n| n < 8));
            assert_eq!(ring.primary(object), r[0]);
        }
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let ring = HashRing::new(2, 16, 3);
        assert_eq!(ring.replication(), 2);
        assert_eq!(ring.replicas(99).len(), 2);
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = HashRing::new(8, 64, 1);
        let mut counts = [0usize; 8];
        let objects = 20_000;
        for object in 0..objects as u64 {
            counts[ring.primary(object)] += 1;
        }
        let mean = objects / 8;
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                c > mean / 2 && c < mean * 2,
                "node {node} owns {c} of {objects} (mean {mean})"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_few_keys() {
        let before = HashRing::new(7, 64, 1);
        let after = HashRing::new(8, 64, 1);
        let objects = 10_000u64;
        let moved = (0..objects)
            .filter(|&o| {
                let (b, a) = (before.primary(o), after.primary(o));
                b != a && a != 7 // a move not explained by the new node
            })
            .count();
        // Consistent hashing: keys only move *to* the new node; nothing
        // reshuffles between the existing seven.
        assert_eq!(moved, 0);
        let to_new = (0..objects).filter(|&o| after.primary(o) == 7).count();
        assert!(to_new > 0, "the new node must own something");
    }

    #[test]
    fn excluding_dead_nodes_shrinks_the_set() {
        let ring = HashRing::new(4, 64, 2);
        let none = [false; 4];
        for object in 0..500u64 {
            let full = ring.replicas(object);
            assert_eq!(ring.replicas_excluding(object, &none), full);
            // Exclude the primary: the set shrinks and keeps ring order.
            let mut dead = [false; 4];
            dead[full[0]] = true;
            let surv = ring.replicas_excluding(object, &dead);
            assert_eq!(surv, full[1..].to_vec());
            // Exclude everything: empty, and callers must cope.
            let all = [true; 4];
            assert!(ring.replicas_excluding(object, &all).is_empty());
        }
    }

    #[test]
    fn preference_list_extends_the_replica_set() {
        let ring = HashRing::new(6, 64, 2);
        for object in 0..500u64 {
            let pref = ring.preference_list(object, 6);
            assert_eq!(pref.len(), 6, "all nodes appear: {pref:?}");
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "distinct: {pref:?}");
            assert_eq!(pref[..2].to_vec(), ring.replicas(object));
        }
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = HashRing::new(5, 32, 2);
        let b = HashRing::new(5, 32, 2);
        for o in 0..500 {
            assert_eq!(a.replicas(o), b.replicas(o));
        }
    }
}
