//! Node-level failure detection and the per-node circuit breaker.
//!
//! The front end probes every node over the ToR switch's strict-priority
//! control lane (see [`TorSwitch::control_oneway_ns`]). Each probe gets a
//! deadline; a node that misses consecutive deadlines accumulates a
//! *suspicion score* — a timeout-based simplification of the phi-accrual
//! detector: the score is the fraction of the kill threshold reached, it
//! rises one step per missed deadline and collapses to zero on any ack —
//! and transitions `Healthy → Suspect → Dead`. Any later ack (a hung node
//! waking up) flips it straight back to `Healthy`.
//!
//! Independently, request outcomes drive a classic per-node **circuit
//! breaker**: `breaker_failures` *consecutive* request failures open it
//! (the node is excluded from routing), after `breaker_open_ns` it goes
//! half-open (one trial request is let through), and a success — a trial
//! request completing, or a heartbeat ack — closes it again.
//!
//! Both signals are consumed by the routing mask:
//! [`HealthMonitor::unroutable_mask`] marks a node unroutable while it is
//! `Dead` or its breaker is open, which is what
//! [`HashRing::replicas_excluding`] consumes.
//!
//! Everything here is plain deterministic state driven by simulator
//! events; the module owns no RNG, so detection times are reproducible
//! bit-for-bit from the probe schedule alone.
//!
//! [`TorSwitch::control_oneway_ns`]: crate::TorSwitch::control_oneway_ns
//! [`HashRing::replicas_excluding`]: crate::HashRing::replicas_excluding

use dcs_sim::SimTime;

/// Liveness state of one node as the front end believes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Acking probes; fully routable.
    Healthy,
    /// Missed at least `suspect_after` consecutive probe deadlines (or
    /// showed a retry-exhaustion burst); still routable, but hedges fire
    /// at the minimum delay against it.
    Suspect,
    /// Showed a burst of *contained* errors (corruptions the node
    /// detected and recovered — ECRC replays, rewritten completion
    /// entries, device resets). The node answers probes and serves
    /// traffic, so it is neither Suspect nor Dead; it stays routable with
    /// hedges at the minimum delay until two consecutive clean probe acks
    /// clear it.
    Degraded,
    /// Missed `dead_after` consecutive probe deadlines: unroutable,
    /// in-flight requests are failed over, re-replication starts.
    Dead,
}

/// Per-node circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped by consecutive failures: unroutable until the open window
    /// elapses.
    Open,
    /// Open window elapsed: exactly one trial request may pass; its
    /// outcome (or a probe ack) decides Open vs Closed.
    HalfOpen,
}

/// Knobs for detection, failover, hedging, and repair. Lives inside
/// [`ClusterConfig`](crate::ClusterConfig); `enabled: false` turns the
/// entire tolerance layer off (the ablation the failover sweep measures).
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Master switch: probes, failover, retries, hedging, and repair all
    /// key off this.
    pub enabled: bool,
    /// Heartbeat period per node.
    pub probe_period_ns: u64,
    /// Probe deadline: an ack not seen this long after the probe was sent
    /// counts as a miss.
    pub probe_timeout_ns: u64,
    /// Control-frame size on the wire.
    pub probe_bytes: usize,
    /// Consecutive misses before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive misses before `Suspect → Dead`.
    pub dead_after: u32,
    /// Consecutive request failures that open the breaker.
    pub breaker_failures: u32,
    /// How long the breaker stays open before going half-open.
    pub breaker_open_ns: u64,
    /// Per-request budget for re-dispatching a request whose node died
    /// with it in flight (0 disables failover retries).
    pub request_retries: u32,
    /// Issue a hedged second GET to another replica when the first is
    /// slow.
    pub hedge: bool,
    /// Floor for the hedge delay (and the delay used against Suspect
    /// nodes).
    pub hedge_min_ns: u64,
    /// Ceiling for the hedge delay.
    pub hedge_max_ns: u64,
    /// Hedge delay until the latency histogram has enough samples for a
    /// p99.
    pub hedge_default_ns: u64,
    /// Pacing rate of the re-replication stream, Gbps (the bandwidth cap;
    /// chunks still serialize — and contend — on the ToR ports).
    pub repair_gbps: f64,
    /// Chunk size of the re-replication stream.
    pub repair_chunk_bytes: usize,
    /// Jump in the cluster-wide `SiteStats::exhausted` tally within one
    /// probe period that counts as a fault storm: nodes failing requests
    /// during such a burst are marked Suspect immediately instead of
    /// waiting out probe deadlines.
    pub exhausted_burst: u64,
    /// Jump in the cluster-wide *contained*-fault tally (errors detected
    /// and recovered in place: ECRC replays, completion-entry rewrites,
    /// device resets) within one probe period that marks serving nodes
    /// Degraded instead of Suspect: the node is alive and correct, just
    /// riding a fault storm.
    pub contained_burst: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: true,
            probe_period_ns: 500_000,
            probe_timeout_ns: 2_500_000,
            probe_bytes: 128,
            suspect_after: 2,
            dead_after: 4,
            breaker_failures: 3,
            breaker_open_ns: 3_000_000,
            request_retries: 2,
            hedge: true,
            hedge_min_ns: 2_000_000,
            hedge_max_ns: 25_000_000,
            hedge_default_ns: 12_000_000,
            repair_gbps: 2.0,
            repair_chunk_bytes: 256 * 1024,
            exhausted_burst: 3,
            contained_burst: 8,
        }
    }
}

impl HealthConfig {
    /// The whole tolerance layer off: no probes, no failover, no hedges,
    /// no repair. Node faults still fire — this is the ablation arm.
    pub fn disabled() -> HealthConfig {
        HealthConfig {
            enabled: false,
            ..HealthConfig::default()
        }
    }

    /// Upper bound on crash-to-`Dead` detection latency: the first probe
    /// after the crash is at most one period away, `dead_after - 1` more
    /// periods accumulate the misses, and the last probe's deadline pays
    /// the timeout.
    pub fn detection_bound_ns(&self) -> u64 {
        self.dead_after as u64 * self.probe_period_ns + self.probe_timeout_ns
    }
}

/// What a probe event changed, when it changed something the driver must
/// act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// The node just crossed the death threshold: fail over its in-flight
    /// requests and start re-replication.
    Died,
    /// A previously-Dead node acked a probe (a hang ended): it is
    /// routable again.
    Revived,
}

#[derive(Clone, Debug)]
struct NodeHealth {
    state: NodeState,
    /// Consecutive missed probe deadlines.
    misses: u32,
    breaker: BreakerState,
    opened_at: SimTime,
    consecutive_failures: u32,
    /// A half-open trial request is in flight; hold further traffic.
    trial_inflight: bool,
    /// Consecutive clean probe acks while Degraded (two clear the state).
    clean_acks: u32,
}

impl NodeHealth {
    fn new() -> NodeHealth {
        NodeHealth {
            state: NodeState::Healthy,
            misses: 0,
            breaker: BreakerState::Closed,
            opened_at: SimTime::ZERO,
            consecutive_failures: 0,
            trial_inflight: false,
            clean_acks: 0,
        }
    }
}

/// The front end's per-node health book-keeping (probes in, routing mask
/// out). Owned and driven by the
/// [`ClusterDriver`](crate::ClusterDriver); see the module docs for the
/// state machines.
pub struct HealthMonitor {
    cfg: HealthConfig,
    nodes: Vec<NodeHealth>,
}

impl HealthMonitor {
    /// A monitor over `n` nodes, all Healthy with closed breakers.
    pub fn new(cfg: &HealthConfig, n: usize) -> HealthMonitor {
        HealthMonitor {
            cfg: cfg.clone(),
            nodes: vec![NodeHealth::new(); n],
        }
    }

    /// Current liveness state of `node`.
    pub fn state(&self, node: usize) -> NodeState {
        self.nodes[node].state
    }

    /// Current breaker state of `node` (without the lazy Open → HalfOpen
    /// promotion; use [`routable`](Self::routable) for routing decisions).
    pub fn breaker(&self, node: usize) -> BreakerState {
        self.nodes[node].breaker
    }

    /// The suspicion score: fraction of the kill threshold the node's
    /// consecutive misses have reached (>= 1.0 means Dead).
    pub fn score(&self, node: usize) -> f64 {
        self.nodes[node].misses as f64 / self.cfg.dead_after.max(1) as f64
    }

    /// A probe deadline passed without an ack.
    pub fn on_probe_miss(&mut self, node: usize, _now: SimTime) -> Option<Transition> {
        let n = &mut self.nodes[node];
        n.misses = n.misses.saturating_add(1);
        n.clean_acks = 0;
        if n.misses >= self.cfg.dead_after && n.state != NodeState::Dead {
            n.state = NodeState::Dead;
            return Some(Transition::Died);
        }
        if n.misses >= self.cfg.suspect_after
            && matches!(n.state, NodeState::Healthy | NodeState::Degraded)
        {
            // Liveness doubt outranks a contained-error downgrade.
            n.state = NodeState::Suspect;
        }
        None
    }

    /// A probe ack arrived (possibly after its deadline — late acks from
    /// a waking node still count as life).
    pub fn on_probe_ack(&mut self, node: usize, _now: SimTime) -> Option<Transition> {
        let n = &mut self.nodes[node];
        n.misses = 0;
        // A heartbeat is the half-open "probe": it closes the breaker.
        if n.breaker != BreakerState::Closed {
            n.breaker = BreakerState::Closed;
            n.consecutive_failures = 0;
            n.trial_inflight = false;
        }
        match n.state {
            NodeState::Dead => {
                n.state = NodeState::Healthy;
                n.clean_acks = 0;
                Some(Transition::Revived)
            }
            NodeState::Suspect => {
                n.state = NodeState::Healthy;
                n.clean_acks = 0;
                None
            }
            NodeState::Degraded => {
                // Contained-error downgrades clear slowly: two consecutive
                // clean acks (the fault storm has to actually subside).
                n.clean_acks += 1;
                if n.clean_acks >= 2 {
                    n.state = NodeState::Healthy;
                    n.clean_acks = 0;
                }
                None
            }
            NodeState::Healthy => None,
        }
    }

    /// A request to `node` completed successfully.
    pub fn on_request_success(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        n.consecutive_failures = 0;
        if n.breaker == BreakerState::HalfOpen {
            n.breaker = BreakerState::Closed;
            n.trial_inflight = false;
        }
    }

    /// A request to `node` completed with an error.
    pub fn on_request_failure(&mut self, node: usize, now: SimTime) {
        let n = &mut self.nodes[node];
        n.consecutive_failures = n.consecutive_failures.saturating_add(1);
        match n.breaker {
            BreakerState::HalfOpen => {
                // The trial failed: back to fully open.
                n.breaker = BreakerState::Open;
                n.opened_at = now;
                n.trial_inflight = false;
            }
            BreakerState::Closed if n.consecutive_failures >= self.cfg.breaker_failures => {
                n.breaker = BreakerState::Open;
                n.opened_at = now;
            }
            _ => {}
        }
    }

    /// The cluster-wide retry-exhaustion tally jumped this probe period
    /// and `node` failed requests during it: treat the node as Suspect
    /// right away and push its breaker toward opening.
    pub fn on_exhausted_burst(&mut self, node: usize, now: SimTime) {
        {
            let n = &mut self.nodes[node];
            if n.state == NodeState::Healthy {
                n.state = NodeState::Suspect;
                n.misses = n.misses.max(self.cfg.suspect_after);
            }
        }
        self.on_request_failure(node, now);
    }

    /// The cluster-wide *contained*-fault tally jumped this probe period
    /// and `node` was serving during it: mark it Degraded. Unlike
    /// [`on_exhausted_burst`](Self::on_exhausted_burst) this neither feeds
    /// the breaker nor touches the miss count — the node detected and
    /// recovered every one of those errors, so it stays fully routable.
    pub fn on_contained_burst(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        if n.state == NodeState::Healthy {
            n.state = NodeState::Degraded;
            n.clean_acks = 0;
        }
    }

    /// May traffic be routed to `node` right now? False while Dead or
    /// breaker-open; a half-open breaker admits exactly one trial (the
    /// driver reports the dispatch via [`on_dispatch`](Self::on_dispatch)).
    /// Promotes Open → HalfOpen lazily once the open window elapses.
    pub fn routable(&mut self, node: usize, now: SimTime) -> bool {
        let open_ns = self.cfg.breaker_open_ns;
        let n = &mut self.nodes[node];
        if n.state == NodeState::Dead {
            return false;
        }
        match n.breaker {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_since(n.opened_at) >= open_ns {
                    n.breaker = BreakerState::HalfOpen;
                    n.trial_inflight = false;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => !n.trial_inflight,
        }
    }

    /// `excluded[n] == true` for every node routing must skip, in the
    /// shape [`HashRing::replicas_excluding`] consumes.
    ///
    /// [`HashRing::replicas_excluding`]: crate::HashRing::replicas_excluding
    pub fn unroutable_mask(&mut self, now: SimTime) -> Vec<bool> {
        (0..self.nodes.len())
            .map(|n| !self.routable(n, now))
            .collect()
    }

    /// The driver dispatched a request to `node`; a half-open breaker
    /// spends its single trial on it.
    pub fn on_dispatch(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        if n.breaker == BreakerState::HalfOpen {
            n.trial_inflight = true;
        }
    }

    /// Count of nodes currently believed Dead.
    pub fn dead_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Dead)
            .count()
    }

    /// Count of nodes currently marked Degraded (contained-error bursts).
    pub fn degraded_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Degraded)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + ns
    }

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(&HealthConfig::default(), 2)
    }

    #[test]
    fn misses_walk_healthy_suspect_dead_and_ack_revives() {
        let mut m = monitor();
        assert_eq!(m.state(0), NodeState::Healthy);
        assert_eq!(m.on_probe_miss(0, t(1)), None);
        assert_eq!(m.state(0), NodeState::Healthy, "one miss is noise");
        assert_eq!(m.on_probe_miss(0, t(2)), None);
        assert_eq!(m.state(0), NodeState::Suspect);
        assert!(m.score(0) < 1.0);
        assert_eq!(m.on_probe_miss(0, t(3)), None);
        assert_eq!(m.on_probe_miss(0, t(4)), Some(Transition::Died));
        assert_eq!(m.state(0), NodeState::Dead);
        assert!(m.score(0) >= 1.0);
        assert!(!m.routable(0, t(5)));
        // Node 1 is untouched throughout.
        assert_eq!(m.state(1), NodeState::Healthy);
        // A late ack (hang ended) revives it in one step.
        assert_eq!(m.on_probe_ack(0, t(6)), Some(Transition::Revived));
        assert_eq!(m.state(0), NodeState::Healthy);
        assert!(m.routable(0, t(7)));
        // Dying again re-reports the transition.
        for i in 0..3 {
            assert_eq!(m.on_probe_miss(0, t(8 + i)), None);
        }
        assert_eq!(m.on_probe_miss(0, t(12)), Some(Transition::Died));
    }

    #[test]
    fn breaker_opens_after_k_failures_and_half_open_trial_decides() {
        let mut m = monitor();
        // Interleaved successes keep resetting the consecutive count.
        for i in 0..10 {
            m.on_request_failure(0, t(i));
            m.on_request_success(0);
        }
        assert_eq!(m.breaker(0), BreakerState::Closed);
        for i in 0..3 {
            m.on_request_failure(0, t(100 + i));
        }
        assert_eq!(m.breaker(0), BreakerState::Open);
        assert!(!m.routable(0, t(110)), "open breaker blocks routing");
        // After the open window: half-open admits exactly one trial.
        let later = t(100 + 2 + 3_000_000);
        assert!(m.routable(0, later));
        assert_eq!(m.breaker(0), BreakerState::HalfOpen);
        m.on_dispatch(0);
        assert!(!m.routable(0, later), "one trial at a time");
        // Trial fails: reopen (and the window restarts from now).
        m.on_request_failure(0, later);
        assert_eq!(m.breaker(0), BreakerState::Open);
        assert!(!m.routable(0, later + 1_000_000));
        // Next half-open trial succeeds: closed.
        let again = later + 3_000_000;
        assert!(m.routable(0, again));
        m.on_dispatch(0);
        m.on_request_success(0);
        assert_eq!(m.breaker(0), BreakerState::Closed);
        assert!(m.routable(0, again));
    }

    #[test]
    fn probe_ack_closes_an_open_breaker() {
        let mut m = monitor();
        for i in 0..3 {
            m.on_request_failure(1, t(i));
        }
        assert_eq!(m.breaker(1), BreakerState::Open);
        m.on_probe_ack(1, t(10));
        assert_eq!(m.breaker(1), BreakerState::Closed);
        assert!(m.routable(1, t(11)));
    }

    #[test]
    fn exhausted_burst_jumps_straight_to_suspect() {
        let mut m = monitor();
        m.on_exhausted_burst(0, t(1));
        assert_eq!(m.state(0), NodeState::Suspect);
        // It feeds the breaker too: two more failures open it.
        m.on_request_failure(0, t(2));
        m.on_request_failure(0, t(3));
        assert_eq!(m.breaker(0), BreakerState::Open);
        // But bursts alone never declare death — only probes do, which is
        // what keeps detection times policy-invariant.
        for i in 0..20 {
            m.on_exhausted_burst(0, t(10 + i));
        }
        assert_eq!(m.state(0), NodeState::Suspect);
    }

    #[test]
    fn contained_burst_degrades_without_unrouting() {
        let mut m = monitor();
        m.on_contained_burst(0);
        assert_eq!(m.state(0), NodeState::Degraded);
        // Degraded stays routable and never opens the breaker.
        assert!(m.routable(0, t(1)));
        assert_eq!(m.breaker(0), BreakerState::Closed);
        // One clean ack is not enough; two clear it.
        m.on_probe_ack(0, t(2));
        assert_eq!(m.state(0), NodeState::Degraded);
        m.on_probe_ack(0, t(3));
        assert_eq!(m.state(0), NodeState::Healthy);
        // Liveness doubt outranks the downgrade.
        m.on_contained_burst(0);
        m.on_probe_miss(0, t(4));
        m.on_probe_miss(0, t(5));
        assert_eq!(m.state(0), NodeState::Suspect);
        // A miss between acks restarts the clean-ack requirement.
        m.on_probe_ack(0, t(6));
        m.on_contained_burst(0);
        m.on_probe_ack(0, t(7));
        m.on_probe_miss(0, t(8));
        m.on_probe_ack(0, t(9));
        assert_eq!(m.state(0), NodeState::Degraded, "miss reset the streak");
        m.on_probe_ack(0, t(10));
        assert_eq!(m.state(0), NodeState::Healthy);
    }

    #[test]
    fn mask_reflects_dead_and_open_nodes() {
        let mut m = monitor();
        for _ in 0..4 {
            m.on_probe_miss(0, t(1));
        }
        for i in 0..3 {
            m.on_request_failure(1, t(2 + i));
        }
        assert_eq!(m.unroutable_mask(t(10)), vec![true, true]);
        assert_eq!(m.dead_count(), 1);
    }
}
