//! Node-level failure detection and the per-node circuit breaker.
//!
//! The front end probes every node over the ToR switch's strict-priority
//! control lane (see [`TorSwitch::control_oneway_ns`]). Each probe gets a
//! deadline; a node that misses consecutive deadlines accumulates a
//! *suspicion score* — a timeout-based simplification of the phi-accrual
//! detector: the score is the fraction of the kill threshold reached, it
//! rises one step per missed deadline and collapses to zero on any ack —
//! and transitions `Healthy → Suspect → Dead`. Any later ack (a hung node
//! waking up) flips it straight back to `Healthy`.
//!
//! Independently, request outcomes drive a classic per-node **circuit
//! breaker**: `breaker_failures` *consecutive* request failures open it
//! (the node is excluded from routing), after `breaker_open_ns` it goes
//! half-open (one trial request is let through), and a success — a trial
//! request completing, or a heartbeat ack — closes it again.
//!
//! Both signals are consumed by the routing mask:
//! [`HealthMonitor::unroutable_mask`] marks a node unroutable while it is
//! `Dead`, `Joining`, or its breaker is open, which is what
//! [`HashRing::replicas_excluding`] consumes.
//!
//! **Differential slow-node detection.** Timeout-based probing is blind
//! to *gray* failures: a node that acks every probe while serving data
//! 10× slower never misses a deadline. The monitor therefore keeps a
//! per-node fixed-point EWMA of observed data-path service latency
//! (pure `u64` shift arithmetic — bit-identical across runs, which the
//! `float-in-sim-state` lint rule enforces) and, on every probe tick,
//! compares each node's EWMA against the cluster median. A node whose
//! EWMA exceeds `median × slow_threshold_pct / 100` for `slow_after`
//! consecutive evaluations is marked [`NodeState::Slow`]: still
//! routable, but deprioritized (load penalty under JSQ/LO, hedges at
//! the minimum delay, no new PUT leadership). `readmit_after`
//! consecutive below-threshold evaluations readmit it — deterministic
//! hysteresis in both directions. `differential: false` ablates the
//! detector so the blind baseline stays measurable.
//!
//! Everything here is plain deterministic state driven by simulator
//! events; the module owns no RNG, so detection times are reproducible
//! bit-for-bit from the probe schedule alone.
//!
//! [`TorSwitch::control_oneway_ns`]: crate::TorSwitch::control_oneway_ns
//! [`HashRing::replicas_excluding`]: crate::HashRing::replicas_excluding

use dcs_sim::SimTime;

/// Liveness state of one node as the front end believes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Acking probes; fully routable.
    Healthy,
    /// Missed at least `suspect_after` consecutive probe deadlines (or
    /// showed a retry-exhaustion burst); still routable, but hedges fire
    /// at the minimum delay against it.
    Suspect,
    /// Showed a burst of *contained* errors (corruptions the node
    /// detected and recovered — ECRC replays, rewritten completion
    /// entries, device resets). The node answers probes and serves
    /// traffic, so it is neither Suspect nor Dead; it stays routable with
    /// hedges at the minimum delay until two consecutive clean probe acks
    /// clear it.
    Degraded,
    /// Gray failure: the node acks every probe on time but its data-path
    /// latency EWMA sits above the cluster median by the configured
    /// ratio. Still routable, but deprioritized — JSQ/LO see a load
    /// penalty, hedges fire at the minimum delay, and PUTs skip it as
    /// primary when a faster replica survives. Readmitted to Healthy
    /// after `readmit_after` consecutive below-threshold evaluations.
    Slow,
    /// A restarted node running its rejoin lifecycle: it acks probes
    /// (alive) but is not yet routable — anti-entropy shard repair and
    /// cache warm-up must complete first.
    Joining,
    /// Missed `dead_after` consecutive probe deadlines: unroutable,
    /// in-flight requests are failed over, re-replication starts.
    Dead,
}

/// Per-node circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped by consecutive failures: unroutable until the open window
    /// elapses.
    Open,
    /// Open window elapsed: exactly one trial request may pass; its
    /// outcome (or a probe ack) decides Open vs Closed.
    HalfOpen,
}

/// Knobs for detection, failover, hedging, and repair. Lives inside
/// [`ClusterConfig`](crate::ClusterConfig); `enabled: false` turns the
/// entire tolerance layer off (the ablation the failover sweep measures).
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Master switch: probes, failover, retries, hedging, and repair all
    /// key off this.
    pub enabled: bool,
    /// Heartbeat period per node.
    pub probe_period_ns: u64,
    /// Probe deadline: an ack not seen this long after the probe was sent
    /// counts as a miss.
    pub probe_timeout_ns: u64,
    /// Control-frame size on the wire.
    pub probe_bytes: usize,
    /// Consecutive misses before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive misses before `Suspect → Dead`.
    pub dead_after: u32,
    /// Consecutive request failures that open the breaker.
    pub breaker_failures: u32,
    /// How long the breaker stays open before going half-open.
    pub breaker_open_ns: u64,
    /// Per-request budget for re-dispatching a request whose node died
    /// with it in flight (0 disables failover retries).
    pub request_retries: u32,
    /// Issue a hedged second GET to another replica when the first is
    /// slow.
    pub hedge: bool,
    /// Floor for the hedge delay (and the delay used against Suspect
    /// nodes).
    pub hedge_min_ns: u64,
    /// Ceiling for the hedge delay.
    pub hedge_max_ns: u64,
    /// Hedge delay until the latency histogram has enough samples for a
    /// p99.
    pub hedge_default_ns: u64,
    /// Pacing rate of the re-replication stream, Gbps (the bandwidth cap;
    /// chunks still serialize — and contend — on the ToR ports).
    pub repair_gbps: f64,
    /// Chunk size of the re-replication stream.
    pub repair_chunk_bytes: usize,
    /// Jump in the cluster-wide `SiteStats::exhausted` tally within one
    /// probe period that counts as a fault storm: nodes failing requests
    /// during such a burst are marked Suspect immediately instead of
    /// waiting out probe deadlines.
    pub exhausted_burst: u64,
    /// Jump in the cluster-wide *contained*-fault tally (errors detected
    /// and recovered in place: ECRC replays, completion-entry rewrites,
    /// device resets) within one probe period that marks serving nodes
    /// Degraded instead of Suspect: the node is alive and correct, just
    /// riding a fault storm.
    pub contained_burst: u64,
    /// Differential (median-relative) slow-node detection. `false` is
    /// the gray-failure ablation arm: probes alone, provably blind to a
    /// fail-slow node that keeps acking them.
    pub differential: bool,
    /// A node is slow when its latency EWMA exceeds
    /// `cluster median × slow_threshold_pct / 100`.
    pub slow_threshold_pct: u64,
    /// Consecutive above-threshold evaluations (one per probe tick)
    /// before `Healthy → Slow`.
    pub slow_after: u32,
    /// Consecutive below-threshold evaluations before `Slow → Healthy`.
    pub readmit_after: u32,
    /// Fixed-point EWMA smoothing: `ewma += (sample - ewma) >> shift`.
    pub ewma_shift: u32,
    /// Outstanding-request penalty JSQ/LO charge a Slow node, steering
    /// new work toward faster replicas without unrouting it.
    pub slow_load_penalty: usize,
    /// Pacing rate of the rejoin anti-entropy stream, Gbps (the reverse
    /// of re-replication: survivors stream the rejoining node's shards
    /// back to it).
    pub rejoin_gbps: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: true,
            probe_period_ns: 500_000,
            probe_timeout_ns: 2_500_000,
            probe_bytes: 128,
            suspect_after: 2,
            dead_after: 4,
            breaker_failures: 3,
            breaker_open_ns: 3_000_000,
            request_retries: 2,
            hedge: true,
            hedge_min_ns: 2_000_000,
            hedge_max_ns: 25_000_000,
            hedge_default_ns: 12_000_000,
            repair_gbps: 2.0,
            repair_chunk_bytes: 256 * 1024,
            exhausted_burst: 3,
            contained_burst: 8,
            differential: true,
            slow_threshold_pct: 250,
            slow_after: 3,
            readmit_after: 6,
            ewma_shift: 3,
            slow_load_penalty: 32,
            rejoin_gbps: 2.0,
        }
    }
}

impl HealthConfig {
    /// The whole tolerance layer off: no probes, no failover, no hedges,
    /// no repair. Node faults still fire — this is the ablation arm.
    pub fn disabled() -> HealthConfig {
        HealthConfig {
            enabled: false,
            ..HealthConfig::default()
        }
    }

    /// Probes on, differential detection off: the gray-failure ablation
    /// arm. Crashes and hangs are still caught (they miss deadlines);
    /// fail-slow and degraded-link grays are not.
    pub fn blind() -> HealthConfig {
        HealthConfig {
            differential: false,
            ..HealthConfig::default()
        }
    }

    /// Upper bound on crash-to-`Dead` detection latency: the first probe
    /// after the crash is at most one period away, `dead_after - 1` more
    /// periods accumulate the misses, and the last probe's deadline pays
    /// the timeout.
    pub fn detection_bound_ns(&self) -> u64 {
        self.dead_after as u64 * self.probe_period_ns + self.probe_timeout_ns
    }

    /// Upper bound on fail-slow detection latency: the EWMA needs at most
    /// `slow_after` evaluations past the point where enough slow samples
    /// accumulated; evaluations run once per probe period. The constant
    /// in front budgets EWMA convergence (`2^ewma_shift` samples) on top
    /// of the hysteresis walk — generous but still tight enough to make
    /// "bounded, seed-reproducible detection" a real assertion.
    pub fn slow_detection_bound_ns(&self) -> u64 {
        let convergence = 1u64 << self.ewma_shift;
        (convergence + self.slow_after as u64 + 1) * self.probe_period_ns + self.probe_timeout_ns
    }
}

/// What a probe event changed, when it changed something the driver must
/// act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// The node just crossed the death threshold: fail over its in-flight
    /// requests and start re-replication.
    Died,
    /// A previously-Dead node acked a probe (a hang ended): it is
    /// routable again.
    Revived,
}

/// What a differential evaluation changed (one entry per node that
/// crossed the hysteresis threshold this probe tick).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowTransition {
    /// `Healthy → Slow`: the node's EWMA sat above the median threshold
    /// for `slow_after` consecutive evaluations.
    Slowed(usize),
    /// `Slow → Healthy`: below threshold for `readmit_after` consecutive
    /// evaluations.
    Readmitted(usize),
}

#[derive(Clone, Debug)]
struct NodeHealth {
    state: NodeState,
    /// Consecutive missed probe deadlines.
    misses: u32,
    breaker: BreakerState,
    opened_at: SimTime,
    consecutive_failures: u32,
    /// A half-open trial request is in flight; hold further traffic.
    trial_inflight: bool,
    /// Consecutive clean probe acks while Degraded (two clear the state).
    clean_acks: u32,
    /// Fixed-point EWMA of observed data-path service latency, ns
    /// (0 = no samples yet). Plain `u64` shift arithmetic on purpose:
    /// accumulated simulation state must be bit-identical across runs.
    ewma_ns: u64,
    /// Consecutive above-threshold differential evaluations.
    slow_marks: u32,
    /// Consecutive below-threshold evaluations while Slow.
    fast_marks: u32,
}

impl NodeHealth {
    fn new() -> NodeHealth {
        NodeHealth {
            state: NodeState::Healthy,
            misses: 0,
            breaker: BreakerState::Closed,
            opened_at: SimTime::ZERO,
            consecutive_failures: 0,
            trial_inflight: false,
            clean_acks: 0,
            ewma_ns: 0,
            slow_marks: 0,
            fast_marks: 0,
        }
    }
}

/// The front end's per-node health book-keeping (probes in, routing mask
/// out). Owned and driven by the
/// [`ClusterDriver`](crate::ClusterDriver); see the module docs for the
/// state machines.
pub struct HealthMonitor {
    cfg: HealthConfig,
    nodes: Vec<NodeHealth>,
}

impl HealthMonitor {
    /// A monitor over `n` nodes, all Healthy with closed breakers.
    pub fn new(cfg: &HealthConfig, n: usize) -> HealthMonitor {
        HealthMonitor {
            cfg: cfg.clone(),
            nodes: vec![NodeHealth::new(); n],
        }
    }

    /// Current liveness state of `node`.
    pub fn state(&self, node: usize) -> NodeState {
        self.nodes[node].state
    }

    /// Current breaker state of `node` (without the lazy Open → HalfOpen
    /// promotion; use [`routable`](Self::routable) for routing decisions).
    pub fn breaker(&self, node: usize) -> BreakerState {
        self.nodes[node].breaker
    }

    /// The suspicion score: fraction of the kill threshold the node's
    /// consecutive misses have reached (>= 1.0 means Dead).
    pub fn score(&self, node: usize) -> f64 {
        self.nodes[node].misses as f64 / self.cfg.dead_after.max(1) as f64
    }

    /// A probe deadline passed without an ack.
    pub fn on_probe_miss(&mut self, node: usize, _now: SimTime) -> Option<Transition> {
        let n = &mut self.nodes[node];
        n.misses = n.misses.saturating_add(1);
        n.clean_acks = 0;
        if n.state == NodeState::Joining {
            // A rejoining node is already unroutable and being repaired;
            // misses are noted but drive no further transition.
            return None;
        }
        if n.misses >= self.cfg.dead_after && n.state != NodeState::Dead {
            n.state = NodeState::Dead;
            return Some(Transition::Died);
        }
        if n.misses >= self.cfg.suspect_after
            && matches!(
                n.state,
                NodeState::Healthy | NodeState::Degraded | NodeState::Slow
            )
        {
            // Liveness doubt outranks a contained-error or slow downgrade.
            n.state = NodeState::Suspect;
        }
        None
    }

    /// A probe ack arrived (possibly after its deadline — late acks from
    /// a waking node still count as life).
    pub fn on_probe_ack(&mut self, node: usize, _now: SimTime) -> Option<Transition> {
        let n = &mut self.nodes[node];
        n.misses = 0;
        // A heartbeat is the half-open "probe": it closes the breaker.
        if n.breaker != BreakerState::Closed {
            n.breaker = BreakerState::Closed;
            n.consecutive_failures = 0;
            n.trial_inflight = false;
        }
        match n.state {
            NodeState::Dead => {
                n.state = NodeState::Healthy;
                n.clean_acks = 0;
                Some(Transition::Revived)
            }
            NodeState::Suspect => {
                n.state = NodeState::Healthy;
                n.clean_acks = 0;
                None
            }
            NodeState::Degraded => {
                // Contained-error downgrades clear slowly: two consecutive
                // clean acks (the fault storm has to actually subside).
                n.clean_acks += 1;
                if n.clean_acks >= 2 {
                    n.state = NodeState::Healthy;
                    n.clean_acks = 0;
                }
                None
            }
            // An on-time ack says nothing about data-path speed: only the
            // differential evaluation readmits a Slow node.
            NodeState::Slow => None,
            // A rejoining node acks probes by definition; it becomes
            // routable when its repair completes, not here.
            NodeState::Joining => None,
            NodeState::Healthy => None,
        }
    }

    /// Feed one observed data-path service latency for `node` into its
    /// fixed-point EWMA. Dead and Joining nodes are skipped (their
    /// "latencies" are failover artifacts, not service observations).
    pub fn record_latency(&mut self, node: usize, sample_ns: u64) {
        let shift = self.cfg.ewma_shift;
        let n = &mut self.nodes[node];
        if matches!(n.state, NodeState::Dead | NodeState::Joining) {
            return;
        }
        if n.ewma_ns == 0 {
            n.ewma_ns = sample_ns;
        } else if sample_ns >= n.ewma_ns {
            n.ewma_ns += (sample_ns - n.ewma_ns) >> shift;
        } else {
            n.ewma_ns -= (n.ewma_ns - sample_ns) >> shift;
        }
    }

    /// Current latency EWMA of `node` (0 = no samples yet).
    pub fn ewma_ns(&self, node: usize) -> u64 {
        self.nodes[node].ewma_ns
    }

    /// One differential evaluation (run per probe tick): compare every
    /// node's EWMA against the cluster median and walk the slow/readmit
    /// hysteresis. Returns the transitions that fired, in node order.
    pub fn evaluate_slow(&mut self) -> Vec<SlowTransition> {
        if !self.cfg.differential {
            return Vec::new();
        }
        // The median is taken over nodes with at least one sample that
        // are participating in service (not Dead, not Joining).
        let mut samples: Vec<u64> = self
            .nodes
            .iter()
            .filter(|n| n.ewma_ns > 0 && !matches!(n.state, NodeState::Dead | NodeState::Joining))
            .map(|n| n.ewma_ns)
            .collect();
        if samples.len() < 2 {
            return Vec::new(); // one opinion is not a differential
        }
        samples.sort_unstable();
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2
        } else {
            samples[mid]
        };
        let threshold = median.saturating_mul(self.cfg.slow_threshold_pct) / 100;
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if n.ewma_ns == 0 {
                continue;
            }
            match n.state {
                NodeState::Healthy if n.ewma_ns > threshold => {
                    n.slow_marks += 1;
                    n.fast_marks = 0;
                    if n.slow_marks >= self.cfg.slow_after {
                        n.state = NodeState::Slow;
                        n.slow_marks = 0;
                        out.push(SlowTransition::Slowed(i));
                    }
                }
                NodeState::Healthy => {
                    n.slow_marks = 0;
                }
                NodeState::Slow if n.ewma_ns <= threshold => {
                    n.fast_marks += 1;
                    if n.fast_marks >= self.cfg.readmit_after {
                        n.state = NodeState::Healthy;
                        n.fast_marks = 0;
                        n.slow_marks = 0;
                        out.push(SlowTransition::Readmitted(i));
                    }
                }
                NodeState::Slow => {
                    n.fast_marks = 0;
                }
                _ => {}
            }
        }
        out
    }

    /// A crashed node restarted: it comes back *empty* in `Joining` —
    /// alive to probes but unroutable until anti-entropy repair and cache
    /// warm-up complete ([`complete_join`](Self::complete_join)). Its
    /// EWMA and hysteresis restart from scratch.
    pub fn begin_join(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        n.state = NodeState::Joining;
        n.misses = 0;
        n.breaker = BreakerState::Closed;
        n.consecutive_failures = 0;
        n.trial_inflight = false;
        n.clean_acks = 0;
        n.ewma_ns = 0;
        n.slow_marks = 0;
        n.fast_marks = 0;
    }

    /// The rejoin lifecycle finished: the node is routable again.
    pub fn complete_join(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        assert_eq!(n.state, NodeState::Joining, "complete_join without join");
        n.state = NodeState::Healthy;
    }

    /// A request to `node` completed successfully.
    pub fn on_request_success(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        n.consecutive_failures = 0;
        if n.breaker == BreakerState::HalfOpen {
            n.breaker = BreakerState::Closed;
            n.trial_inflight = false;
        }
    }

    /// A request to `node` completed with an error.
    pub fn on_request_failure(&mut self, node: usize, now: SimTime) {
        let n = &mut self.nodes[node];
        n.consecutive_failures = n.consecutive_failures.saturating_add(1);
        match n.breaker {
            BreakerState::HalfOpen => {
                // The trial failed: back to fully open.
                n.breaker = BreakerState::Open;
                n.opened_at = now;
                n.trial_inflight = false;
            }
            BreakerState::Closed if n.consecutive_failures >= self.cfg.breaker_failures => {
                n.breaker = BreakerState::Open;
                n.opened_at = now;
            }
            _ => {}
        }
    }

    /// The cluster-wide retry-exhaustion tally jumped this probe period
    /// and `node` failed requests during it: treat the node as Suspect
    /// right away and push its breaker toward opening.
    pub fn on_exhausted_burst(&mut self, node: usize, now: SimTime) {
        {
            let n = &mut self.nodes[node];
            if n.state == NodeState::Healthy {
                n.state = NodeState::Suspect;
                n.misses = n.misses.max(self.cfg.suspect_after);
            }
        }
        self.on_request_failure(node, now);
    }

    /// The cluster-wide *contained*-fault tally jumped this probe period
    /// and `node` was serving during it: mark it Degraded. Unlike
    /// [`on_exhausted_burst`](Self::on_exhausted_burst) this neither feeds
    /// the breaker nor touches the miss count — the node detected and
    /// recovered every one of those errors, so it stays fully routable.
    pub fn on_contained_burst(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        if n.state == NodeState::Healthy {
            n.state = NodeState::Degraded;
            n.clean_acks = 0;
        }
    }

    /// May traffic be routed to `node` right now? False while Dead,
    /// Joining, or breaker-open; a half-open breaker admits exactly one
    /// trial (the driver reports the dispatch via
    /// [`on_dispatch`](Self::on_dispatch)). Promotes Open → HalfOpen
    /// lazily once the open window elapses.
    pub fn routable(&mut self, node: usize, now: SimTime) -> bool {
        let open_ns = self.cfg.breaker_open_ns;
        let n = &mut self.nodes[node];
        if matches!(n.state, NodeState::Dead | NodeState::Joining) {
            return false;
        }
        match n.breaker {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_since(n.opened_at) >= open_ns {
                    n.breaker = BreakerState::HalfOpen;
                    n.trial_inflight = false;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => !n.trial_inflight,
        }
    }

    /// `excluded[n] == true` for every node routing must skip, in the
    /// shape [`HashRing::replicas_excluding`] consumes.
    ///
    /// [`HashRing::replicas_excluding`]: crate::HashRing::replicas_excluding
    pub fn unroutable_mask(&mut self, now: SimTime) -> Vec<bool> {
        (0..self.nodes.len())
            .map(|n| !self.routable(n, now))
            .collect()
    }

    /// The driver dispatched a request to `node`; a half-open breaker
    /// spends its single trial on it.
    pub fn on_dispatch(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        if n.breaker == BreakerState::HalfOpen {
            n.trial_inflight = true;
        }
    }

    /// Count of nodes currently believed Dead.
    pub fn dead_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Dead)
            .count()
    }

    /// Count of nodes currently marked Degraded (contained-error bursts).
    pub fn degraded_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Degraded)
            .count()
    }

    /// Count of nodes currently marked Slow (gray-failure detection).
    pub fn slow_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Slow)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + ns
    }

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(&HealthConfig::default(), 2)
    }

    #[test]
    fn misses_walk_healthy_suspect_dead_and_ack_revives() {
        let mut m = monitor();
        assert_eq!(m.state(0), NodeState::Healthy);
        assert_eq!(m.on_probe_miss(0, t(1)), None);
        assert_eq!(m.state(0), NodeState::Healthy, "one miss is noise");
        assert_eq!(m.on_probe_miss(0, t(2)), None);
        assert_eq!(m.state(0), NodeState::Suspect);
        assert!(m.score(0) < 1.0);
        assert_eq!(m.on_probe_miss(0, t(3)), None);
        assert_eq!(m.on_probe_miss(0, t(4)), Some(Transition::Died));
        assert_eq!(m.state(0), NodeState::Dead);
        assert!(m.score(0) >= 1.0);
        assert!(!m.routable(0, t(5)));
        // Node 1 is untouched throughout.
        assert_eq!(m.state(1), NodeState::Healthy);
        // A late ack (hang ended) revives it in one step.
        assert_eq!(m.on_probe_ack(0, t(6)), Some(Transition::Revived));
        assert_eq!(m.state(0), NodeState::Healthy);
        assert!(m.routable(0, t(7)));
        // Dying again re-reports the transition.
        for i in 0..3 {
            assert_eq!(m.on_probe_miss(0, t(8 + i)), None);
        }
        assert_eq!(m.on_probe_miss(0, t(12)), Some(Transition::Died));
    }

    #[test]
    fn breaker_opens_after_k_failures_and_half_open_trial_decides() {
        let mut m = monitor();
        // Interleaved successes keep resetting the consecutive count.
        for i in 0..10 {
            m.on_request_failure(0, t(i));
            m.on_request_success(0);
        }
        assert_eq!(m.breaker(0), BreakerState::Closed);
        for i in 0..3 {
            m.on_request_failure(0, t(100 + i));
        }
        assert_eq!(m.breaker(0), BreakerState::Open);
        assert!(!m.routable(0, t(110)), "open breaker blocks routing");
        // After the open window: half-open admits exactly one trial.
        let later = t(100 + 2 + 3_000_000);
        assert!(m.routable(0, later));
        assert_eq!(m.breaker(0), BreakerState::HalfOpen);
        m.on_dispatch(0);
        assert!(!m.routable(0, later), "one trial at a time");
        // Trial fails: reopen (and the window restarts from now).
        m.on_request_failure(0, later);
        assert_eq!(m.breaker(0), BreakerState::Open);
        assert!(!m.routable(0, later + 1_000_000));
        // Next half-open trial succeeds: closed.
        let again = later + 3_000_000;
        assert!(m.routable(0, again));
        m.on_dispatch(0);
        m.on_request_success(0);
        assert_eq!(m.breaker(0), BreakerState::Closed);
        assert!(m.routable(0, again));
    }

    #[test]
    fn probe_ack_closes_an_open_breaker() {
        let mut m = monitor();
        for i in 0..3 {
            m.on_request_failure(1, t(i));
        }
        assert_eq!(m.breaker(1), BreakerState::Open);
        m.on_probe_ack(1, t(10));
        assert_eq!(m.breaker(1), BreakerState::Closed);
        assert!(m.routable(1, t(11)));
    }

    #[test]
    fn exhausted_burst_jumps_straight_to_suspect() {
        let mut m = monitor();
        m.on_exhausted_burst(0, t(1));
        assert_eq!(m.state(0), NodeState::Suspect);
        // It feeds the breaker too: two more failures open it.
        m.on_request_failure(0, t(2));
        m.on_request_failure(0, t(3));
        assert_eq!(m.breaker(0), BreakerState::Open);
        // But bursts alone never declare death — only probes do, which is
        // what keeps detection times policy-invariant.
        for i in 0..20 {
            m.on_exhausted_burst(0, t(10 + i));
        }
        assert_eq!(m.state(0), NodeState::Suspect);
    }

    #[test]
    fn contained_burst_degrades_without_unrouting() {
        let mut m = monitor();
        m.on_contained_burst(0);
        assert_eq!(m.state(0), NodeState::Degraded);
        // Degraded stays routable and never opens the breaker.
        assert!(m.routable(0, t(1)));
        assert_eq!(m.breaker(0), BreakerState::Closed);
        // One clean ack is not enough; two clear it.
        m.on_probe_ack(0, t(2));
        assert_eq!(m.state(0), NodeState::Degraded);
        m.on_probe_ack(0, t(3));
        assert_eq!(m.state(0), NodeState::Healthy);
        // Liveness doubt outranks the downgrade.
        m.on_contained_burst(0);
        m.on_probe_miss(0, t(4));
        m.on_probe_miss(0, t(5));
        assert_eq!(m.state(0), NodeState::Suspect);
        // A miss between acks restarts the clean-ack requirement.
        m.on_probe_ack(0, t(6));
        m.on_contained_burst(0);
        m.on_probe_ack(0, t(7));
        m.on_probe_miss(0, t(8));
        m.on_probe_ack(0, t(9));
        assert_eq!(m.state(0), NodeState::Degraded, "miss reset the streak");
        m.on_probe_ack(0, t(10));
        assert_eq!(m.state(0), NodeState::Healthy);
    }

    #[test]
    fn slow_detection_walks_hysteresis_both_ways() {
        let mut m = HealthMonitor::new(&HealthConfig::default(), 4);
        // Nodes 0-2 serve at ~1 ms; node 3 at ~10 ms.
        for _ in 0..16 {
            for n in 0..3 {
                m.record_latency(n, 1_000_000);
            }
            m.record_latency(3, 10_000_000);
        }
        assert!(m.ewma_ns(3) > 5_000_000, "EWMA converges toward samples");
        // slow_after = 3 evaluations before the transition fires.
        assert_eq!(m.evaluate_slow(), vec![]);
        assert_eq!(m.evaluate_slow(), vec![]);
        assert_eq!(m.evaluate_slow(), vec![SlowTransition::Slowed(3)]);
        assert_eq!(m.state(3), NodeState::Slow);
        assert_eq!(m.slow_count(), 1);
        // Slow stays routable — that is the whole point.
        assert!(m.routable(3, t(1)));
        // The fault ends; fast samples drag the EWMA back down.
        for _ in 0..64 {
            m.record_latency(3, 1_000_000);
        }
        // readmit_after = 6 below-threshold evaluations readmit it.
        for _ in 0..5 {
            assert_eq!(m.evaluate_slow(), vec![]);
        }
        assert_eq!(m.evaluate_slow(), vec![SlowTransition::Readmitted(3)]);
        assert_eq!(m.state(3), NodeState::Healthy);
    }

    #[test]
    fn blind_config_never_marks_slow() {
        let mut m = HealthMonitor::new(&HealthConfig::blind(), 2);
        for _ in 0..32 {
            m.record_latency(0, 1_000_000);
            m.record_latency(1, 50_000_000);
        }
        for _ in 0..10 {
            assert_eq!(m.evaluate_slow(), vec![]);
        }
        assert_eq!(m.state(1), NodeState::Healthy);
    }

    #[test]
    fn probe_misses_outrank_slow() {
        let mut m = HealthMonitor::new(&HealthConfig::default(), 4);
        for _ in 0..16 {
            for n in 0..3 {
                m.record_latency(n, 1_000_000);
            }
            m.record_latency(3, 20_000_000);
        }
        for _ in 0..3 {
            m.evaluate_slow();
        }
        assert_eq!(m.state(3), NodeState::Slow);
        m.on_probe_miss(3, t(1));
        m.on_probe_miss(3, t(2));
        assert_eq!(m.state(3), NodeState::Suspect, "liveness doubt wins");
        for i in 0..2 {
            m.on_probe_miss(3, t(3 + i));
        }
        assert_eq!(m.state(3), NodeState::Dead);
    }

    #[test]
    fn joining_is_unroutable_until_completed_and_acks_do_not_promote() {
        let mut m = monitor();
        for _ in 0..4 {
            m.on_probe_miss(0, t(1));
        }
        assert_eq!(m.state(0), NodeState::Dead);
        m.begin_join(0);
        assert_eq!(m.state(0), NodeState::Joining);
        assert!(!m.routable(0, t(2)), "joining nodes take no traffic");
        // Probe acks keep it alive but do not make it routable.
        assert_eq!(m.on_probe_ack(0, t(3)), None);
        assert_eq!(m.state(0), NodeState::Joining);
        // Misses during the join drive no transition either.
        assert_eq!(m.on_probe_miss(0, t(4)), None);
        assert_eq!(m.state(0), NodeState::Joining);
        m.complete_join(0);
        assert_eq!(m.state(0), NodeState::Healthy);
        assert!(m.routable(0, t(5)));
    }

    #[test]
    fn mask_reflects_dead_and_open_nodes() {
        let mut m = monitor();
        for _ in 0..4 {
            m.on_probe_miss(0, t(1));
        }
        for i in 0..3 {
            m.on_request_failure(1, t(2 + i));
        }
        assert_eq!(m.unroutable_mask(t(10)), vec![true, true]);
        assert_eq!(m.dead_count(), 1);
    }
}
