//! Pluggable load-balancing policies for the cluster front end.
//!
//! A policy picks one node out of a request's candidate set (the replica
//! set for GETs; the primary alone for PUTs). Round-robin is oblivious;
//! the queue-aware policies consult the front end's live per-node load
//! view — outstanding dispatched requests, and for JSQ also the requests
//! parked in each node's admission queue — which is how the cluster
//! reroutes around hot or degraded nodes without any explicit failure
//! signal.

/// Per-node load as the front end sees it.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeLoad {
    /// Requests dispatched to the node and not yet completed.
    pub outstanding: usize,
    /// Requests waiting in the node's admission queue at the front end.
    pub queued: usize,
    /// Extra load charged by the health layer: a node marked `Slow` by
    /// differential detection carries a fixed handicap so the queue-aware
    /// policies steer around it while it still receives a trickle of
    /// traffic (the samples that can readmit it). Round-robin ignores the
    /// penalty — it is load-oblivious by design.
    pub penalty: usize,
}

/// The policies the cluster sweep compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LbPolicy {
    /// Rotate through candidates, ignoring load.
    RoundRobin,
    /// Candidate with the fewest dispatched-but-uncompleted requests.
    LeastOutstanding,
    /// Join-shortest-queue: candidate with the fewest total requests
    /// (outstanding plus admission-queued).
    JoinShortestQueue,
}

impl LbPolicy {
    /// Every policy, in presentation order.
    pub const ALL: [LbPolicy; 3] = [
        LbPolicy::RoundRobin,
        LbPolicy::LeastOutstanding,
        LbPolicy::JoinShortestQueue,
    ];

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            LbPolicy::RoundRobin => "round-robin",
            LbPolicy::LeastOutstanding => "least-out",
            LbPolicy::JoinShortestQueue => "jsq",
        }
    }

    /// Picks the target node from `candidates`. `loads` is indexed by
    /// node id; `cursor` advances on every round-robin pick. Ties go to
    /// the candidate listed first (for GETs that is the primary replica),
    /// keeping the choice deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn choose(self, candidates: &[usize], loads: &[NodeLoad], cursor: &mut usize) -> usize {
        assert!(
            !candidates.is_empty(),
            "policy needs at least one candidate"
        );
        match self {
            LbPolicy::RoundRobin => {
                let pick = candidates[*cursor % candidates.len()];
                *cursor = cursor.wrapping_add(1);
                pick
            }
            LbPolicy::LeastOutstanding => *candidates
                .iter()
                .min_by_key(|&&n| loads[n].outstanding + loads[n].penalty)
                .expect("non-empty"),
            LbPolicy::JoinShortestQueue => *candidates
                .iter()
                .min_by_key(|&&n| loads[n].outstanding + loads[n].queued + loads[n].penalty)
                .expect("non-empty"),
        }
    }
}

impl std::fmt::Display for LbPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(outstanding: &[usize], queued: &[usize]) -> Vec<NodeLoad> {
        outstanding
            .iter()
            .zip(queued)
            .map(|(&o, &q)| NodeLoad {
                outstanding: o,
                queued: q,
                penalty: 0,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_candidates() {
        let l = loads(&[9, 0, 0], &[0, 0, 0]);
        let mut cursor = 0;
        let picks: Vec<usize> = (0..4)
            .map(|_| LbPolicy::RoundRobin.choose(&[0, 2], &l, &mut cursor))
            .collect();
        // Oblivious: keeps picking the loaded node 0 in turn.
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_outstanding_ignores_admission_queues() {
        let l = loads(&[3, 5], &[100, 0]);
        let mut cursor = 0;
        assert_eq!(
            LbPolicy::LeastOutstanding.choose(&[0, 1], &l, &mut cursor),
            0
        );
    }

    #[test]
    fn jsq_counts_queued_work() {
        let l = loads(&[3, 5], &[100, 0]);
        let mut cursor = 0;
        assert_eq!(
            LbPolicy::JoinShortestQueue.choose(&[0, 1], &l, &mut cursor),
            1
        );
    }

    #[test]
    fn slow_penalty_steers_queue_aware_policies() {
        let mut l = loads(&[1, 4], &[0, 0]);
        l[0].penalty = 32;
        let mut cursor = 0;
        // Both queue-aware policies avoid the penalized node...
        assert_eq!(
            LbPolicy::LeastOutstanding.choose(&[0, 1], &l, &mut cursor),
            1
        );
        assert_eq!(
            LbPolicy::JoinShortestQueue.choose(&[0, 1], &l, &mut cursor),
            1
        );
        // ...while round-robin stays oblivious.
        let mut cursor = 0;
        assert_eq!(LbPolicy::RoundRobin.choose(&[0, 1], &l, &mut cursor), 0);
    }

    #[test]
    fn ties_prefer_first_candidate() {
        let l = loads(&[2, 2, 2], &[0, 0, 0]);
        let mut cursor = 0;
        assert_eq!(
            LbPolicy::LeastOutstanding.choose(&[1, 0, 2], &l, &mut cursor),
            1
        );
        assert_eq!(
            LbPolicy::JoinShortestQueue.choose(&[2, 1], &l, &mut cursor),
            2
        );
    }
}
