//! The cluster front end: open-loop traffic generation, load balancing,
//! admission control, failure tolerance, and end-to-end measurement.
//!
//! One [`ClusterDriver`] component plays the role of the datacenter's
//! front-end tier. It draws Poisson request arrivals scaled to the
//! cluster's offered load, resolves each object through the consistent-
//! hash [`HashRing`], lets the configured
//! [`LbPolicy`] pick a replica, and pushes the request through the
//! [`TorSwitch`] to the chosen node, where it runs as real simulated
//! [`D2dJob`]s on that node's devices (SSD → MD5 → NIC for GETs, the
//! reverse for PUTs — the same shapes as the Swift workload).
//!
//! Overload is handled at admission: each node serves at most
//! `max_outstanding` requests with at most `queue_cap` more parked in a
//! per-node FIFO; beyond that, requests are shed immediately. Shedding
//! bounds every queue in the system, so p99 latency of *served* requests
//! degrades gracefully instead of growing without bound as offered load
//! passes saturation.
//!
//! Whole-node failures ([`NodeFault`]: a crash or a hang) are tolerated by
//! the health layer (see [`crate::health`]):
//!
//! - every node is heartbeat-probed over the switch's strict-priority
//!   control lane; consecutive missed deadlines walk it Healthy → Suspect
//!   → Dead, at which point routing skips it, its in-flight requests are
//!   re-dispatched to surviving replicas (bounded retry budget), its
//!   admission queue is re-routed, and re-replication starts;
//! - GETs may be *hedged*: after a p99-derived delay a second copy goes to
//!   another replica and the first completion wins;
//! - PUTs whose primary is unroutable fall back to a surviving replica
//!   (write availability), counted as `put_fallbacks`;
//! - re-replication copies the dead node's shard ranges to ring successors
//!   as a bandwidth-capped chunk stream that contends with foreground
//!   traffic on the switch ports.
//!
//! Availability is accounted at *resolution*: every generated request ends
//! as served, denied (shed or unroutable), or lost (stranded on a failed
//! node with its retry budget spent), which is what the failover sweep's
//! before/during/after phase split reports.

use std::collections::{BTreeMap, VecDeque};

use dcs_host::cpu::{CpuJob, CpuJobDone, CpuStats};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{Bandwidth, Component, Ctx, Histogram, Msg, Rng, SimTime};
use dcs_workloads::gen::SizeDistribution;
use dcs_workloads::scenario::NodeRef;

use crate::health::{HealthConfig, HealthMonitor, NodeState, SlowTransition, Transition};
use crate::policy::{LbPolicy, NodeLoad};
use crate::report::{ClusterReport, NodePerf, PhasePerf};
use crate::shard::HashRing;
use crate::switch::{SwitchConfig, TorSwitch};

/// Bytes of a GET request on the wire (headers only).
const GET_REQ_BYTES: usize = 512;
/// Header overhead on a PUT request (the payload rides along).
const PUT_REQ_OVERHEAD: usize = 512;
/// Response overhead on a GET (headers + integrity digest).
const GET_RESP_OVERHEAD: usize = 256;
/// Bytes of a PUT acknowledgement.
const PUT_ACK_BYTES: usize = 128;

/// A mid-run node degradation: at `at_ns`, `node`'s switch port drops to
/// `factor` of its line rate (a flapping cable / half-dead transceiver).
/// Queue-aware policies reroute around it; round-robin keeps feeding it.
#[derive(Clone, Copy, Debug)]
pub struct Degrade {
    /// Node to degrade.
    pub node: usize,
    /// When to degrade it (absolute simulation time, ns).
    pub at_ns: u64,
    /// Remaining fraction of port speed (e.g. 0.1).
    // dcs-lint: allow(float-in-sim-state) — an input knob set before the run and never mutated
    pub factor: f64,
}

/// A whole-node failure injected mid-run. Unlike [`Degrade`] (a slow port)
/// or a [`FaultPlan`](dcs_sim::FaultPlan) (retried device errors), these
/// take requests down with the node — the cases the health layer exists
/// for.
#[derive(Clone, Copy, Debug)]
pub enum NodeFault {
    /// At `at_ns` (after traffic start) the node stops dead: requests in
    /// flight there are lost, nothing is accepted or completed afterwards.
    /// With `restart_at_ns` set the node comes back *empty* at that time
    /// and runs the rejoin lifecycle: `Joining` (unroutable, acks probes)
    /// → anti-entropy shard repair from surviving replicas → routable.
    Crash {
        /// Node to crash.
        node: usize,
        /// When to crash it, ns after traffic start.
        at_ns: u64,
        /// When (ns after traffic start, must be after `at_ns`) the node
        /// restarts and begins rejoining; `None` = it stays down.
        restart_at_ns: Option<u64>,
    },
    /// At `at_ns` the node freezes for `for_ns`: it keeps accepting bytes
    /// but completes nothing — and acks no probes — until the hang ends,
    /// at which point everything it swallowed resumes.
    Hang {
        /// Node to hang.
        node: usize,
        /// When to hang it, ns after traffic start.
        at_ns: u64,
        /// Hang duration, ns.
        for_ns: u64,
    },
    /// A *gray* failure: from `at_ns` for `for_ns` the node serves every
    /// request `factor`× slower (a dying SSD, thermal throttling, a
    /// runaway background job) while still acking every probe on time —
    /// the timeout detector is provably blind to it; only the
    /// differential (median-relative EWMA) detector sees it.
    FailSlow {
        /// Node to slow.
        node: usize,
        /// When the slowdown starts, ns after traffic start.
        at_ns: u64,
        /// Slowdown duration, ns.
        for_ns: u64,
        /// Service-latency multiplier (e.g. 10 = everything takes 10×).
        factor: u64,
    },
    /// A degraded ToR port: from `at_ns` for `for_ns` the node's switch
    /// port runs at `speed_pct`% of line rate (a flapping transceiver).
    /// Mild enough that probe acks still make their deadlines — another
    /// gray failure only the differential detector catches.
    LinkDegrade {
        /// Node whose port degrades.
        node: usize,
        /// When the degradation starts, ns after traffic start.
        at_ns: u64,
        /// Degradation duration, ns.
        for_ns: u64,
        /// Remaining port speed, percent of line rate (1..=100).
        speed_pct: u64,
    },
}

impl NodeFault {
    /// The faulted node.
    pub fn node(&self) -> usize {
        match *self {
            NodeFault::Crash { node, .. }
            | NodeFault::Hang { node, .. }
            | NodeFault::FailSlow { node, .. }
            | NodeFault::LinkDegrade { node, .. } => node,
        }
    }

    /// When the fault fires, ns after traffic start.
    pub fn at_ns(&self) -> u64 {
        match *self {
            NodeFault::Crash { at_ns, .. }
            | NodeFault::Hang { at_ns, .. }
            | NodeFault::FailSlow { at_ns, .. }
            | NodeFault::LinkDegrade { at_ns, .. } => at_ns,
        }
    }

    /// When the fault clears (ns after traffic start), for faults with a
    /// bounded window. `None` for a crash (a restart is a new lifecycle
    /// phase, not the fault clearing on its own).
    pub fn end_ns(&self) -> Option<u64> {
        match *self {
            NodeFault::Crash { .. } => None,
            NodeFault::Hang { at_ns, for_ns, .. }
            | NodeFault::FailSlow { at_ns, for_ns, .. }
            | NodeFault::LinkDegrade { at_ns, for_ns, .. } => Some(at_ns + for_ns),
        }
    }
}

/// Full description of a cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of DCS server nodes.
    pub nodes: usize,
    /// Design each node runs (the HDC Engine, or a software baseline).
    pub design: dcs_workloads::DesignUnderTest,
    /// Load-balancing policy at the front end.
    pub policy: LbPolicy,
    /// Replica count per object (GETs choose among these).
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes_per_node: usize,
    /// Size of the object-id space.
    pub objects: u64,
    /// Fraction of requests that are GETs.
    pub get_fraction: f64,
    /// Object-size distribution.
    pub sizes: SizeDistribution,
    /// Offered load per node, Gbps (cluster offered load is this × N).
    pub offered_gbps_per_node: f64,
    /// Total run length.
    pub duration_ns: u64,
    /// Warm-up trimmed from measurements.
    pub warmup_ns: u64,
    /// Per-node concurrent request limit (admission control).
    pub max_outstanding: usize,
    /// Per-node admission queue bound; beyond it requests are shed.
    pub queue_cap: usize,
    /// Top-of-rack switch provisioning.
    pub switch: SwitchConfig,
    /// Per-node testbed parameters (SSD count, node wire).
    pub testbed: dcs_workloads::TestbedConfig,
    /// Simulation seed (drives arrivals, sizes, and any fault plan).
    pub seed: u64,
    /// If positive, installs `FaultPlan::uniform(rate)` over every
    /// injection site in every node before traffic starts.
    pub fault_rate: f64,
    /// Optional mid-run node degradation.
    pub degrade: Option<Degrade>,
    /// Whole-node failures to inject.
    pub node_faults: Vec<NodeFault>,
    /// The failure-tolerance layer (probing, failover, hedging, repair);
    /// [`HealthConfig::disabled`] is the ablation arm.
    pub health: HealthConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            design: dcs_workloads::DesignUnderTest::DcsCtrl,
            policy: LbPolicy::JoinShortestQueue,
            replication: 2,
            // Placement spread shrinks like 1/sqrt(vnodes); 256 keeps the
            // hottest node within ~10% of the mean, which matters because
            // PUTs are pinned to primaries and cannot be rerouted.
            vnodes_per_node: 256,
            objects: 4096,
            get_fraction: 0.67,
            sizes: SizeDistribution::default(),
            offered_gbps_per_node: 6.0,
            duration_ns: dcs_sim::time::ms(30),
            warmup_ns: dcs_sim::time::ms(5),
            // The node pipeline (SSD → hash → NIC, 48-deep wire interleave)
            // needs ~48 concurrent requests to reach line rate; the queue
            // bound keeps worst-case sojourn a small multiple of service.
            max_outstanding: 48,
            queue_cap: 64,
            switch: SwitchConfig::default(),
            testbed: dcs_workloads::TestbedConfig::default(),
            seed: 0xDC5C,
            fault_rate: 0.0,
            degrade: None,
            node_faults: vec![],
            health: HealthConfig::default(),
        }
    }
}

/// The finished report, left in the world when the window closes (or, if a
/// repair stream outlives the window, when the repair completes).
#[derive(Debug)]
pub struct ClusterOutcome(pub ClusterReport);

/// One cluster node as the front end sees it: the measured server and its
/// rack-side access peer (the opposite end of the node's downlink wire).
#[derive(Clone, Debug)]
pub struct ClusterNode {
    /// The DCS server.
    pub server: NodeRef,
    /// The access endpoint terminating the node's downlink at the rack.
    pub access: NodeRef,
}

/// Kickoff event for the front end (sent once by
/// [`build_cluster`](crate::build_cluster)).
#[derive(Debug)]
pub struct Start;
#[derive(Debug)]
struct Arrival;
#[derive(Debug)]
struct WarmupOver;
#[derive(Debug)]
struct WindowOver;
#[derive(Debug)]
struct DegradeNow;
/// The request's bytes finished arriving at the node port: submit its jobs.
#[derive(Debug)]
struct Delivered {
    req: u64,
}
/// The response's bytes finished arriving back at the front end.
#[derive(Debug)]
struct Response {
    req: u64,
}
/// Heartbeat cadence: probe every node, then re-arm.
#[derive(Debug)]
struct ProbeTick;
/// A probe frame finished arriving at the node.
#[derive(Debug)]
struct ProbeDelivered {
    node: usize,
    seq: u64,
}
/// A probe ack finished arriving back at the front end.
#[derive(Debug)]
struct ProbeAck {
    node: usize,
    seq: u64,
}
/// The probe's deadline: no ack by now counts as a miss.
#[derive(Debug)]
struct ProbeDeadline {
    node: usize,
    seq: u64,
}
/// Fire the `idx`-th configured [`NodeFault`].
#[derive(Debug)]
struct NodeFaultAt {
    idx: usize,
}
/// A [`NodeFault::Hang`] elapsed: the node resumes where it froze.
#[derive(Debug)]
struct HangOver {
    node: usize,
}
/// A [`NodeFault::FailSlow`] window elapsed: service latency normalizes.
#[derive(Debug)]
struct FailSlowOver {
    node: usize,
}
/// A [`NodeFault::LinkDegrade`] window elapsed: the port recovers line
/// rate.
#[derive(Debug)]
struct LinkRestore {
    node: usize,
}
/// A crashed node's configured restart time: begin the rejoin lifecycle.
#[derive(Debug)]
struct RestartAt {
    node: usize,
}
/// Pacing tick of the rejoin anti-entropy stream: ship the next chunk.
#[derive(Debug)]
struct RejoinChunk;
/// The last rejoin chunk was delivered: the node becomes routable.
#[derive(Debug)]
struct RejoinDone;
/// The hedge delay for `req` elapsed: issue the second GET if the first
/// has not resolved.
#[derive(Debug)]
struct HedgeFire {
    req: u64,
}
/// Pacing tick of the re-replication stream: ship the next chunk.
#[derive(Debug)]
struct RepairChunk;
/// The last repair chunk was delivered.
#[derive(Debug)]
struct RepairDone;

/// A generated request not yet dispatched (parked at admission).
#[derive(Debug)]
struct Pending {
    object: u64,
    len: usize,
    is_get: bool,
    arrival: SimTime,
    /// Remaining failover re-dispatches if the serving node dies.
    retries_left: u32,
}

/// A dispatched request leg (a hedged GET has two, linked by `partner`).
#[derive(Debug)]
struct InFlight {
    node: usize,
    slot: usize,
    len: usize,
    is_get: bool,
    arrival: SimTime,
    object: u64,
    /// When this leg left the front end for its node. Per-leg latency is
    /// measured from here, not from `arrival`: a hedge leg fired after a
    /// long hedge delay must not charge that wait to the healthy node
    /// serving it, or every node's EWMA rises with the victim's and the
    /// differential detector loses its outlier.
    dispatched_at: SimTime,
    /// When the node actually started serving (jobs submitted); the
    /// fail-slow hold scales the span between this and job completion.
    served_at: SimTime,
    pending_jobs: usize,
    failed: bool,
    /// This leg is the hedged second copy.
    is_hedge: bool,
    /// The other leg of the same logical request, while both are live.
    partner: Option<u64>,
    retries_left: u32,
    /// The other leg already resolved the request: on completion just
    /// release resources, tally nothing.
    orphaned: bool,
}

/// Why a node is coming back: the distinction only matters for the
/// counters (`cluster.node_revived` vs `cluster.node_rejoined`); the
/// resume mechanics are one shared path (`ClusterDriver::resume_node`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ResumeKind {
    /// A hang elapsed: the node resumes where it froze.
    Revived,
    /// A crash-restart finished its rejoin lifecycle (anti-entropy repair
    /// complete): the node is routable again.
    Rejoined,
}

/// One resolved request, kept (only when node faults are configured) for
/// the before/during/after phase split.
#[derive(Clone, Copy, Debug)]
struct Rec {
    /// Arrival time, absolute ns.
    at_ns: u64,
    ok: bool,
    latency_ns: u64,
}

/// The front-end component.
pub struct ClusterDriver {
    cfg: ClusterConfig,
    nodes: Vec<ClusterNode>,
    switch: TorSwitch,
    ring: HashRing,
    rng: Rng,
    // dcs-lint: allow(float-in-sim-state) — derived once from the offered load at build; read-only thereafter
    mean_interarrival_ns: f64,
    // Admission state, indexed by node.
    outstanding: Vec<usize>,
    queues: Vec<VecDeque<Pending>>,
    free_slots: Vec<Vec<usize>>,
    rr_cursor: usize,
    // Request tracking.
    inflight: BTreeMap<u64, InFlight>,
    job_to_req: BTreeMap<u64, u64>,
    next_req: u64,
    next_job_id: u64,
    // Health and node-fault state, indexed by node.
    health: HealthMonitor,
    crashed: Vec<bool>,
    hung_until: Vec<Option<SimTime>>,
    /// Requests delivered to a hung node, waiting for it to wake.
    held_jobs: Vec<Vec<u64>>,
    /// Responses computed on a node that hung before shipping them.
    held_responses: Vec<Vec<u64>>,
    /// Probe seqs swallowed by a hung node, acked when it wakes.
    held_probes: Vec<Vec<u64>>,
    probe_seq: u64,
    last_ack: Vec<u64>,
    /// Nodes that failed a request since the last probe tick (exhausted-
    /// burst attribution).
    node_fail_marks: Vec<bool>,
    last_exhausted: u64,
    /// Nodes that served a request since the last probe tick (contained-
    /// burst attribution).
    node_serve_marks: Vec<bool>,
    last_contained: u64,
    /// First configured fault, for detection/phase accounting.
    fault_at_abs: u64,
    fault_node: usize,
    detected_at: Option<SimTime>,
    /// When the first fault's window clears (hang / fail-slow / link
    /// degrade), for the phase split.
    fault_end_abs: Option<u64>,
    /// Active fail-slow multiplier per node.
    fail_slow: Vec<Option<u64>>,
    /// When the first fault's node was marked Slow by the differential
    /// detector (gray-failure detection latency).
    slow_detected_at: Option<SimTime>,
    slow_evictions: u64,
    slow_readmissions: u64,
    // Re-replication state.
    repair_started: Vec<bool>,
    repair_queue: VecDeque<(usize, usize, u64)>,
    repair_bytes_sent: u64,
    repair_last_delivery: SimTime,
    repair_start_at: Option<SimTime>,
    repair_done_at: Option<SimTime>,
    repair_active: bool,
    // Rejoin anti-entropy state (the reverse stream: survivors → the
    // restarted node).
    rejoin_queue: VecDeque<(usize, usize, u64)>,
    rejoin_bytes_sent: u64,
    rejoin_last_delivery: SimTime,
    rejoin_start_at: Option<SimTime>,
    rejoin_done_at: Option<SimTime>,
    rejoin_active: bool,
    /// The node currently rejoining (at most one crash-restart per run is
    /// scheduled by the sweeps, but the queue tags (src, dst) anyway).
    rejoin_node: Option<usize>,
    /// Report built at window close while repair was still streaming.
    report_pending: Option<ClusterReport>,
    // Measurement.
    measuring: bool,
    window_closed: bool,
    measure_start: SimTime,
    latency: Histogram,
    requests: u64,
    bytes: u64,
    rejected: u64,
    failures: u64,
    get_ok: u64,
    get_denied: u64,
    put_ok: u64,
    put_denied: u64,
    hedged: u64,
    hedge_wins: u64,
    retried: u64,
    lost: u64,
    put_fallbacks: u64,
    degraded_marks: u64,
    records: Vec<Rec>,
    per_node: Vec<NodePerf>,
}

impl ClusterDriver {
    /// Creates the front end over `nodes` (one entry per cluster node).
    pub fn new(cfg: ClusterConfig, nodes: Vec<ClusterNode>, rng: Rng) -> ClusterDriver {
        assert_eq!(cfg.nodes, nodes.len(), "node list must match config");
        assert!(cfg.max_outstanding > 0, "admission needs at least one slot");
        assert!(
            cfg.sizes.max as u64 * 8 <= 4 << 30,
            "object window sizing assumes objects of at most 512 MiB"
        );
        let n = nodes.len();
        let switch = TorSwitch::new(n, cfg.switch.clone());
        let ring = HashRing::new(n, cfg.vnodes_per_node, cfg.replication);
        let mean_size = cfg.sizes.mean_estimate();
        let total_gbps = cfg.offered_gbps_per_node * n as f64;
        let mean_interarrival_ns = mean_size * 8.0 / total_gbps;
        let health = HealthMonitor::new(&cfg.health, n);
        ClusterDriver {
            switch,
            ring,
            rng,
            mean_interarrival_ns,
            outstanding: vec![0; n],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            free_slots: (0..n)
                .map(|_| (0..cfg.max_outstanding).rev().collect())
                .collect(),
            rr_cursor: 0,
            inflight: BTreeMap::new(),
            job_to_req: BTreeMap::new(),
            next_req: 1,
            next_job_id: 1,
            health,
            crashed: vec![false; n],
            hung_until: vec![None; n],
            held_jobs: vec![Vec::new(); n],
            held_responses: vec![Vec::new(); n],
            held_probes: vec![Vec::new(); n],
            probe_seq: 0,
            last_ack: vec![0; n],
            node_fail_marks: vec![false; n],
            last_exhausted: 0,
            node_serve_marks: vec![false; n],
            last_contained: 0,
            fault_at_abs: u64::MAX,
            fault_node: usize::MAX,
            detected_at: None,
            fault_end_abs: None,
            fail_slow: vec![None; n],
            slow_detected_at: None,
            slow_evictions: 0,
            slow_readmissions: 0,
            repair_started: vec![false; n],
            repair_queue: VecDeque::new(),
            repair_bytes_sent: 0,
            repair_last_delivery: SimTime::ZERO,
            repair_start_at: None,
            repair_done_at: None,
            repair_active: false,
            rejoin_queue: VecDeque::new(),
            rejoin_bytes_sent: 0,
            rejoin_last_delivery: SimTime::ZERO,
            rejoin_start_at: None,
            rejoin_done_at: None,
            rejoin_active: false,
            rejoin_node: None,
            report_pending: None,
            measuring: false,
            window_closed: false,
            measure_start: SimTime::ZERO,
            latency: Histogram::new(),
            requests: 0,
            bytes: 0,
            rejected: 0,
            failures: 0,
            get_ok: 0,
            get_denied: 0,
            put_ok: 0,
            put_denied: 0,
            hedged: 0,
            hedge_wins: 0,
            retried: 0,
            lost: 0,
            put_fallbacks: 0,
            degraded_marks: 0,
            records: Vec::new(),
            per_node: vec![NodePerf::default(); n],
            cfg,
            nodes,
        }
    }

    /// Maps an object to its LBA inside a node's flash window. GETs and
    /// PUTs use disjoint 4 GiB windows so reads never race writes.
    fn lba_for(&self, object: u64, is_get: bool) -> u64 {
        let blocks_per_object = (self.cfg.sizes.max.div_ceil(4096)) as u64;
        let window_blocks = (4u64 << 30) / 4096;
        let slots = (window_blocks / blocks_per_object).max(1);
        let base = if is_get { 0 } else { window_blocks };
        base + (object % slots) * blocks_per_object
    }

    fn loads(&self) -> Vec<NodeLoad> {
        self.outstanding
            .iter()
            .zip(&self.queues)
            .enumerate()
            .map(|(n, (&o, q))| NodeLoad {
                outstanding: o,
                queued: q.len(),
                // A Slow node stays routable but queue-aware policies see
                // it carrying phantom load, steering new work to faster
                // replicas first.
                penalty: if self.cfg.health.enabled && self.health.state(n) == NodeState::Slow {
                    self.cfg.health.slow_load_penalty
                } else {
                    0
                },
            })
            .collect()
    }

    fn tally_active(&self) -> bool {
        self.measuring && !self.window_closed
    }

    /// Is the node currently swallowing work (crashed or mid-hang)?
    fn stuck(&self, node: usize) -> bool {
        self.crashed[node] || self.hung_until[node].is_some()
    }

    fn push_record(&mut self, arrival: SimTime, ok: bool, latency_ns: u64) {
        if self.cfg.node_faults.is_empty() {
            return;
        }
        self.records.push(Rec {
            at_ns: arrival.as_nanos(),
            ok,
            latency_ns,
        });
    }

    /// A request resolved without being served: shed/unroutable (`lost ==
    /// false`) or gone down with a failed node (`lost == true`).
    fn note_denied(&mut self, is_get: bool, node: Option<usize>, arrival: SimTime, lost: bool) {
        if !self.tally_active() {
            return;
        }
        if is_get {
            self.get_denied += 1;
        } else {
            self.put_denied += 1;
        }
        if lost {
            self.lost += 1;
            if let Some(n) = node {
                self.per_node[n].lost += 1;
            }
        } else {
            self.rejected += 1;
            if let Some(n) = node {
                self.per_node[n].rejected += 1;
            }
        }
        self.push_record(arrival, false, 0);
    }

    /// One open-loop arrival: draw the request and route it.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let object = self.rng.gen_range(0..self.cfg.objects);
        let len = self.cfg.sizes.sample(&mut self.rng);
        let is_get = self.rng.gen_bool(self.cfg.get_fraction);
        let pend = Pending {
            object,
            len,
            is_get,
            arrival: ctx.now(),
            retries_left: self.cfg.health.request_retries,
        };
        self.route_and_admit(ctx, pend);
    }

    /// Picks a replica for `pend` (skipping Dead / breaker-open nodes),
    /// then admits, queues, or sheds it.
    fn route_and_admit(&mut self, ctx: &mut Ctx<'_>, pend: Pending) {
        let mask = if self.cfg.health.enabled {
            self.health.unroutable_mask(ctx.now())
        } else {
            vec![false; self.nodes.len()]
        };
        let node = if pend.is_get {
            let candidates = self.ring.replicas_excluding(pend.object, &mask);
            if candidates.is_empty() {
                ctx.world().stats.counter("cluster.unroutable").add(1);
                self.note_denied(true, None, pend.arrival, false);
                return;
            }
            let loads = self.loads();
            self.cfg
                .policy
                .choose(&candidates, &loads, &mut self.rr_cursor)
        } else {
            // PUTs pin to the primary; with the primary unroutable they
            // fall back to the next surviving replica in ring order. A
            // Slow primary keeps its in-flight work but takes no *new*
            // PUT leadership while a faster replica survives.
            let replicas = self.ring.replicas(pend.object);
            let not_slow = |n: usize| self.health.state(n) != NodeState::Slow;
            let Some(&node) = replicas
                .iter()
                .find(|&&n| !mask[n] && not_slow(n))
                .or_else(|| replicas.iter().find(|&&n| !mask[n]))
            else {
                ctx.world().stats.counter("cluster.unroutable").add(1);
                self.note_denied(false, None, pend.arrival, false);
                return;
            };
            if node != replicas[0] && self.tally_active() {
                self.put_fallbacks += 1;
            }
            node
        };
        if self.outstanding[node] < self.cfg.max_outstanding {
            self.dispatch(ctx, node, pend, None);
        } else if self.queues[node].len() < self.cfg.queue_cap {
            self.queues[node].push_back(pend);
        } else {
            // Shed at the front end: bounded queues, graceful overload.
            ctx.world().stats.counter("cluster.shed").add(1);
            self.note_denied(pend.is_get, Some(node), pend.arrival, false);
        }
    }

    /// Sends a request's bytes through the switch toward `node`; its jobs
    /// are submitted when the transfer completes. `hedge_of` links a
    /// hedged second leg back to its primary.
    fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_>,
        node: usize,
        pend: Pending,
        hedge_of: Option<u64>,
    ) -> u64 {
        let slot = self.free_slots[node]
            .pop()
            .expect("outstanding < max implies a free slot");
        self.outstanding[node] += 1;
        if self.cfg.health.enabled {
            self.health.on_dispatch(node);
            self.node_serve_marks[node] = true;
        }
        let req = self.next_req;
        self.next_req += 1;
        self.inflight.insert(
            req,
            InFlight {
                node,
                slot,
                len: pend.len,
                is_get: pend.is_get,
                arrival: pend.arrival,
                object: pend.object,
                dispatched_at: ctx.now(),
                served_at: pend.arrival,
                pending_jobs: 0,
                failed: false,
                is_hedge: hedge_of.is_some(),
                partner: hedge_of,
                retries_left: pend.retries_left,
                orphaned: false,
            },
        );
        let wire_bytes = if pend.is_get {
            GET_REQ_BYTES
        } else {
            pend.len + PUT_REQ_OVERHEAD
        };
        let deliver = self.switch.to_node(ctx.now(), node, wire_bytes);
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span("cluster", "uplink", req, now, deliver);
            obs.count("cluster", "dispatched", 1);
        }
        ctx.send_at(deliver, ctx.self_id(), Delivered { req });
        let h = &self.cfg.health;
        if h.enabled && h.hedge && pend.is_get && hedge_of.is_none() && self.ring.replication() > 1
        {
            ctx.send_self_in(self.hedge_delay(node), HedgeFire { req });
        }
        req
    }

    /// How long to wait before hedging a GET on `node`: the minimum
    /// against a Suspect, Degraded, or Slow node, else the measured p99
    /// (clamped) once the histogram has signal, else the configured
    /// default.
    fn hedge_delay(&self, node: usize) -> u64 {
        let h = &self.cfg.health;
        if matches!(
            self.health.state(node),
            NodeState::Suspect | NodeState::Degraded | NodeState::Slow
        ) {
            return h.hedge_min_ns;
        }
        if self.latency.count() >= 64 {
            if let Some(p99) = self.latency.percentile(99.0) {
                return p99.clamp(h.hedge_min_ns, h.hedge_max_ns);
            }
        }
        h.hedge_default_ns
    }

    /// The hedge delay elapsed: issue the second leg if the primary is
    /// still unresolved and another replica has a free slot.
    fn on_hedge_fire(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        if self.window_closed {
            return;
        }
        let (node, object, len, arrival) = match self.inflight.get(&req) {
            Some(r) if !r.orphaned && r.partner.is_none() => (r.node, r.object, r.len, r.arrival),
            _ => return,
        };
        let mask = self.health.unroutable_mask(ctx.now());
        let candidates: Vec<usize> = self
            .ring
            .replicas_excluding(object, &mask)
            .into_iter()
            .filter(|&n| n != node && self.outstanding[n] < self.cfg.max_outstanding)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let loads = self.loads();
        let target = self
            .cfg
            .policy
            .choose(&candidates, &loads, &mut self.rr_cursor);
        let pend = Pending {
            object,
            len,
            is_get: true,
            arrival,
            retries_left: 0,
        };
        let hedge = self.dispatch(ctx, target, pend, Some(req));
        self.inflight
            .get_mut(&req)
            .expect("primary leg is in flight")
            .partner = Some(hedge);
        if self.tally_active() {
            self.hedged += 1;
        }
        ctx.world().stats.counter("cluster.hedged").add(1);
    }

    /// The request reached the node port. A healthy node runs it; a
    /// crashed node swallows it (stranded until failover sweeps it); a
    /// hung node parks it until the hang ends.
    fn on_delivered(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let Some(r) = self.inflight.get(&req) else {
            assert!(
                !self.cfg.node_faults.is_empty(),
                "delivered request is in flight"
            );
            return;
        };
        let node = r.node;
        if self.crashed[node] {
            return;
        }
        if self.hung_until[node].is_some() {
            self.held_jobs[node].push(req);
            return;
        }
        self.submit_jobs(ctx, req);
    }

    /// Runs the request as real device jobs on its node.
    fn submit_jobs(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let (node, slot, len, is_get, object) = {
            let r = self
                .inflight
                .get(&req)
                .expect("submitted request is in flight");
            (r.node, r.slot, r.len, r.is_get, r.object)
        };
        let lba = self.lba_for(object, is_get);
        let server = &self.nodes[node].server;
        let access = &self.nodes[node].access;
        let reply_to = ctx.self_id();
        let mut id = || {
            let i = self.next_job_id;
            self.next_job_id += 1;
            i
        };
        let slot16 = u16::try_from(slot).expect("slot fits a port");
        let jobs: Vec<(dcs_sim::ComponentId, D2dJob)> = if is_get {
            // Server: flash → integrity hash → downlink. Access: receive.
            let flow = TcpFlow::example(1, 2, 20_000 + slot16, 8_000 + slot16);
            vec![
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![D2dOp::NicRecv {
                            flow: flow.reversed(),
                            len,
                        }],
                        reply_to,
                        tag: "access",
                    },
                ),
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::SsdRead { ssd: 0, lba, len },
                            D2dOp::Process {
                                function: NdpFunction::Md5,
                                aux: vec![],
                            },
                            D2dOp::NicSend { flow, seq: 0 },
                        ],
                        reply_to,
                        tag: "kernel-get",
                    },
                ),
            ]
        } else {
            // Access streams the body down the node link; server receives,
            // verifies, persists.
            let flow = TcpFlow::example(2, 1, 30_000 + slot16, 8_100 + slot16);
            vec![
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::NicRecv {
                                flow: flow.reversed(),
                                len,
                            },
                            D2dOp::Process {
                                function: NdpFunction::Md5,
                                aux: vec![],
                            },
                            D2dOp::SsdWrite { ssd: 0, lba },
                        ],
                        reply_to,
                        tag: "kernel-put",
                    },
                ),
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::SsdRead { ssd: 0, lba, len },
                            D2dOp::NicSend { flow, seq: 0 },
                        ],
                        reply_to,
                        tag: "access",
                    },
                ),
            ]
        };
        // Front-end/application CPU work on the server (request parsing,
        // HTTP), identical across designs.
        ctx.send_now(
            server.cpu,
            CpuJob {
                token: u64::MAX - req,
                cost_ns: 80_000 + (len / 10) as u64,
                tag: if is_get { "app-get" } else { "app-put" },
                reply_to,
            },
        );
        let r = self.inflight.get_mut(&req).expect("still in flight");
        r.pending_jobs = jobs.len();
        r.served_at = ctx.now();
        {
            let now = ctx.now();
            ctx.world()
                .obs
                .span_begin("cluster", "node-serve", req, now);
        }
        for (target, job) in jobs {
            self.job_to_req.insert(job.id, req);
            ctx.send_now(target, job);
        }
    }

    fn on_job_done(&mut self, ctx: &mut Ctx<'_>, done: D2dDone) {
        let Some(req) = self.job_to_req.remove(&done.id) else {
            // Jobs of a failed-over request: its legs were swept already.
            assert!(
                !self.cfg.node_faults.is_empty(),
                "completion for unknown job {}",
                done.id
            );
            return;
        };
        let finished = {
            let r = self.inflight.get_mut(&req).expect("live request");
            r.pending_jobs -= 1;
            r.failed |= !done.ok;
            r.pending_jobs == 0
        };
        if !finished {
            return;
        }
        let node = self.inflight[&req].node;
        if self.crashed[node] {
            // The response dies with the node.
            return;
        }
        if self.hung_until[node].is_some() {
            self.held_responses[node].push(req);
            return;
        }
        self.ship_response(ctx, req);
    }

    /// All jobs done: ship the response back up through the switch. On a
    /// fail-slow node the response is *held* first: the node's whole
    /// service span is stretched by the configured factor (while its
    /// probe acks, which never touch the data path, stay on time).
    fn ship_response(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let (node, len, is_get, served_at) = {
            let r = &self.inflight[&req];
            (r.node, r.len, r.is_get, r.served_at)
        };
        let resp_bytes = if is_get {
            len + GET_RESP_OVERHEAD
        } else {
            PUT_ACK_BYTES
        };
        let arrive = self.switch.to_frontend(ctx.now(), node, resp_bytes);
        let arrive = match self.fail_slow[node] {
            // factor × span: the span already elapsed once, so the hold
            // adds the remaining (factor - 1) multiples. Pure integer
            // arithmetic keeps the schedule bit-identical across runs.
            Some(factor) => arrive + ctx.now().saturating_since(served_at) * (factor - 1),
            None => arrive,
        };
        {
            let now = ctx.now();
            let obs = &mut ctx.world().obs;
            obs.span_end("cluster", "node-serve", req, now);
            obs.span("cluster", "downlink", req, now, arrive);
        }
        ctx.send_at(arrive, ctx.self_id(), Response { req });
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let Some(r) = self.inflight.remove(&req) else {
            // The leg was swept by failover between completion and arrival.
            assert!(
                !self.cfg.node_faults.is_empty(),
                "responding request is in flight"
            );
            return;
        };
        self.outstanding[r.node] -= 1;
        self.free_slots[r.node].push(r.slot);
        {
            let now = ctx.now();
            let e2e = now - r.arrival;
            let obs = &mut ctx.world().obs;
            obs.count("cluster", "responses", 1);
            obs.observe("cluster", "req.e2e_ns", e2e);
        }
        // The freed slot can admit parked work.
        if !self.window_closed {
            if let Some(pend) = self.queues[r.node].pop_front() {
                self.dispatch(ctx, r.node, pend, None);
            }
        }
        // Every completed leg — orphaned hedges included — is a genuine
        // observation of its node's service speed; a fail-slow node's
        // legs mostly lose their hedges, so skipping orphans would starve
        // exactly the EWMA that needs the signal. Measured per leg (from
        // dispatch, not request arrival) so a slow node's waits are
        // charged only to it — see `InFlight::dispatched_at`.
        if self.cfg.health.enabled && !r.failed {
            self.health
                .record_latency(r.node, ctx.now().saturating_since(r.dispatched_at));
        }
        if r.orphaned {
            // The other leg already resolved the request.
            return;
        }
        // This leg wins: the partner (if still live) becomes the orphan.
        if let Some(p) = r.partner {
            if let Some(pr) = self.inflight.get_mut(&p) {
                pr.orphaned = true;
                pr.partner = None;
            }
        }
        if self.cfg.health.enabled {
            if r.failed {
                self.health.on_request_failure(r.node, ctx.now());
                self.node_fail_marks[r.node] = true;
            } else {
                self.health.on_request_success(r.node);
            }
        }
        if self.tally_active() {
            let perf = &mut self.per_node[r.node];
            if r.failed {
                self.failures += 1;
                perf.failures += 1;
                if r.is_get {
                    self.get_denied += 1;
                } else {
                    self.put_denied += 1;
                }
                self.push_record(r.arrival, false, 0);
            } else {
                self.requests += 1;
                self.bytes += r.len as u64;
                perf.requests += 1;
                perf.bytes += r.len as u64;
                let lat = ctx.now() - r.arrival;
                self.latency.record(lat);
                if r.is_get {
                    self.get_ok += 1;
                } else {
                    self.put_ok += 1;
                }
                if r.is_hedge {
                    self.hedge_wins += 1;
                }
                self.push_record(r.arrival, true, lat);
            }
        }
    }

    // ------------------------------------------------------------------
    // Probing and node-fault handling.
    // ------------------------------------------------------------------

    fn on_probe_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.window_closed {
            return;
        }
        // A jump in the cluster-wide retry-exhaustion tally is a fault
        // storm: nodes that failed requests since the last tick turn
        // Suspect immediately instead of waiting out probe deadlines.
        let cur = dcs_sim::fault::exhausted_total(ctx.world_ref());
        if cur.saturating_sub(self.last_exhausted) >= self.cfg.health.exhausted_burst {
            for node in 0..self.nodes.len() {
                if self.node_fail_marks[node] {
                    self.health.on_exhausted_burst(node, ctx.now());
                }
            }
        }
        self.last_exhausted = cur;
        self.node_fail_marks.iter_mut().for_each(|m| *m = false);
        // A jump in the *contained*-fault tally (corruptions detected and
        // recovered in place: ECRC replays, completion-entry rewrites,
        // device resets) marks the nodes that were serving Degraded — not
        // Suspect, and never Dead: every one of those errors was caught.
        let contained = dcs_sim::fault::contained_total(ctx.world_ref());
        if contained.saturating_sub(self.last_contained) >= self.cfg.health.contained_burst {
            for node in 0..self.nodes.len() {
                if self.node_serve_marks[node] {
                    if self.health.state(node) == NodeState::Healthy {
                        ctx.world().stats.counter("cluster.nodes_degraded").add(1);
                        self.degraded_marks += 1;
                    }
                    self.health.on_contained_burst(node);
                }
            }
        }
        self.last_contained = contained;
        self.node_serve_marks.iter_mut().for_each(|m| *m = false);
        // Differential gray-failure detection: one median-relative EWMA
        // evaluation per tick, with hysteresis inside the monitor.
        for t in self.health.evaluate_slow() {
            match t {
                SlowTransition::Slowed(node) => {
                    ctx.world().stats.counter("cluster.node_slow").add(1);
                    self.slow_evictions += 1;
                    if self.slow_detected_at.is_none() && node == self.fault_node {
                        self.slow_detected_at = Some(ctx.now());
                    }
                }
                SlowTransition::Readmitted(_) => {
                    ctx.world().stats.counter("cluster.node_readmitted").add(1);
                    self.slow_readmissions += 1;
                }
            }
        }
        for node in 0..self.nodes.len() {
            self.probe_seq += 1;
            let seq = self.probe_seq;
            let oneway = self
                .switch
                .control_oneway_ns(node, self.cfg.health.probe_bytes);
            ctx.send_self_in(oneway, ProbeDelivered { node, seq });
            ctx.send_self_in(
                self.cfg.health.probe_timeout_ns,
                ProbeDeadline { node, seq },
            );
        }
        ctx.send_self_in(self.cfg.health.probe_period_ns, ProbeTick);
    }

    fn on_probe_delivered(&mut self, ctx: &mut Ctx<'_>, node: usize, seq: u64) {
        if self.crashed[node] {
            return;
        }
        if self.hung_until[node].is_some() {
            self.held_probes[node].push(seq);
            return;
        }
        let oneway = self
            .switch
            .control_oneway_ns(node, self.cfg.health.probe_bytes);
        ctx.send_self_in(oneway, ProbeAck { node, seq });
    }

    fn on_probe_ack(&mut self, ctx: &mut Ctx<'_>, node: usize, seq: u64) {
        if seq > self.last_ack[node] {
            self.last_ack[node] = seq;
        }
        // The Revived transition flips the routing state by itself; the
        // resume counters live in `resume_node`, the single code path
        // through which every node comes back (hang wake-up or crash
        // rejoin).
        let _: Option<Transition> = self.health.on_probe_ack(node, ctx.now());
    }

    fn on_probe_deadline(&mut self, ctx: &mut Ctx<'_>, node: usize, seq: u64) {
        if self.last_ack[node] >= seq {
            return;
        }
        if self.health.on_probe_miss(node, ctx.now()) == Some(Transition::Died) {
            self.on_node_dead(ctx, node);
        }
    }

    /// The suspicion score crossed the kill threshold: fail over
    /// everything the node holds and start re-replicating its shards.
    fn on_node_dead(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        if self.detected_at.is_none() && node == self.fault_node {
            self.detected_at = Some(ctx.now());
        }
        ctx.world().stats.counter("cluster.node_dead").add(1);
        let swept: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&k, _)| k)
            .collect();
        for req in swept {
            self.fail_over(ctx, req);
        }
        self.held_jobs[node].clear();
        self.held_responses[node].clear();
        self.held_probes[node].clear();
        // Its admission queue re-routes to survivors (the mask now
        // excludes this node).
        let parked: Vec<Pending> = self.queues[node].drain(..).collect();
        for pend in parked {
            self.route_and_admit(ctx, pend);
        }
        self.start_repair(ctx, node);
    }

    /// Releases one in-flight leg of a dead node and re-dispatches or
    /// resolves the request it carried.
    fn fail_over(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let Some(r) = self.inflight.remove(&req) else {
            return;
        };
        self.outstanding[r.node] -= 1;
        self.free_slots[r.node].push(r.slot);
        self.job_to_req.retain(|_, v| *v != req);
        if r.orphaned {
            return;
        }
        // A live hedge partner finishes the request on its own.
        if let Some(p) = r.partner {
            if let Some(pr) = self.inflight.get_mut(&p) {
                pr.partner = None;
                return;
            }
        }
        if r.retries_left > 0 {
            if self.tally_active() {
                self.retried += 1;
            }
            ctx.world().stats.counter("cluster.retried").add(1);
            let pend = Pending {
                object: r.object,
                len: r.len,
                is_get: r.is_get,
                arrival: r.arrival,
                retries_left: r.retries_left - 1,
            };
            self.route_and_admit(ctx, pend);
        } else {
            self.note_denied(r.is_get, Some(r.node), r.arrival, true);
        }
    }

    fn on_node_fault(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        match self.cfg.node_faults[idx] {
            NodeFault::Crash { node, .. } => {
                self.crashed[node] = true;
                ctx.world().stats.counter("cluster.node_crash").add(1);
            }
            NodeFault::Hang { node, for_ns, .. } => {
                self.hung_until[node] = Some(ctx.now() + for_ns);
                ctx.send_self_in(for_ns, HangOver { node });
                ctx.world().stats.counter("cluster.node_hang").add(1);
            }
            NodeFault::FailSlow {
                node,
                for_ns,
                factor,
                ..
            } => {
                self.fail_slow[node] = Some(factor);
                ctx.send_self_in(for_ns, FailSlowOver { node });
                ctx.world().stats.counter("cluster.node_fail_slow").add(1);
            }
            NodeFault::LinkDegrade {
                node,
                for_ns,
                speed_pct,
                ..
            } => {
                self.switch
                    .set_node_speed_factor(node, speed_pct as f64 / 100.0);
                ctx.send_self_in(for_ns, LinkRestore { node });
                ctx.world().stats.counter("cluster.link_degraded").add(1);
            }
        }
    }

    /// The single path through which an unavailable node comes back:
    /// everything it swallowed resumes — parked requests run, finished
    /// responses ship, swallowed probes ack (which revives a node already
    /// declared Dead) — and the matching lifecycle counter fires.
    fn resume_node(&mut self, ctx: &mut Ctx<'_>, node: usize, kind: ResumeKind) {
        self.hung_until[node] = None;
        let held = std::mem::take(&mut self.held_jobs[node]);
        for req in held {
            if self.inflight.contains_key(&req) {
                self.submit_jobs(ctx, req);
            }
        }
        let resp = std::mem::take(&mut self.held_responses[node]);
        for req in resp {
            if self.inflight.contains_key(&req) {
                self.ship_response(ctx, req);
            }
        }
        let probes = std::mem::take(&mut self.held_probes[node]);
        let oneway = self
            .switch
            .control_oneway_ns(node, self.cfg.health.probe_bytes);
        for seq in probes {
            ctx.send_self_in(oneway, ProbeAck { node, seq });
        }
        let counter = match kind {
            ResumeKind::Revived => "cluster.node_revived",
            ResumeKind::Rejoined => "cluster.node_rejoined",
        };
        ctx.world().stats.counter(counter).add(1);
    }

    // ------------------------------------------------------------------
    // Re-replication.
    // ------------------------------------------------------------------

    /// Plans the repair of `node`'s shards: for every object replicated on
    /// it, a surviving replica streams a copy to the first ring successor
    /// outside the replica set. Transfers aggregate per (src, dst) pair
    /// and drain as a bandwidth-capped chunk stream.
    fn start_repair(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        if self.repair_started[node] {
            return;
        }
        self.repair_started[node] = true;
        let object_bytes = self.cfg.sizes.mean_estimate().ceil() as u64;
        let mut transfers: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for object in 0..self.cfg.objects {
            let replicas = self.ring.replicas(object);
            if !replicas.contains(&node) {
                continue;
            }
            let alive = |n: usize| self.health.state(n) != NodeState::Dead;
            let Some(&src) = replicas.iter().find(|&&n| n != node && alive(n)) else {
                continue; // every replica is gone: nothing left to copy
            };
            let pref = self.ring.preference_list(object, self.nodes.len());
            let Some(&dst) = pref.iter().find(|&&n| !replicas.contains(&n) && alive(n)) else {
                continue; // no surviving successor to hold the new copy
            };
            *transfers.entry((src, dst)).or_insert(0) += object_bytes;
        }
        if transfers.is_empty() {
            return;
        }
        let was_active = self.repair_active;
        for ((src, dst), bytes) in transfers {
            self.repair_queue.push_back((src, dst, bytes));
        }
        self.repair_active = true;
        if self.repair_start_at.is_none() {
            self.repair_start_at = Some(ctx.now());
        }
        if !was_active {
            ctx.send_now(ctx.self_id(), RepairChunk);
        }
    }

    fn on_repair_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(&(src, dst, remaining)) = self.repair_queue.front() else {
            return;
        };
        let chunk = remaining.min(self.cfg.health.repair_chunk_bytes as u64);
        let delivered = self
            .switch
            .node_to_node(ctx.now(), src, dst, chunk as usize);
        self.repair_last_delivery = self.repair_last_delivery.max(delivered);
        self.repair_bytes_sent += chunk;
        if remaining > chunk {
            self.repair_queue.front_mut().expect("front still queued").2 = remaining - chunk;
        } else {
            self.repair_queue.pop_front();
        }
        if self.repair_queue.is_empty() {
            ctx.send_at(self.repair_last_delivery, ctx.self_id(), RepairDone);
        } else {
            // The pacing cap: the ports may drain a chunk faster, but the
            // stream never offers more than `repair_gbps` on average.
            let pace = Bandwidth::gbps(self.cfg.health.repair_gbps)
                .transfer_time(chunk as usize)
                .max(1);
            ctx.send_self_in(pace, RepairChunk);
        }
    }

    fn on_repair_done(&mut self, ctx: &mut Ctx<'_>) {
        if !self.repair_queue.is_empty() {
            // A second failure queued more transfers after the finish was
            // scheduled: keep streaming.
            self.on_repair_chunk(ctx);
            return;
        }
        self.repair_active = false;
        self.repair_done_at = Some(ctx.now());
        self.maybe_emit_report(ctx);
    }

    fn stamp_repair(&self, report: &mut ClusterReport) {
        report.repair_bytes = self.repair_bytes_sent;
        report.repair_ns = match (self.repair_start_at, self.repair_done_at) {
            (Some(s), Some(d)) => Some(d - s),
            _ => None,
        };
        report.rejoin_bytes = self.rejoin_bytes_sent;
        report.rejoin_ns = match (self.rejoin_start_at, self.rejoin_done_at) {
            (Some(s), Some(d)) => Some(d - s),
            _ => None,
        };
    }

    fn maybe_emit_report(&mut self, ctx: &mut Ctx<'_>) {
        if self.repair_active || self.rejoin_active {
            return;
        }
        if let Some(mut report) = self.report_pending.take() {
            self.stamp_repair(&mut report);
            ctx.world().insert(ClusterOutcome(report));
        }
    }

    // ------------------------------------------------------------------
    // Rejoin: a restarted node's anti-entropy repair, the re-replication
    // path run in reverse (survivors stream the node's shards back).
    // ------------------------------------------------------------------

    /// The crashed node's configured restart time arrived: it comes back
    /// *empty*. With the health layer on it enters `Joining` (alive to
    /// probes, unroutable) and anti-entropy repair begins; with the layer
    /// off — the ablation — it simply starts serving again, lifecycle
    /// unmanaged.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        assert!(self.crashed[node], "restart of a node that never crashed");
        self.crashed[node] = false;
        // A later crash of the same node must be able to re-replicate
        // again from scratch.
        self.repair_started[node] = false;
        ctx.world().stats.counter("cluster.node_restart").add(1);
        if !self.cfg.health.enabled {
            return;
        }
        self.health.begin_join(node);
        self.start_rejoin(ctx, node);
    }

    /// Plans the rejoin stream: for every object replicated on `node`, a
    /// surviving replica streams the shard back. Transfers aggregate per
    /// source and drain as a bandwidth-capped chunk stream, exactly like
    /// re-replication but pointed at the rejoining node.
    fn start_rejoin(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        let object_bytes = self.cfg.sizes.mean_estimate().ceil() as u64;
        let mut transfers: BTreeMap<usize, u64> = BTreeMap::new();
        for object in 0..self.cfg.objects {
            let replicas = self.ring.replicas(object);
            if !replicas.contains(&node) {
                continue;
            }
            let alive =
                |n: usize| self.health.state(n) != NodeState::Dead && !self.crashed[n] && n != node;
            let Some(&src) = replicas.iter().find(|&&n| alive(n)) else {
                continue; // no surviving replica holds this shard
            };
            *transfers.entry(src).or_insert(0) += object_bytes;
        }
        self.rejoin_node = Some(node);
        self.rejoin_start_at = Some(ctx.now());
        if transfers.is_empty() {
            // Nothing to copy (degenerate ring): the node joins at once.
            self.finish_rejoin(ctx);
            return;
        }
        let was_active = self.rejoin_active;
        for (src, bytes) in transfers {
            self.rejoin_queue.push_back((src, node, bytes));
        }
        self.rejoin_active = true;
        if !was_active {
            ctx.send_now(ctx.self_id(), RejoinChunk);
        }
    }

    fn on_rejoin_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(&(src, dst, remaining)) = self.rejoin_queue.front() else {
            return;
        };
        let chunk = remaining.min(self.cfg.health.repair_chunk_bytes as u64);
        let delivered = self
            .switch
            .node_to_node(ctx.now(), src, dst, chunk as usize);
        self.rejoin_last_delivery = self.rejoin_last_delivery.max(delivered);
        self.rejoin_bytes_sent += chunk;
        if remaining > chunk {
            self.rejoin_queue.front_mut().expect("front still queued").2 = remaining - chunk;
        } else {
            self.rejoin_queue.pop_front();
        }
        if self.rejoin_queue.is_empty() {
            ctx.send_at(self.rejoin_last_delivery, ctx.self_id(), RejoinDone);
        } else {
            let pace = Bandwidth::gbps(self.cfg.health.rejoin_gbps)
                .transfer_time(chunk as usize)
                .max(1);
            ctx.send_self_in(pace, RejoinChunk);
        }
    }

    fn on_rejoin_done(&mut self, ctx: &mut Ctx<'_>) {
        if !self.rejoin_queue.is_empty() {
            self.on_rejoin_chunk(ctx);
            return;
        }
        self.finish_rejoin(ctx);
    }

    /// Anti-entropy complete: the node leaves `Joining` through the
    /// unified resume path and becomes routable again.
    fn finish_rejoin(&mut self, ctx: &mut Ctx<'_>) {
        let node = self.rejoin_node.take().expect("a rejoin was running");
        self.rejoin_active = false;
        self.rejoin_done_at = Some(ctx.now());
        self.health.complete_join(node);
        self.resume_node(ctx, node, ResumeKind::Rejoined);
        self.maybe_emit_report(ctx);
    }

    // ------------------------------------------------------------------
    // Window close and the report.
    // ------------------------------------------------------------------

    fn free_leg(&mut self, r: &InFlight) {
        self.outstanding[r.node] -= 1;
        self.free_slots[r.node].push(r.slot);
    }

    /// Availability split into before / during / after the failure, with
    /// "during" ending at detection (crash, fail-slow) or at the fault's
    /// scheduled end (hang, link degrade, undetected slow window).
    fn phases(&self, end_ns: u64) -> [PhasePerf; 3] {
        let fault_at = self.fault_at_abs;
        let recovery = self
            .detected_at
            .map(|t| t.as_nanos())
            .or(self.slow_detected_at.map(|t| t.as_nanos()))
            .or(self.fault_end_abs)
            .unwrap_or(end_ns)
            .max(fault_at);
        let mut phases = [PhasePerf::default(); 3];
        let mut hists = [Histogram::new(), Histogram::new(), Histogram::new()];
        for rec in &self.records {
            let idx = if rec.at_ns < fault_at {
                0
            } else if rec.at_ns < recovery {
                1
            } else {
                2
            };
            phases[idx].requests += 1;
            if rec.ok {
                phases[idx].ok += 1;
                hists[idx].record(rec.latency_ns);
            }
        }
        for (p, h) in phases.iter_mut().zip(&hists) {
            p.p99_ns = h.percentile(99.0).unwrap_or(0);
        }
        phases
    }

    fn close_window(&mut self, ctx: &mut Ctx<'_>) {
        // Resolve work stranded on failed nodes while tallies still
        // count: with the health layer off this is where every loss
        // surfaces (the ablation's availability gap).
        let stranded: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, r)| self.stuck(r.node))
            .map(|(&k, _)| k)
            .collect();
        for req in stranded {
            let Some(r) = self.inflight.get(&req) else {
                continue;
            };
            if r.orphaned {
                let r = self.inflight.remove(&req).expect("checked above");
                self.free_leg(&r);
                continue;
            }
            // A live partner on a healthy node will finish the request
            // after the window (excluded from tallies either way).
            let partner_completes = r
                .partner
                .and_then(|p| self.inflight.get(&p))
                .is_some_and(|pr| !self.stuck(pr.node));
            if let Some(p) = r.partner {
                if let Some(pr) = self.inflight.get_mut(&p) {
                    pr.orphaned = true;
                    pr.partner = None;
                }
            }
            let r = self.inflight.remove(&req).expect("checked above");
            self.free_leg(&r);
            self.job_to_req.retain(|_, v| *v != req);
            if !partner_completes {
                self.note_denied(r.is_get, Some(r.node), r.arrival, true);
            }
        }
        for node in 0..self.nodes.len() {
            if self.stuck(node) {
                let parked: Vec<Pending> = self.queues[node].drain(..).collect();
                for pend in parked {
                    self.note_denied(pend.is_get, Some(node), pend.arrival, true);
                }
            }
        }
        self.window_closed = true;
        // Parked requests on healthy nodes are abandoned: nothing was
        // submitted for them.
        for q in &mut self.queues {
            q.clear();
        }
        let span = ctx.now() - self.measure_start;
        let stats = ctx.world_ref().get::<CpuStats>();
        for (i, node) in self.nodes.iter().enumerate() {
            self.per_node[i].cpu_utilization = stats
                .map(|s| s.utilization(&node.server.cpu_key, span))
                .unwrap_or(0.0);
        }
        let mut report = ClusterReport {
            span_ns: span,
            requests: self.requests,
            bytes: self.bytes,
            rejected: self.rejected,
            failures: self.failures,
            get_ok: self.get_ok,
            get_denied: self.get_denied,
            put_ok: self.put_ok,
            put_denied: self.put_denied,
            hedged: self.hedged,
            hedge_wins: self.hedge_wins,
            retried: self.retried,
            lost: self.lost,
            put_fallbacks: self.put_fallbacks,
            degraded_marks: self.degraded_marks,
            detection_ns: self
                .detected_at
                .map(|t| t.as_nanos().saturating_sub(self.fault_at_abs)),
            slow_detection_ns: self
                .slow_detected_at
                .map(|t| t.as_nanos().saturating_sub(self.fault_at_abs)),
            slow_evictions: self.slow_evictions,
            slow_readmissions: self.slow_readmissions,
            latency: self.latency.clone(),
            per_node: self.per_node.clone(),
            ..ClusterReport::default()
        };
        if !self.cfg.node_faults.is_empty() {
            report.phases = Some(self.phases(ctx.now().as_nanos()));
        }
        if self.repair_active || self.rejoin_active {
            // Repair or rejoin outlives the window: emit once the stream
            // drains so the report can carry the true time-to-repair.
            self.report_pending = Some(report);
        } else {
            self.stamp_repair(&mut report);
            ctx.world().insert(ClusterOutcome(report));
        }
    }
}

impl Component for ClusterDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Start>() {
            Ok(Start) => {
                let gap = (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1);
                ctx.send_self_in(gap, Arrival);
                ctx.send_self_in(self.cfg.warmup_ns, WarmupOver);
                ctx.send_self_in(self.cfg.duration_ns, WindowOver);
                if let Some(d) = self.cfg.degrade {
                    assert!(d.node < self.nodes.len(), "degraded node out of range");
                    ctx.send_self_in(d.at_ns, DegradeNow);
                }
                for (idx, f) in self.cfg.node_faults.iter().enumerate() {
                    assert!(f.node() < self.nodes.len(), "faulted node out of range");
                    match *f {
                        NodeFault::Crash {
                            node,
                            at_ns,
                            restart_at_ns: Some(restart),
                        } => {
                            assert!(restart > at_ns, "restart must follow the crash");
                            ctx.send_self_in(restart, RestartAt { node });
                        }
                        NodeFault::FailSlow { factor, .. } => {
                            assert!(factor >= 1, "fail-slow factor must be >= 1");
                        }
                        NodeFault::LinkDegrade { speed_pct, .. } => {
                            assert!(
                                (1..=100).contains(&speed_pct),
                                "link speed_pct must be in 1..=100"
                            );
                        }
                        _ => {}
                    }
                    ctx.send_self_in(f.at_ns(), NodeFaultAt { idx });
                }
                if let Some(first) = self
                    .cfg
                    .node_faults
                    .iter()
                    .min_by_key(|f| f.at_ns())
                    .copied()
                {
                    self.fault_at_abs = ctx.now().as_nanos() + first.at_ns();
                    self.fault_node = first.node();
                    self.fault_end_abs = first.end_ns().map(|e| ctx.now().as_nanos() + e);
                }
                if self.cfg.health.enabled {
                    ctx.send_self_in(self.cfg.health.probe_period_ns, ProbeTick);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Arrival>() {
            Ok(Arrival) => {
                if !self.window_closed {
                    self.on_arrival(ctx);
                    let gap = (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1);
                    ctx.send_self_in(gap, Arrival);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WarmupOver>() {
            Ok(WarmupOver) => {
                self.measuring = true;
                self.measure_start = ctx.now();
                if let Some(stats) = ctx.world().get_mut::<CpuStats>() {
                    stats.reset();
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WindowOver>() {
            Ok(WindowOver) => {
                self.close_window(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DegradeNow>() {
            Ok(DegradeNow) => {
                let d = self
                    .cfg
                    .degrade
                    .expect("DegradeNow only fires when configured");
                self.switch.set_node_speed_factor(d.node, d.factor);
                ctx.world().stats.counter("cluster.degraded").add(1);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Delivered>() {
            Ok(Delivered { req }) => {
                self.on_delivered(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Response>() {
            Ok(Response { req }) => {
                self.on_response(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ProbeTick>() {
            Ok(ProbeTick) => {
                self.on_probe_tick(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ProbeDelivered>() {
            Ok(ProbeDelivered { node, seq }) => {
                self.on_probe_delivered(ctx, node, seq);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ProbeAck>() {
            Ok(ProbeAck { node, seq }) => {
                self.on_probe_ack(ctx, node, seq);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ProbeDeadline>() {
            Ok(ProbeDeadline { node, seq }) => {
                self.on_probe_deadline(ctx, node, seq);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<NodeFaultAt>() {
            Ok(NodeFaultAt { idx }) => {
                self.on_node_fault(ctx, idx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<HangOver>() {
            Ok(HangOver { node }) => {
                self.resume_node(ctx, node, ResumeKind::Revived);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FailSlowOver>() {
            Ok(FailSlowOver { node }) => {
                self.fail_slow[node] = None;
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<LinkRestore>() {
            Ok(LinkRestore { node }) => {
                self.switch.set_node_speed_factor(node, 1.0);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RestartAt>() {
            Ok(RestartAt { node }) => {
                self.on_restart(ctx, node);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RejoinChunk>() {
            Ok(RejoinChunk) => {
                self.on_rejoin_chunk(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RejoinDone>() {
            Ok(RejoinDone) => {
                self.on_rejoin_done(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<HedgeFire>() {
            Ok(HedgeFire { req }) => {
                self.on_hedge_fire(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RepairChunk>() {
            Ok(RepairChunk) => {
                self.on_repair_chunk(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RepairDone>() {
            Ok(RepairDone) => {
                self.on_repair_done(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(_) => return, // application-charge completion: nothing to do
            Err(m) => m,
        };
        match msg.downcast::<D2dDone>() {
            Ok(done) => self.on_job_done(ctx, done),
            Err(other) => panic!("ClusterDriver received unexpected message: {other:?}"),
        }
    }
}
