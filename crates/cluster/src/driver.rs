//! The cluster front end: open-loop traffic generation, load balancing,
//! admission control, and end-to-end measurement.
//!
//! One [`ClusterDriver`] component plays the role of the datacenter's
//! front-end tier. It draws Poisson request arrivals scaled to the
//! cluster's offered load, resolves each object through the consistent-
//! hash [`HashRing`], lets the configured
//! [`LbPolicy`] pick a replica, and pushes the request through the
//! [`TorSwitch`] to the chosen node, where it runs as real simulated
//! [`D2dJob`]s on that node's devices (SSD → MD5 → NIC for GETs, the
//! reverse for PUTs — the same shapes as the Swift workload).
//!
//! Overload is handled at admission: each node serves at most
//! `max_outstanding` requests with at most `queue_cap` more parked in a
//! per-node FIFO; beyond that, requests are shed immediately. Shedding
//! bounds every queue in the system, so p99 latency of *served* requests
//! degrades gracefully instead of growing without bound as offered load
//! passes saturation.

use std::collections::{BTreeMap, VecDeque};

use dcs_host::cpu::{CpuJob, CpuJobDone, CpuStats};
use dcs_host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ndp::NdpFunction;
use dcs_nic::TcpFlow;
use dcs_sim::{Component, Ctx, Histogram, Msg, Rng, SimTime};
use dcs_workloads::gen::SizeDistribution;
use dcs_workloads::scenario::NodeRef;

use crate::policy::{LbPolicy, NodeLoad};
use crate::report::{ClusterReport, NodePerf};
use crate::shard::HashRing;
use crate::switch::{SwitchConfig, TorSwitch};

/// Bytes of a GET request on the wire (headers only).
const GET_REQ_BYTES: usize = 512;
/// Header overhead on a PUT request (the payload rides along).
const PUT_REQ_OVERHEAD: usize = 512;
/// Response overhead on a GET (headers + integrity digest).
const GET_RESP_OVERHEAD: usize = 256;
/// Bytes of a PUT acknowledgement.
const PUT_ACK_BYTES: usize = 128;

/// A mid-run node degradation: at `at_ns`, `node`'s switch port drops to
/// `factor` of its line rate (a flapping cable / half-dead transceiver).
/// Queue-aware policies reroute around it; round-robin keeps feeding it.
#[derive(Clone, Copy, Debug)]
pub struct Degrade {
    /// Node to degrade.
    pub node: usize,
    /// When to degrade it (absolute simulation time, ns).
    pub at_ns: u64,
    /// Remaining fraction of port speed (e.g. 0.1).
    pub factor: f64,
}

/// Full description of a cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of DCS server nodes.
    pub nodes: usize,
    /// Design each node runs (the HDC Engine, or a software baseline).
    pub design: dcs_workloads::DesignUnderTest,
    /// Load-balancing policy at the front end.
    pub policy: LbPolicy,
    /// Replica count per object (GETs choose among these).
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes_per_node: usize,
    /// Size of the object-id space.
    pub objects: u64,
    /// Fraction of requests that are GETs.
    pub get_fraction: f64,
    /// Object-size distribution.
    pub sizes: SizeDistribution,
    /// Offered load per node, Gbps (cluster offered load is this × N).
    pub offered_gbps_per_node: f64,
    /// Total run length.
    pub duration_ns: u64,
    /// Warm-up trimmed from measurements.
    pub warmup_ns: u64,
    /// Per-node concurrent request limit (admission control).
    pub max_outstanding: usize,
    /// Per-node admission queue bound; beyond it requests are shed.
    pub queue_cap: usize,
    /// Top-of-rack switch provisioning.
    pub switch: SwitchConfig,
    /// Per-node testbed parameters (SSD count, node wire).
    pub testbed: dcs_workloads::TestbedConfig,
    /// Simulation seed (drives arrivals, sizes, and any fault plan).
    pub seed: u64,
    /// If positive, installs `FaultPlan::uniform(rate)` over every
    /// injection site in every node before traffic starts.
    pub fault_rate: f64,
    /// Optional mid-run node degradation.
    pub degrade: Option<Degrade>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            design: dcs_workloads::DesignUnderTest::DcsCtrl,
            policy: LbPolicy::JoinShortestQueue,
            replication: 2,
            // Placement spread shrinks like 1/sqrt(vnodes); 256 keeps the
            // hottest node within ~10% of the mean, which matters because
            // PUTs are pinned to primaries and cannot be rerouted.
            vnodes_per_node: 256,
            objects: 4096,
            get_fraction: 0.67,
            sizes: SizeDistribution::default(),
            offered_gbps_per_node: 6.0,
            duration_ns: dcs_sim::time::ms(30),
            warmup_ns: dcs_sim::time::ms(5),
            // The node pipeline (SSD → hash → NIC, 48-deep wire interleave)
            // needs ~48 concurrent requests to reach line rate; the queue
            // bound keeps worst-case sojourn a small multiple of service.
            max_outstanding: 48,
            queue_cap: 64,
            switch: SwitchConfig::default(),
            testbed: dcs_workloads::TestbedConfig::default(),
            seed: 0xDC5C,
            fault_rate: 0.0,
            degrade: None,
        }
    }
}

/// The finished report, left in the world when the window closes.
#[derive(Debug)]
pub struct ClusterOutcome(pub ClusterReport);

/// One cluster node as the front end sees it: the measured server and its
/// rack-side access peer (the opposite end of the node's downlink wire).
#[derive(Clone, Debug)]
pub struct ClusterNode {
    /// The DCS server.
    pub server: NodeRef,
    /// The access endpoint terminating the node's downlink at the rack.
    pub access: NodeRef,
}

/// Kickoff event for the front end (sent once by
/// [`build_cluster`](crate::build_cluster)).
#[derive(Debug)]
pub struct Start;
#[derive(Debug)]
struct Arrival;
#[derive(Debug)]
struct WarmupOver;
#[derive(Debug)]
struct WindowOver;
#[derive(Debug)]
struct DegradeNow;
/// The request's bytes finished arriving at the node port: submit its jobs.
#[derive(Debug)]
struct Delivered {
    req: u64,
}
/// The response's bytes finished arriving back at the front end.
#[derive(Debug)]
struct Response {
    req: u64,
}

/// A generated request not yet dispatched (parked at admission).
#[derive(Debug)]
struct Pending {
    object: u64,
    len: usize,
    is_get: bool,
    arrival: SimTime,
}

/// A dispatched request.
#[derive(Debug)]
struct InFlight {
    node: usize,
    slot: usize,
    len: usize,
    is_get: bool,
    arrival: SimTime,
    object: u64,
    pending_jobs: usize,
    failed: bool,
}

/// The front-end component.
pub struct ClusterDriver {
    cfg: ClusterConfig,
    nodes: Vec<ClusterNode>,
    switch: TorSwitch,
    ring: HashRing,
    rng: Rng,
    mean_interarrival_ns: f64,
    // Admission state, indexed by node.
    outstanding: Vec<usize>,
    queues: Vec<VecDeque<Pending>>,
    free_slots: Vec<Vec<usize>>,
    rr_cursor: usize,
    // Request tracking.
    inflight: BTreeMap<u64, InFlight>,
    job_to_req: BTreeMap<u64, u64>,
    next_req: u64,
    next_job_id: u64,
    // Measurement.
    measuring: bool,
    window_closed: bool,
    measure_start: SimTime,
    latency: Histogram,
    requests: u64,
    bytes: u64,
    rejected: u64,
    failures: u64,
    per_node: Vec<NodePerf>,
}

impl ClusterDriver {
    /// Creates the front end over `nodes` (one entry per cluster node).
    pub fn new(cfg: ClusterConfig, nodes: Vec<ClusterNode>, rng: Rng) -> ClusterDriver {
        assert_eq!(cfg.nodes, nodes.len(), "node list must match config");
        assert!(cfg.max_outstanding > 0, "admission needs at least one slot");
        assert!(
            cfg.sizes.max as u64 * 8 <= 4 << 30,
            "object window sizing assumes objects of at most 512 MiB"
        );
        let n = nodes.len();
        let switch = TorSwitch::new(n, cfg.switch.clone());
        let ring = HashRing::new(n, cfg.vnodes_per_node, cfg.replication);
        let mean_size = cfg.sizes.mean_estimate();
        let total_gbps = cfg.offered_gbps_per_node * n as f64;
        let mean_interarrival_ns = mean_size * 8.0 / total_gbps;
        ClusterDriver {
            switch,
            ring,
            rng,
            mean_interarrival_ns,
            outstanding: vec![0; n],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            free_slots: (0..n).map(|_| (0..cfg.max_outstanding).rev().collect()).collect(),
            rr_cursor: 0,
            inflight: BTreeMap::new(),
            job_to_req: BTreeMap::new(),
            next_req: 1,
            next_job_id: 1,
            measuring: false,
            window_closed: false,
            measure_start: SimTime::ZERO,
            latency: Histogram::new(),
            requests: 0,
            bytes: 0,
            rejected: 0,
            failures: 0,
            per_node: vec![NodePerf::default(); n],
            cfg,
            nodes,
        }
    }

    /// Maps an object to its LBA inside a node's flash window. GETs and
    /// PUTs use disjoint 4 GiB windows so reads never race writes.
    fn lba_for(&self, object: u64, is_get: bool) -> u64 {
        let blocks_per_object = (self.cfg.sizes.max.div_ceil(4096)) as u64;
        let window_blocks = (4u64 << 30) / 4096;
        let slots = (window_blocks / blocks_per_object).max(1);
        let base = if is_get { 0 } else { window_blocks };
        base + (object % slots) * blocks_per_object
    }

    fn loads(&self) -> Vec<NodeLoad> {
        self.outstanding
            .iter()
            .zip(&self.queues)
            .map(|(&o, q)| NodeLoad { outstanding: o, queued: q.len() })
            .collect()
    }

    /// One open-loop arrival: draw the request, pick a node, admit or
    /// shed.
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let object = self.rng.gen_range(0..self.cfg.objects);
        let len = self.cfg.sizes.sample(&mut self.rng);
        let is_get = self.rng.gen_bool(self.cfg.get_fraction);
        let candidates = if is_get {
            self.ring.replicas(object)
        } else {
            vec![self.ring.primary(object)]
        };
        let loads = self.loads();
        let node = self.cfg.policy.choose(&candidates, &loads, &mut self.rr_cursor);
        let pend = Pending { object, len, is_get, arrival: ctx.now() };
        if self.outstanding[node] < self.cfg.max_outstanding {
            self.dispatch(ctx, node, pend);
        } else if self.queues[node].len() < self.cfg.queue_cap {
            self.queues[node].push_back(pend);
        } else {
            // Shed at the front end: bounded queues, graceful overload.
            if self.measuring && !self.window_closed {
                self.rejected += 1;
                self.per_node[node].rejected += 1;
            }
            ctx.world().stats.counter("cluster.shed").add(1);
        }
    }

    /// Sends a request's bytes through the switch toward `node`; its jobs
    /// are submitted when the transfer completes.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, node: usize, pend: Pending) {
        let slot = self.free_slots[node].pop().expect("outstanding < max implies a free slot");
        self.outstanding[node] += 1;
        let req = self.next_req;
        self.next_req += 1;
        self.inflight.insert(
            req,
            InFlight {
                node,
                slot,
                len: pend.len,
                is_get: pend.is_get,
                arrival: pend.arrival,
                object: pend.object,
                pending_jobs: 0,
                failed: false,
            },
        );
        let wire_bytes =
            if pend.is_get { GET_REQ_BYTES } else { pend.len + PUT_REQ_OVERHEAD };
        let deliver = self.switch.to_node(ctx.now(), node, wire_bytes);
        ctx.send_at(deliver, ctx.self_id(), Delivered { req });
    }

    /// The request reached the node: run it as real device jobs.
    fn on_delivered(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let (node, slot, len, is_get, object) = {
            let r = self.inflight.get(&req).expect("delivered request is in flight");
            (r.node, r.slot, r.len, r.is_get, r.object)
        };
        let lba = self.lba_for(object, is_get);
        let server = &self.nodes[node].server;
        let access = &self.nodes[node].access;
        let reply_to = ctx.self_id();
        let mut id = || {
            let i = self.next_job_id;
            self.next_job_id += 1;
            i
        };
        let slot16 = u16::try_from(slot).expect("slot fits a port");
        let jobs: Vec<(dcs_sim::ComponentId, D2dJob)> = if is_get {
            // Server: flash → integrity hash → downlink. Access: receive.
            let flow = TcpFlow::example(1, 2, 20_000 + slot16, 8_000 + slot16);
            vec![
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![D2dOp::NicRecv { flow: flow.reversed(), len }],
                        reply_to,
                        tag: "access",
                    },
                ),
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::SsdRead { ssd: 0, lba, len },
                            D2dOp::Process { function: NdpFunction::Md5, aux: vec![] },
                            D2dOp::NicSend { flow, seq: 0 },
                        ],
                        reply_to,
                        tag: "kernel-get",
                    },
                ),
            ]
        } else {
            // Access streams the body down the node link; server receives,
            // verifies, persists.
            let flow = TcpFlow::example(2, 1, 30_000 + slot16, 8_100 + slot16);
            vec![
                (
                    server.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::NicRecv { flow: flow.reversed(), len },
                            D2dOp::Process { function: NdpFunction::Md5, aux: vec![] },
                            D2dOp::SsdWrite { ssd: 0, lba },
                        ],
                        reply_to,
                        tag: "kernel-put",
                    },
                ),
                (
                    access.submit_to,
                    D2dJob {
                        id: id(),
                        ops: vec![
                            D2dOp::SsdRead { ssd: 0, lba, len },
                            D2dOp::NicSend { flow, seq: 0 },
                        ],
                        reply_to,
                        tag: "access",
                    },
                ),
            ]
        };
        // Front-end/application CPU work on the server (request parsing,
        // HTTP), identical across designs.
        ctx.send_now(
            server.cpu,
            CpuJob {
                token: u64::MAX - req,
                cost_ns: 80_000 + (len / 10) as u64,
                tag: if is_get { "app-get" } else { "app-put" },
                reply_to,
            },
        );
        let r = self.inflight.get_mut(&req).expect("still in flight");
        r.pending_jobs = jobs.len();
        for (target, job) in jobs {
            self.job_to_req.insert(job.id, req);
            ctx.send_now(target, job);
        }
    }

    fn on_job_done(&mut self, ctx: &mut Ctx<'_>, done: D2dDone) {
        let req = self
            .job_to_req
            .remove(&done.id)
            .unwrap_or_else(|| panic!("completion for unknown job {}", done.id));
        let finished = {
            let r = self.inflight.get_mut(&req).expect("live request");
            r.pending_jobs -= 1;
            r.failed |= !done.ok;
            r.pending_jobs == 0
        };
        if !finished {
            return;
        }
        // All jobs done: ship the response back up through the switch.
        let (node, len, is_get) = {
            let r = &self.inflight[&req];
            (r.node, r.len, r.is_get)
        };
        let resp_bytes = if is_get { len + GET_RESP_OVERHEAD } else { PUT_ACK_BYTES };
        let arrive = self.switch.to_frontend(ctx.now(), node, resp_bytes);
        ctx.send_at(arrive, ctx.self_id(), Response { req });
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, req: u64) {
        let r = self.inflight.remove(&req).expect("responding request is in flight");
        self.outstanding[r.node] -= 1;
        self.free_slots[r.node].push(r.slot);
        if self.measuring && !self.window_closed {
            let perf = &mut self.per_node[r.node];
            if r.failed {
                self.failures += 1;
                perf.failures += 1;
            } else {
                self.requests += 1;
                self.bytes += r.len as u64;
                perf.requests += 1;
                perf.bytes += r.len as u64;
                self.latency.record(ctx.now() - r.arrival);
            }
        }
        // The freed slot can admit parked work.
        if !self.window_closed {
            if let Some(pend) = self.queues[r.node].pop_front() {
                self.dispatch(ctx, r.node, pend);
            }
        }
    }

    fn close_window(&mut self, ctx: &mut Ctx<'_>) {
        self.window_closed = true;
        // Parked requests are abandoned: nothing was submitted for them.
        for q in &mut self.queues {
            q.clear();
        }
        let span = ctx.now() - self.measure_start;
        let stats = ctx.world_ref().get::<CpuStats>();
        for (i, node) in self.nodes.iter().enumerate() {
            self.per_node[i].cpu_utilization = stats
                .map(|s| s.utilization(&node.server.cpu_key, span))
                .unwrap_or(0.0);
        }
        let report = ClusterReport {
            span_ns: span,
            requests: self.requests,
            bytes: self.bytes,
            rejected: self.rejected,
            failures: self.failures,
            latency: self.latency.clone(),
            per_node: self.per_node.clone(),
        };
        ctx.world().insert(ClusterOutcome(report));
    }
}

impl Component for ClusterDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Start>() {
            Ok(Start) => {
                let gap = (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1);
                ctx.send_self_in(gap, Arrival);
                ctx.send_self_in(self.cfg.warmup_ns, WarmupOver);
                ctx.send_self_in(self.cfg.duration_ns, WindowOver);
                if let Some(d) = self.cfg.degrade {
                    assert!(d.node < self.nodes.len(), "degraded node out of range");
                    ctx.send_self_in(d.at_ns, DegradeNow);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Arrival>() {
            Ok(Arrival) => {
                if !self.window_closed {
                    self.on_arrival(ctx);
                    let gap = (self.rng.gen_exp(self.mean_interarrival_ns) as u64).max(1);
                    ctx.send_self_in(gap, Arrival);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WarmupOver>() {
            Ok(WarmupOver) => {
                self.measuring = true;
                self.measure_start = ctx.now();
                if let Some(stats) = ctx.world().get_mut::<CpuStats>() {
                    stats.reset();
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WindowOver>() {
            Ok(WindowOver) => {
                self.close_window(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DegradeNow>() {
            Ok(DegradeNow) => {
                let d = self.cfg.degrade.expect("DegradeNow only fires when configured");
                self.switch.set_node_speed_factor(d.node, d.factor);
                ctx.world().stats.counter("cluster.degraded").add(1);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Delivered>() {
            Ok(Delivered { req }) => {
                self.on_delivered(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Response>() {
            Ok(Response { req }) => {
                self.on_response(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CpuJobDone>() {
            Ok(_) => return, // application-charge completion: nothing to do
            Err(m) => m,
        };
        match msg.downcast::<D2dDone>() {
            Ok(done) => self.on_job_done(ctx, done),
            Err(other) => panic!("ClusterDriver received unexpected message: {other:?}"),
        }
    }
}
