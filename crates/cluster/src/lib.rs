//! # dcs-cluster — multi-node DCS serving over a simulated datacenter rack
//!
//! The paper evaluates DCS-ctrl on a single server; this crate scales the
//! question up one level: *what does the HDC Engine buy a whole rack?* It
//! instantiates N independent DCS server nodes — each a full host with its
//! own PCIe fabric, NVMe SSDs, NIC, and HDC Engine (or a software-baseline
//! stack), exactly the testbed `dcs-workloads` measures — inside one
//! deterministic [`Simulator`] world, and joins them through a modeled
//! top-of-rack switch ([`TorSwitch`]) with per-port serialization, fixed
//! switching latency, and output queueing.
//!
//! In front of the rack sits a [`ClusterDriver`]: an open-loop traffic
//! generator scaling the Swift-style GET/PUT mix to the cluster's offered
//! load, a consistent-hash object shard map with R-way replication
//! ([`HashRing`]), a pluggable load balancer ([`LbPolicy`]: round-robin,
//! least-outstanding, join-shortest-queue over a GET's replica set), and
//! per-node admission control (bounded outstanding + bounded queue, then
//! shed) so overload degrades tail latency gracefully instead of
//! collapsing.
//!
//! Everything composes with the fault layer from `dcs-sim`: a
//! [`FaultPlan`] injects wire/flash/PCIe faults inside
//! any node, and [`Degrade`] slows one node's switch port mid-run — the
//! queue-aware policies observe the backlog and reroute, which is the
//! cluster-level payoff the `repro cluster` sweep quantifies.
//!
//! Whole-node failures ([`NodeFault`]: crashes and hangs) are handled by
//! the failure-tolerance layer in [`health`]: heartbeat probing over the
//! switch's strict-priority control lane, a per-node circuit breaker,
//! replica failover with bounded retries, hedged GETs, PUT fallback to
//! surviving replicas, and bandwidth-capped re-replication of the dead
//! node's shards — the `repro cluster-failover` sweep measures detection
//! time, availability through the failure, and time-to-repair.
//!
//! ```
//! use dcs_cluster::{run_cluster, ClusterConfig, LbPolicy};
//!
//! let report = run_cluster(&ClusterConfig {
//!     nodes: 2,
//!     policy: LbPolicy::JoinShortestQueue,
//!     duration_ns: dcs_sim::time::ms(3),
//!     warmup_ns: dcs_sim::time::ms(1),
//!     ..ClusterConfig::default()
//! });
//! assert!(report.requests > 0);
//! ```

pub mod driver;
pub mod health;
pub mod policy;
pub mod report;
pub mod shard;
pub mod switch;

pub use driver::{ClusterConfig, ClusterDriver, ClusterNode, ClusterOutcome, Degrade, NodeFault};
pub use health::{
    BreakerState, HealthConfig, HealthMonitor, NodeState, SlowTransition, Transition,
};
pub use policy::{LbPolicy, NodeLoad};
pub use report::{ClusterReport, NodePerf, PhasePerf, TenantPerf};
pub use shard::HashRing;
pub use switch::{Lane, SwitchConfig, TorSwitch};

use dcs_sim::{ComponentId, FaultPlan, Simulator};
use dcs_workloads::build_testbed_nodes;

/// A built (but not yet run) cluster.
pub struct Cluster {
    /// The simulator holding every node and the front end.
    pub sim: Simulator,
    /// The front-end driver component.
    pub frontend: ComponentId,
    /// The nodes, indexed consistently with the shard map and report.
    pub nodes: Vec<ClusterNode>,
}

/// Builds the cluster: N server/access node pairs (named `n{i}` /
/// `n{i}-fe`, which keys their CPU-stats pools), the optional fault plan,
/// and the started front end. Device bring-up is settled before traffic
/// begins.
///
/// # Panics
///
/// Panics if `cfg.nodes` is zero.
pub fn build_cluster(cfg: &ClusterConfig) -> Cluster {
    assert!(cfg.nodes > 0, "a cluster needs at least one node");
    let mut sim = Simulator::new(cfg.seed);
    let mut nodes = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let (server, access) = build_testbed_nodes(
            &mut sim,
            cfg.design,
            &cfg.testbed,
            &format!("n{i}"),
            &format!("n{i}-fe"),
        );
        nodes.push(ClusterNode { server, access });
    }
    // Settle bring-up (queue attach, ring config) before traffic starts.
    sim.run();
    if cfg.fault_rate > 0.0 {
        let rng = sim.world_mut().rng.fork();
        sim.world_mut()
            .insert(FaultPlan::uniform(cfg.fault_rate, rng));
    }
    let rng = sim.world_mut().rng.fork();
    let frontend = sim.add(
        "cluster-frontend",
        ClusterDriver::new(cfg.clone(), nodes.clone(), rng),
    );
    sim.kickoff(frontend, driver::Start);
    Cluster {
        sim,
        frontend,
        nodes,
    }
}

/// Builds the cluster, runs it to completion, and returns the measured
/// report.
///
/// # Panics
///
/// Panics if the simulation fails to drain (a stuck request) or no report
/// was produced.
pub fn run_cluster(cfg: &ClusterConfig) -> ClusterReport {
    let mut cluster = build_cluster(cfg);
    cluster.sim.run();
    assert!(cluster.sim.is_idle(), "cluster simulation must drain");
    cluster
        .sim
        .world_mut()
        .remove::<ClusterOutcome>()
        .expect("cluster run leaves a report in the world")
        .0
}
