//! # dcs-pcie — the PCIe fabric of the simulated server
//!
//! The DCS-ctrl testbed hangs every device — NVMe SSD, 10 GbE NIC, GPU, and
//! the HDC Engine itself — off one PCIe Gen2 switch (a Cyclone PCIe2-2707:
//! five slots, 80 Gbps aggregate). All three communication schemes the paper
//! compares differ only in *who* drives this fabric and *where* data lands,
//! so the fabric model is shared by every design:
//!
//! * [`mem::PhysMemory`] — the global physical address map. Every memory in
//!   the system (host DRAM, SSD flash, GPU BAR, HDC BRAM/DDR3) is a
//!   sparsely-backed region; DMA moves real bytes between them.
//! * [`routing::MmioRouting`] — which component owns which MMIO range
//!   (doorbell registers, command queues, MSI target addresses).
//! * [`fabric::PcieFabric`] — the switch component: executes [`DmaRequest`]s
//!   with bandwidth/latency/TLP-overhead modeling, routes posted
//!   [`MmioWrite`]s, and delivers message-signaled interrupts.
//!
//! Both `PhysMemory` and `MmioRouting` live in the simulator
//! [`World`](dcs_sim::World) so that any component can reach them.
//!
//! ```
//! use dcs_sim::Simulator;
//! use dcs_pcie::{PhysMemory, PortId};
//!
//! let mut sim = Simulator::new(0);
//! let mut mem = PhysMemory::new();
//! let dram = mem.alloc_region("host-dram", 1 << 30, PortId::ROOT);
//! mem.write(dram.start, b"hello");
//! assert_eq!(mem.read(dram.start, 5), b"hello");
//! sim.world_mut().insert(mem);
//! ```

pub mod addr;
pub mod aer;
pub mod config;
pub mod fabric;
pub mod mem;
pub mod routing;

pub use addr::{AddrRange, PhysAddr};
pub use aer::{AerEntry, AerKind, AerLog};
pub use config::PcieConfig;
pub use fabric::{
    DmaComplete, DmaRequest, DmaStatus, MmioWrite, Msi, MsiDelivery, PcieFabric, TlpClass,
};
pub use mem::{PhysMemory, PortId, RegionInfo};
pub use routing::MmioRouting;
