//! Timing and topology parameters of the PCIe fabric.

use dcs_sim::Bandwidth;

/// Fabric timing/topology configuration.
///
/// Defaults model the paper's testbed (Table V): a Cyclone PCIe2-2707 Gen2
/// switch with five slots and 80 Gbps aggregate bandwidth, devices attached
/// at Gen2 x8 (≈32 Gbps effective per link after 8b/10b and protocol
/// overhead).
#[derive(Clone, Debug)]
pub struct PcieConfig {
    /// Number of switch ports (including the root/upstream port).
    pub ports: usize,
    /// Effective per-link bandwidth (post-encoding).
    pub link_bandwidth: Bandwidth,
    /// Aggregate switch crossbar bandwidth.
    pub switch_bandwidth: Bandwidth,
    /// One-way propagation + switching latency per hop, in nanoseconds.
    pub hop_latency_ns: u64,
    /// Maximum TLP payload per packet, in bytes.
    pub max_payload: usize,
    /// TLP header + DLLP/framing overhead per packet, in bytes.
    pub tlp_overhead: usize,
    /// Latency of a posted MMIO write reaching the target device.
    pub mmio_write_ns: u64,
    /// Round-trip latency of a non-posted MMIO read.
    pub mmio_read_ns: u64,
    /// Latency of an MSI write reaching its target.
    pub msi_ns: u64,
    /// End-to-end CRC on every TLP: corruption in flight is *detected*
    /// at the receiver (and replayed or poisoned) instead of landing as
    /// silent bad data. Off models a fabric without ECRC support, where
    /// payload corruption escapes into "successful" completions.
    pub ecrc: bool,
    /// Completion timeout for non-posted requests: how long the
    /// requester waits before a request whose completion can never
    /// arrive (e.g. an unrecognizably corrupted header with no replay
    /// budget) is failed with a Timeout-status completion.
    pub cpl_timeout_ns: u64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            ports: 6, // root + 5 slots (SSD, NIC, GPU, HDC Engine, spare)
            link_bandwidth: Bandwidth::gbps(32.0),
            switch_bandwidth: Bandwidth::gbps(80.0),
            hop_latency_ns: 250,
            max_payload: 256,
            tlp_overhead: 26, // 12B TLP hdr + 2B seq + 4B LCRC + 8B framing/ACK amortized
            mmio_write_ns: 300,
            mmio_read_ns: 900,
            msi_ns: 300,
            ecrc: true,
            cpl_timeout_ns: 50_000,
        }
    }
}

impl PcieConfig {
    /// Bytes actually moved on a link for a `len`-byte transfer, including
    /// per-TLP overhead.
    pub fn wire_bytes(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let packets = len.div_ceil(self.max_payload);
        len + packets * self.tlp_overhead
    }

    /// Serialization time of a `len`-byte transfer on one link.
    pub fn link_time(&self, len: usize) -> u64 {
        self.link_bandwidth.transfer_time(self.wire_bytes(len))
    }

    /// Serialization time of a `len`-byte transfer through the crossbar.
    pub fn switch_time(&self, len: usize) -> u64 {
        self.switch_bandwidth.transfer_time(self.wire_bytes(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_adds_per_packet_overhead() {
        let c = PcieConfig::default();
        assert_eq!(c.wire_bytes(0), 0);
        assert_eq!(c.wire_bytes(1), 1 + 26);
        assert_eq!(c.wire_bytes(256), 256 + 26);
        assert_eq!(c.wire_bytes(257), 257 + 2 * 26);
        assert_eq!(c.wire_bytes(4096), 4096 + 16 * 26);
    }

    #[test]
    fn link_time_scales_with_size() {
        let c = PcieConfig::default();
        let t1 = c.link_time(4096);
        let t2 = c.link_time(8192);
        assert!(t2 > t1, "{t2} > {t1}");
        // 4KB + overhead at 32 Gbps ≈ 1.13 us.
        assert!((1_000..1_300).contains(&t1), "{t1}");
    }

    #[test]
    fn switch_is_faster_than_link_per_transfer() {
        let c = PcieConfig::default();
        assert!(c.switch_time(65536) < c.link_time(65536));
    }
}
