//! The PCIe switch component: DMA execution, MMIO routing, MSI delivery.
//!
//! Timing model: a transfer from the memory behind port A to the memory
//! behind port B serializes on A's egress link, B's ingress link, and the
//! switch crossbar (each a FIFO server tracking its own occupancy), and
//! pays one hop of propagation latency per traversed link. The completion
//! instant is the latest of the three serializations plus propagation —
//! a cut-through approximation that avoids charging store-and-forward per
//! hop while still creating back-pressure on busy links (documented in
//! DESIGN.md). Data bytes move in [`PhysMemory`] at completion time.

use dcs_sim::{fault, Component, ComponentId, Ctx, Msg, SimTime};

use crate::addr::PhysAddr;
use crate::config::PcieConfig;
use crate::mem::{PhysMemory, PortId};
use crate::routing::MmioRouting;

/// Asks the fabric to move `len` bytes from `src` to `dst`.
///
/// `id` is an opaque token chosen by the requester, echoed back in the
/// [`DmaComplete`] sent to `reply_to` when the bytes have landed.
#[derive(Debug, Clone)]
pub struct DmaRequest {
    /// Requester-chosen token echoed in the completion.
    pub id: u64,
    /// Source physical address.
    pub src: PhysAddr,
    /// Destination physical address.
    pub dst: PhysAddr,
    /// Transfer length in bytes.
    pub len: usize,
    /// Component to notify on completion.
    pub reply_to: ComponentId,
}

/// Notifies the requester that a [`DmaRequest`] finished and its bytes are
/// visible at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaComplete {
    /// Token from the originating request.
    pub id: u64,
    /// Bytes moved.
    pub len: usize,
}

/// A posted MMIO write (doorbell ring, command enqueue). Routed by address
/// to the owning component, which receives this same payload.
#[derive(Debug, Clone)]
pub struct MmioWrite {
    /// Target register address.
    pub addr: PhysAddr,
    /// Bytes written (doorbell values are small; HDC D2D commands are 64 B).
    pub data: Vec<u8>,
}

/// A message-signaled interrupt: a write to an interrupt target address.
#[derive(Debug, Clone, Copy)]
pub struct Msi {
    /// MSI target address (determines who is interrupted).
    pub addr: PhysAddr,
    /// Interrupt vector.
    pub vector: u32,
}

/// Delivered to the component owning an MSI target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsiDelivery {
    /// Interrupt vector.
    pub vector: u32,
}

/// Internal: a DMA whose transfer time has elapsed.
#[derive(Debug)]
struct DmaDone {
    req: DmaRequest,
}

/// The switch / root-complex component.
///
/// Requires a [`PhysMemory`] and an [`MmioRouting`] to be registered in the
/// [`World`](dcs_sim::World) before the first message arrives.
pub struct PcieFabric {
    config: PcieConfig,
    /// Per-port egress (index 0) / ingress (index 1) serialization state.
    links: Vec<[dcs_sim::FifoServer; 2]>,
    crossbar: dcs_sim::FifoServer,
}

impl PcieFabric {
    /// Creates a fabric with the given configuration.
    pub fn new(config: PcieConfig) -> Self {
        let links = (0..config.ports).map(|_| Default::default()).collect();
        PcieFabric { config, links, crossbar: dcs_sim::FifoServer::new() }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &PcieConfig {
        &self.config
    }

    fn link(&mut self, port: PortId, dir: usize) -> &mut dcs_sim::FifoServer {
        let idx = port.0 as usize;
        assert!(
            idx < self.links.len(),
            "{} out of range: fabric has {} ports",
            port,
            self.links.len()
        );
        &mut self.links[idx][dir]
    }

    fn start_dma(&mut self, ctx: &mut Ctx<'_>, req: DmaRequest) {
        let (src_port, dst_port) = {
            let mem = ctx.world_ref().expect::<PhysMemory>();
            (
                mem.region_of(req.src, req.len).port,
                mem.region_of(req.dst, req.len).port,
            )
        };
        let now = ctx.now();
        let service = self.config.link_time(req.len);
        let hop = self.config.hop_latency_ns;
        let done = if src_port == dst_port {
            // Local copy inside one endpoint: occupies only that endpoint's
            // DMA engine (modeled as its egress link), no switch traversal.
            let egress = self.link(src_port, 0).offer(now, service) + hop;
            ctx.world().obs.span("pcie", "tlp-local", req.id, now, egress);
            egress
        } else {
            let xbar = self.crossbar.offer(now, self.config.switch_time(req.len));
            let egress = self.link(src_port, 0).offer(now, service);
            let ingress = self.link(dst_port, 1).offer(now, service);
            // Per-hop TLP transit spans: each serialization stage as the
            // fabric resolved it, in virtual time.
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "tlp-egress", req.id, now, egress + hop);
            obs.span("pcie", "tlp-xbar", req.id, now, xbar);
            obs.span("pcie", "tlp-ingress", req.id, now, ingress + 2 * hop);
            egress.max(ingress).max(xbar) + 2 * hop
        };
        {
            let stats = &mut ctx.world().stats;
            stats.counter("pcie.dma_ops").add(1);
            stats.counter("pcie.dma_bytes").add(req.len as u64);
        }
        let mut delay = done - now;
        if fault::inject(ctx.world(), fault::PCIE_REPLAY).is_some() {
            // Link-level transfer error: the data-link layer replays the
            // TLPs transparently — no data loss, just a second pass of
            // serialization charged to the transfer.
            ctx.world().stats.counter("pcie.replays").add(1);
            delay += service + hop;
        }
        {
            let obs = &mut ctx.world().obs;
            let end = now + delay;
            obs.span("pcie", "dma", req.id, now, end);
            obs.count("pcie", "dma.ops", 1);
            obs.count("pcie", "dma.bytes", req.len as u64);
            obs.observe("pcie", "dma.ns", delay);
        }
        ctx.send_self_in(delay, DmaDone { req });
    }

    fn finish_dma(&mut self, ctx: &mut Ctx<'_>, done: DmaDone) {
        let DmaRequest { id, src, dst, len, reply_to } = done.req;
        ctx.world()
            .expect_mut::<PhysMemory>()
            .copy(src, dst, len);
        ctx.send_now(reply_to, DmaComplete { id, len });
    }

    fn route_mmio(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let addr = msg.get::<MmioWrite>().expect("checked by caller").addr;
        let owner = ctx
            .world_ref()
            .expect::<MmioRouting>()
            .owner_of(addr)
            .unwrap_or_else(|| panic!("MMIO write to unclaimed address {addr}"));
        ctx.world().stats.counter("pcie.mmio_writes").add(1);
        let delay = self.config.mmio_write_ns + 2 * self.config.hop_latency_ns;
        {
            let now = ctx.now();
            let end = now + delay;
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "mmio-write", addr.0, now, end);
            obs.count("pcie", "mmio.writes", 1);
        }
        ctx.forward_in(delay, owner, msg);
    }

    fn route_msi(&mut self, ctx: &mut Ctx<'_>, msi: Msi) {
        let owner = ctx
            .world_ref()
            .expect::<MmioRouting>()
            .owner_of(msi.addr)
            .unwrap_or_else(|| panic!("MSI to unclaimed address {}", msi.addr));
        ctx.world().stats.counter("pcie.msi").add(1);
        if fault::inject(ctx.world(), fault::MSI_LOSS).is_some() {
            // The interrupt write never lands; consumers recover by
            // polling their completion structures on a timeout.
            ctx.world().stats.counter("pcie.msi_lost").add(1);
            return;
        }
        {
            let now = ctx.now();
            let end = now + self.config.msi_ns;
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "msi", msi.vector as u64, now, end);
            obs.count("pcie", "msi.delivered", 1);
        }
        ctx.send_in(self.config.msi_ns, owner, MsiDelivery { vector: msi.vector });
    }

    /// Busy time accumulated on a port's egress (`dir = 0`) or ingress
    /// (`dir = 1`) link — exposed for utilization assertions in tests.
    pub fn link_busy_time(&self, port: PortId, dir: usize) -> u64 {
        self.links[port.0 as usize][dir].busy_time()
    }
}

impl Component for PcieFabric {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.is::<MmioWrite>() {
            self.route_mmio(ctx, msg);
            return;
        }
        let msg = match msg.downcast::<DmaRequest>() {
            Ok(req) => {
                self.start_dma(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DmaDone>() {
            Ok(done) => {
                self.finish_dma(ctx, done);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<Msi>() {
            Ok(msi) => self.route_msi(ctx, msi),
            Err(other) => panic!("PcieFabric received unexpected message: {other:?}"),
        }
    }
}

/// Convenience: elapsed completion instant of the *last* scheduled event —
/// only used by unit tests below.
#[allow(dead_code)]
fn _ts(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::Simulator;

    /// Captures completions for inspection.
    struct Sink {
        completions: Vec<(u64, SimTime)>,
        mmio: Vec<(PhysAddr, Vec<u8>)>,
        msi: Vec<u32>,
    }
    impl Sink {
        fn new() -> Self {
            Sink { completions: vec![], mmio: vec![], msi: vec![] }
        }
    }

    impl Component for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<DmaComplete>() {
                Ok(c) => {
                    self.completions.push((c.id, ctx.now()));
                    ctx.world().stats.counter("sink.dma").add(1);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<MmioWrite>() {
                Ok(w) => {
                    self.mmio.push((w.addr, w.data));
                    ctx.world().stats.counter("sink.mmio").add(1);
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<MsiDelivery>() {
                Ok(d) => {
                    self.msi.push(d.vector);
                    ctx.world().stats.counter("sink.msi").add(1);
                }
                Err(other) => panic!("unexpected: {other:?}"),
            }
        }
    }

    fn setup() -> (Simulator, ComponentId, ComponentId, crate::AddrRange, crate::AddrRange) {
        let mut sim = Simulator::new(0);
        let mut mem = PhysMemory::new();
        let dram = mem.alloc_region("dram", 1 << 24, PortId::ROOT);
        let flash = mem.alloc_region("flash", 1 << 24, PortId(1));
        sim.world_mut().insert(mem);
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let sink = sim.add("sink", Sink::new());
        (sim, fabric, sink, dram, flash)
    }

    #[test]
    fn dma_moves_bytes_and_completes() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest { id: 7, src: dram.start, dst: flash.start + 64, len: 8, reply_to: sink },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.dma"), 1);
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start + 64, 8),
            b"payload!"
        );
        assert_eq!(sim.world().stats.counter_value("pcie.dma_bytes"), 8);
        // Completion time: tiny transfer dominated by 2 hops (500ns) + ser.
        assert!(sim.now().as_nanos() >= 500);
        assert!(sim.now().as_nanos() < 2_000, "{}", sim.now());
    }

    #[test]
    fn concurrent_dmas_on_one_link_serialize() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        let len = 64 * 1024;
        for i in 0..2 {
            sim.kickoff(
                fabric,
                DmaRequest {
                    id: i,
                    src: flash.start,
                    dst: dram.start + i * 128 * 1024,
                    len,
                    reply_to: sink,
                },
            );
        }
        sim.run();
        let cfg = PcieConfig::default();
        let one = cfg.link_time(len);
        // Second transfer must wait for the first on the flash egress link:
        // total ≈ 2 * serialization + hops.
        let total = sim.now().as_nanos();
        assert!(total >= 2 * one, "total {total} vs 2x serialization {}", 2 * one);
        assert!(total < 2 * one + 10_000, "{total}");
    }

    #[test]
    fn dmas_on_distinct_links_overlap() {
        let mut sim = Simulator::new(0);
        let mut mem = PhysMemory::new();
        let a = mem.alloc_region("a", 1 << 24, PortId(1));
        let b = mem.alloc_region("b", 1 << 24, PortId(2));
        let c = mem.alloc_region("c", 1 << 24, PortId(3));
        let d = mem.alloc_region("d", 1 << 24, PortId(4));
        sim.world_mut().insert(mem);
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let sink = sim.add("sink", Sink::new());
        let len = 256 * 1024;
        sim.kickoff(fabric, DmaRequest { id: 0, src: a.start, dst: b.start, len, reply_to: sink });
        sim.kickoff(fabric, DmaRequest { id: 1, src: c.start, dst: d.start, len, reply_to: sink });
        sim.run();
        let cfg = PcieConfig::default();
        let one_link = cfg.link_time(len);
        let both_xbar = 2 * cfg.switch_time(len);
        // Parallel on links, serialized only on the crossbar.
        let expected_floor = one_link.max(both_xbar);
        let total = sim.now().as_nanos();
        assert!(total >= expected_floor, "{total} vs {expected_floor}");
        assert!(total < 2 * one_link, "transfers must overlap: {total} vs {}", 2 * one_link);
    }

    #[test]
    fn mmio_routes_to_owner_with_payload() {
        let (mut sim, fabric, sink, _dram, _flash) = setup();
        let reg = crate::AddrRange::new(PhysAddr(0xF000_0000), 0x1000);
        sim.world_mut().expect_mut::<MmioRouting>().claim(reg, sink);
        sim.kickoff(fabric, MmioWrite { addr: reg.start + 8, data: vec![1, 2, 3, 4] });
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.mmio"), 1);
        assert_eq!(sim.world().stats.counter_value("pcie.mmio_writes"), 1);
        // 300ns write + 2 * 250ns hops.
        assert_eq!(sim.now().as_nanos(), 800);
    }

    #[test]
    #[should_panic(expected = "unclaimed address")]
    fn mmio_to_unclaimed_address_panics() {
        let (mut sim, fabric, _sink, _dram, _flash) = setup();
        sim.kickoff(fabric, MmioWrite { addr: PhysAddr(0xdead_0000), data: vec![0] });
        sim.run();
    }

    #[test]
    fn msi_delivers_vector_to_owner() {
        let (mut sim, fabric, sink, _dram, _flash) = setup();
        let msi_range = crate::AddrRange::new(PhysAddr(0xFEE0_0000), 0x1000);
        sim.world_mut().expect_mut::<MmioRouting>().claim(msi_range, sink);
        sim.kickoff(fabric, Msi { addr: msi_range.start, vector: 42 });
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.msi"), 1);
        assert_eq!(sim.now().as_nanos(), PcieConfig::default().msi_ns);
    }

    #[test]
    fn zero_length_dma_completes_fast() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        sim.kickoff(
            fabric,
            DmaRequest { id: 1, src: dram.start, dst: flash.start, len: 0, reply_to: sink },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.dma"), 1);
    }

    #[test]
    fn same_port_copy_skips_the_switch() {
        let (mut sim, fabric, sink, dram, _flash) = setup();
        let len = 4096;
        sim.kickoff(
            fabric,
            DmaRequest { id: 1, src: dram.start, dst: dram.start + 8192, len, reply_to: sink },
        );
        sim.run();
        let cfg = PcieConfig::default();
        // One serialization + one hop, no crossbar time.
        assert_eq!(sim.now().as_nanos(), cfg.link_time(len) + cfg.hop_latency_ns);
        assert_eq!(sim.world().stats.counter_value("pcie.dma_ops"), 1);
    }
}
