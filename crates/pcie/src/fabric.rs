//! The PCIe switch component: DMA execution, MMIO routing, MSI delivery.
//!
//! Timing model: a transfer from the memory behind port A to the memory
//! behind port B serializes on A's egress link, B's ingress link, and the
//! switch crossbar (each a FIFO server tracking its own occupancy), and
//! pays one hop of propagation latency per traversed link. The completion
//! instant is the latest of the three serializations plus propagation —
//! a cut-through approximation that avoids charging store-and-forward per
//! hop while still creating back-pressure on busy links (documented in
//! DESIGN.md). Data bytes move in [`PhysMemory`] at completion time.

use dcs_sim::{fault, Component, ComponentId, Ctx, Msg, SimTime};

use crate::addr::PhysAddr;
use crate::aer::{self, AerKind};
use crate::config::PcieConfig;
use crate::mem::{PhysMemory, PortId};
use crate::routing::MmioRouting;

/// What a DMA's payload *is*, for fault-site selection: corrupting bulk
/// data and corrupting a completion structure are different failure
/// modes with different containment (payload checksums vs. entry CRCs),
/// so the corruption sites draw independently per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TlpClass {
    /// Bulk data movement (payloads, descriptors, staging buffers).
    #[default]
    Data,
    /// A completion structure write (NVMe CQE, HDC completion record).
    Completion,
}

/// How a DMA ended, from the requester's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DmaStatus {
    /// Bytes landed intact.
    #[default]
    Ok,
    /// Bytes landed but the last TLP failed its ECRC check with no
    /// replay budget left: the data at the destination is poisoned.
    /// Poison follows the data — a consumer must never complete the
    /// containing operation as a success.
    Poisoned,
    /// The completion never arrived (unrecognizably corrupted request
    /// header, replay budget zero); nothing was written.
    Timeout,
}

impl DmaStatus {
    /// Whether the transfer delivered trustworthy bytes.
    pub fn is_ok(self) -> bool {
        self == DmaStatus::Ok
    }
}

/// Asks the fabric to move `len` bytes from `src` to `dst`.
///
/// `id` is an opaque token chosen by the requester, echoed back in the
/// [`DmaComplete`] sent to `reply_to` when the bytes have landed.
#[derive(Debug, Clone)]
pub struct DmaRequest {
    /// Requester-chosen token echoed in the completion.
    pub id: u64,
    /// Source physical address.
    pub src: PhysAddr,
    /// Destination physical address.
    pub dst: PhysAddr,
    /// Transfer length in bytes.
    pub len: usize,
    /// Payload class (selects the corruption fault site).
    pub class: TlpClass,
    /// Component to notify on completion.
    pub reply_to: ComponentId,
}

/// Notifies the requester that a [`DmaRequest`] finished and its bytes are
/// visible at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaComplete {
    /// Token from the originating request.
    pub id: u64,
    /// Bytes moved.
    pub len: usize,
    /// Integrity outcome; anything but [`DmaStatus::Ok`] means the
    /// destination bytes must not be trusted (and on
    /// [`DmaStatus::Timeout`] were never written).
    pub status: DmaStatus,
}

/// A posted MMIO write (doorbell ring, command enqueue). Routed by address
/// to the owning component, which receives this same payload.
#[derive(Debug, Clone)]
pub struct MmioWrite {
    /// Target register address.
    pub addr: PhysAddr,
    /// Bytes written (doorbell values are small; HDC D2D commands are 64 B).
    pub data: Vec<u8>,
}

/// A message-signaled interrupt: a write to an interrupt target address.
#[derive(Debug, Clone, Copy)]
pub struct Msi {
    /// MSI target address (determines who is interrupted).
    pub addr: PhysAddr,
    /// Interrupt vector.
    pub vector: u32,
}

/// Delivered to the component owning an MSI target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsiDelivery {
    /// Interrupt vector.
    pub vector: u32,
}

/// Internal: a DMA whose transfer time has elapsed.
#[derive(Debug)]
struct DmaDone {
    req: DmaRequest,
    status: DmaStatus,
    /// Fault-shaping entropy when corruption landed (picks the flipped
    /// bit at completion time, after the copy).
    corrupt: Option<u64>,
}

/// The switch / root-complex component.
///
/// Requires a [`PhysMemory`] and an [`MmioRouting`] to be registered in the
/// [`World`](dcs_sim::World) before the first message arrives.
pub struct PcieFabric {
    config: PcieConfig,
    /// Per-port egress (index 0) / ingress (index 1) serialization state.
    links: Vec<[dcs_sim::FifoServer; 2]>,
    crossbar: dcs_sim::FifoServer,
}

impl PcieFabric {
    /// Creates a fabric with the given configuration.
    pub fn new(config: PcieConfig) -> Self {
        let links = (0..config.ports).map(|_| Default::default()).collect();
        PcieFabric {
            config,
            links,
            crossbar: dcs_sim::FifoServer::new(),
        }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &PcieConfig {
        &self.config
    }

    fn link(&mut self, port: PortId, dir: usize) -> &mut dcs_sim::FifoServer {
        let idx = port.0 as usize;
        assert!(
            idx < self.links.len(),
            "{} out of range: fabric has {} ports",
            port,
            self.links.len()
        );
        &mut self.links[idx][dir]
    }

    fn start_dma(&mut self, ctx: &mut Ctx<'_>, req: DmaRequest) {
        let (src_port, dst_port) = {
            let mem = ctx.world_ref().expect::<PhysMemory>();
            (
                mem.region_of(req.src, req.len).port,
                mem.region_of(req.dst, req.len).port,
            )
        };
        let now = ctx.now();
        let service = self.config.link_time(req.len);
        let hop = self.config.hop_latency_ns;
        let done = if src_port == dst_port {
            // Local copy inside one endpoint: occupies only that endpoint's
            // DMA engine (modeled as its egress link), no switch traversal.
            let egress = self.link(src_port, 0).offer(now, service) + hop;
            ctx.world()
                .obs
                .span("pcie", "tlp-local", req.id, now, egress);
            egress
        } else {
            let xbar = self.crossbar.offer(now, self.config.switch_time(req.len));
            let egress = self.link(src_port, 0).offer(now, service);
            let ingress = self.link(dst_port, 1).offer(now, service);
            // Per-hop TLP transit spans: each serialization stage as the
            // fabric resolved it, in virtual time.
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "tlp-egress", req.id, now, egress + hop);
            obs.span("pcie", "tlp-xbar", req.id, now, xbar);
            obs.span("pcie", "tlp-ingress", req.id, now, ingress + 2 * hop);
            egress.max(ingress).max(xbar) + 2 * hop
        };
        {
            let stats = &mut ctx.world().stats;
            stats.counter("pcie.dma_ops").add(1);
            stats.counter("pcie.dma_bytes").add(req.len as u64);
        }
        let mut delay = done - now;
        if fault::inject(ctx.world(), fault::PCIE_REPLAY).is_some() {
            // Link-level transfer error: the data-link layer replays the
            // TLPs transparently — no data loss, just a second pass of
            // serialization charged to the transfer.
            ctx.world().stats.counter("pcie.replays").add(1);
            delay += service + hop;
        }
        let mut status = DmaStatus::Ok;
        let mut corrupt = None;
        if fault::active(ctx.world_ref()) {
            // Header corruption first: an unrecognizable TLP is caught by
            // the link layer's LCRC/sequence check regardless of ECRC.
            // With replay budget it is retransmitted (one corrected AER
            // entry, one extra serialization pass); without, the request
            // effectively vanishes and the requester's completion timeout
            // fires.
            let retries = fault::recovery(ctx.world_ref())
                .map(|r| r.pcie_retries)
                .unwrap_or(0);
            if fault::inject(ctx.world(), fault::TLP_HEADER).is_some() {
                if retries > 0 {
                    fault::retried(ctx.world(), fault::TLP_HEADER);
                    fault::recovered(ctx.world(), fault::TLP_HEADER);
                    aer::record(
                        ctx.world(),
                        now.as_nanos(),
                        req.id,
                        fault::TLP_HEADER,
                        AerKind::EcrcReplay,
                    );
                    delay += service + hop;
                } else {
                    fault::exhausted(ctx.world(), fault::TLP_HEADER);
                    aer::record(
                        ctx.world(),
                        now.as_nanos(),
                        req.id,
                        fault::TLP_HEADER,
                        AerKind::CompletionTimeout,
                    );
                    status = DmaStatus::Timeout;
                    delay = self.config.cpl_timeout_ns;
                }
            }
            // Payload corruption, by class. While ECRC is on, each
            // corrupted attempt is detected at the receiver: replayed if
            // budget remains, delivered poisoned otherwise. With ECRC
            // off there is nothing to detect against — the first hit
            // lands silently as "successful" bad data.
            let site = match req.class {
                TlpClass::Data => fault::DMA_CORRUPT,
                TlpClass::Completion => fault::CPL_CORRUPT,
            };
            // ECRC is per TLP, so every packet of the transfer is an
            // eligible corruption event: a 16 KiB DMA at max_payload 256
            // rolls the dice 64 times per attempt. The first corrupted
            // TLP decides the attempt's fate (a replay re-sends the
            // whole request in this model).
            let tlps = req.len.div_ceil(self.config.max_payload);
            let mut attempt = 0;
            while status == DmaStatus::Ok {
                let mut hit = None;
                for _ in 0..tlps {
                    if let Some(entropy) = fault::inject(ctx.world(), site) {
                        hit = Some(entropy);
                        break;
                    }
                }
                let Some(entropy) = hit else { break };
                if !self.config.ecrc {
                    fault::exhausted(ctx.world(), site);
                    aer::record(
                        ctx.world(),
                        now.as_nanos(),
                        req.id,
                        site,
                        AerKind::SilentEscape,
                    );
                    ctx.world().stats.counter("pcie.ecrc_escapes").add(1);
                    corrupt = Some(entropy);
                    break;
                }
                if attempt < retries {
                    attempt += 1;
                    fault::retried(ctx.world(), site);
                    fault::recovered(ctx.world(), site);
                    aer::record(
                        ctx.world(),
                        now.as_nanos(),
                        req.id,
                        site,
                        AerKind::EcrcReplay,
                    );
                    delay += service + hop;
                } else {
                    fault::exhausted(ctx.world(), site);
                    aer::record(
                        ctx.world(),
                        now.as_nanos(),
                        req.id,
                        site,
                        AerKind::PoisonedTlp,
                    );
                    ctx.world().stats.counter("pcie.poisoned_tlps").add(1);
                    corrupt = Some(entropy);
                    status = DmaStatus::Poisoned;
                    break;
                }
            }
        }
        {
            let obs = &mut ctx.world().obs;
            let end = now + delay;
            obs.span("pcie", "dma", req.id, now, end);
            obs.count("pcie", "dma.ops", 1);
            obs.count("pcie", "dma.bytes", req.len as u64);
            obs.observe("pcie", "dma.ns", delay);
        }
        ctx.send_self_in(
            delay,
            DmaDone {
                req,
                status,
                corrupt,
            },
        );
    }

    fn finish_dma(&mut self, ctx: &mut Ctx<'_>, done: DmaDone) {
        let DmaDone {
            req,
            status,
            corrupt,
        } = done;
        let DmaRequest {
            id,
            src,
            dst,
            len,
            reply_to,
            ..
        } = req;
        if status != DmaStatus::Timeout {
            ctx.world().expect_mut::<PhysMemory>().copy(src, dst, len);
            if let Some(entropy) = corrupt {
                // Poison follows the data: the corrupted TLP's payload is
                // what landed, so flip one entropy-chosen bit in place.
                let offset = entropy % len as u64;
                let mem = ctx.world().expect_mut::<PhysMemory>();
                let mut byte = mem.read(dst + offset, 1);
                byte[0] ^= 1 << ((entropy >> 32) % 8);
                mem.write(dst + offset, &byte);
            }
        }
        ctx.send_now(reply_to, DmaComplete { id, len, status });
    }

    fn route_mmio(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let addr = msg.get::<MmioWrite>().expect("checked by caller").addr;
        let owner = ctx
            .world_ref()
            .expect::<MmioRouting>()
            .owner_of(addr)
            .unwrap_or_else(|| panic!("MMIO write to unclaimed address {addr}"));
        ctx.world().stats.counter("pcie.mmio_writes").add(1);
        let delay = self.config.mmio_write_ns + 2 * self.config.hop_latency_ns;
        {
            let now = ctx.now();
            let end = now + delay;
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "mmio-write", addr.0, now, end);
            obs.count("pcie", "mmio.writes", 1);
        }
        ctx.forward_in(delay, owner, msg);
    }

    fn route_msi(&mut self, ctx: &mut Ctx<'_>, msi: Msi) {
        let owner = ctx
            .world_ref()
            .expect::<MmioRouting>()
            .owner_of(msi.addr)
            .unwrap_or_else(|| panic!("MSI to unclaimed address {}", msi.addr));
        ctx.world().stats.counter("pcie.msi").add(1);
        if fault::inject(ctx.world(), fault::MSI_LOSS).is_some() {
            // The interrupt write never lands; consumers recover by
            // polling their completion structures on a timeout.
            ctx.world().stats.counter("pcie.msi_lost").add(1);
            return;
        }
        {
            let now = ctx.now();
            let end = now + self.config.msi_ns;
            let obs = &mut ctx.world().obs;
            obs.span("pcie", "msi", msi.vector as u64, now, end);
            obs.count("pcie", "msi.delivered", 1);
        }
        ctx.send_in(
            self.config.msi_ns,
            owner,
            MsiDelivery { vector: msi.vector },
        );
    }

    /// Busy time accumulated on a port's egress (`dir = 0`) or ingress
    /// (`dir = 1`) link — exposed for utilization assertions in tests.
    pub fn link_busy_time(&self, port: PortId, dir: usize) -> u64 {
        self.links[port.0 as usize][dir].busy_time()
    }
}

impl Component for PcieFabric {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.is::<MmioWrite>() {
            self.route_mmio(ctx, msg);
            return;
        }
        let msg = match msg.downcast::<DmaRequest>() {
            Ok(req) => {
                self.start_dma(ctx, req);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DmaDone>() {
            Ok(done) => {
                self.finish_dma(ctx, done);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<Msi>() {
            Ok(msi) => self.route_msi(ctx, msi),
            Err(other) => panic!("PcieFabric received unexpected message: {other:?}"),
        }
    }
}

/// Convenience: elapsed completion instant of the *last* scheduled event —
/// only used by unit tests below.
#[allow(dead_code)]
fn _ts(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::Simulator;

    /// Captures completions for inspection.
    struct Sink {
        completions: Vec<(u64, SimTime)>,
        statuses: Vec<DmaStatus>,
        mmio: Vec<(PhysAddr, Vec<u8>)>,
        msi: Vec<u32>,
    }
    impl Sink {
        fn new() -> Self {
            Sink {
                completions: vec![],
                statuses: vec![],
                mmio: vec![],
                msi: vec![],
            }
        }
    }

    impl Component for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<DmaComplete>() {
                Ok(c) => {
                    self.completions.push((c.id, ctx.now()));
                    self.statuses.push(c.status);
                    ctx.world().stats.counter("sink.dma").add(1);
                    if c.status.is_ok() {
                        ctx.world().stats.counter("sink.dma_ok").add(1);
                    }
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<MmioWrite>() {
                Ok(w) => {
                    self.mmio.push((w.addr, w.data));
                    ctx.world().stats.counter("sink.mmio").add(1);
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<MsiDelivery>() {
                Ok(d) => {
                    self.msi.push(d.vector);
                    ctx.world().stats.counter("sink.msi").add(1);
                }
                Err(other) => panic!("unexpected: {other:?}"),
            }
        }
    }

    fn setup() -> (
        Simulator,
        ComponentId,
        ComponentId,
        crate::AddrRange,
        crate::AddrRange,
    ) {
        let mut sim = Simulator::new(0);
        let mut mem = PhysMemory::new();
        let dram = mem.alloc_region("dram", 1 << 24, PortId::ROOT);
        let flash = mem.alloc_region("flash", 1 << 24, PortId(1));
        sim.world_mut().insert(mem);
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let sink = sim.add("sink", Sink::new());
        (sim, fabric, sink, dram, flash)
    }

    #[test]
    fn dma_moves_bytes_and_completes() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 7,
                src: dram.start,
                dst: flash.start + 64,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.dma"), 1);
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start + 64, 8),
            b"payload!"
        );
        assert_eq!(sim.world().stats.counter_value("pcie.dma_bytes"), 8);
        // Completion time: tiny transfer dominated by 2 hops (500ns) + ser.
        assert!(sim.now().as_nanos() >= 500);
        assert!(sim.now().as_nanos() < 2_000, "{}", sim.now());
    }

    #[test]
    fn concurrent_dmas_on_one_link_serialize() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        let len = 64 * 1024;
        for i in 0..2 {
            sim.kickoff(
                fabric,
                DmaRequest {
                    id: i,
                    src: flash.start,
                    dst: dram.start + i * 128 * 1024,
                    len,
                    class: TlpClass::Data,
                    reply_to: sink,
                },
            );
        }
        sim.run();
        let cfg = PcieConfig::default();
        let one = cfg.link_time(len);
        // Second transfer must wait for the first on the flash egress link:
        // total ≈ 2 * serialization + hops.
        let total = sim.now().as_nanos();
        assert!(
            total >= 2 * one,
            "total {total} vs 2x serialization {}",
            2 * one
        );
        assert!(total < 2 * one + 10_000, "{total}");
    }

    #[test]
    fn dmas_on_distinct_links_overlap() {
        let mut sim = Simulator::new(0);
        let mut mem = PhysMemory::new();
        let a = mem.alloc_region("a", 1 << 24, PortId(1));
        let b = mem.alloc_region("b", 1 << 24, PortId(2));
        let c = mem.alloc_region("c", 1 << 24, PortId(3));
        let d = mem.alloc_region("d", 1 << 24, PortId(4));
        sim.world_mut().insert(mem);
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add("pcie", PcieFabric::new(PcieConfig::default()));
        let sink = sim.add("sink", Sink::new());
        let len = 256 * 1024;
        let dma = |id, src, dst| DmaRequest {
            id,
            src,
            dst,
            len,
            class: TlpClass::Data,
            reply_to: sink,
        };
        sim.kickoff(fabric, dma(0, a.start, b.start));
        sim.kickoff(fabric, dma(1, c.start, d.start));
        sim.run();
        let cfg = PcieConfig::default();
        let one_link = cfg.link_time(len);
        let both_xbar = 2 * cfg.switch_time(len);
        // Parallel on links, serialized only on the crossbar.
        let expected_floor = one_link.max(both_xbar);
        let total = sim.now().as_nanos();
        assert!(total >= expected_floor, "{total} vs {expected_floor}");
        assert!(
            total < 2 * one_link,
            "transfers must overlap: {total} vs {}",
            2 * one_link
        );
    }

    #[test]
    fn mmio_routes_to_owner_with_payload() {
        let (mut sim, fabric, sink, _dram, _flash) = setup();
        let reg = crate::AddrRange::new(PhysAddr(0xF000_0000), 0x1000);
        sim.world_mut().expect_mut::<MmioRouting>().claim(reg, sink);
        sim.kickoff(
            fabric,
            MmioWrite {
                addr: reg.start + 8,
                data: vec![1, 2, 3, 4],
            },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.mmio"), 1);
        assert_eq!(sim.world().stats.counter_value("pcie.mmio_writes"), 1);
        // 300ns write + 2 * 250ns hops.
        assert_eq!(sim.now().as_nanos(), 800);
    }

    #[test]
    #[should_panic(expected = "unclaimed address")]
    fn mmio_to_unclaimed_address_panics() {
        let (mut sim, fabric, _sink, _dram, _flash) = setup();
        sim.kickoff(
            fabric,
            MmioWrite {
                addr: PhysAddr(0xdead_0000),
                data: vec![0],
            },
        );
        sim.run();
    }

    #[test]
    fn msi_delivers_vector_to_owner() {
        let (mut sim, fabric, sink, _dram, _flash) = setup();
        let msi_range = crate::AddrRange::new(PhysAddr(0xFEE0_0000), 0x1000);
        sim.world_mut()
            .expect_mut::<MmioRouting>()
            .claim(msi_range, sink);
        sim.kickoff(
            fabric,
            Msi {
                addr: msi_range.start,
                vector: 42,
            },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.msi"), 1);
        assert_eq!(sim.now().as_nanos(), PcieConfig::default().msi_ns);
    }

    #[test]
    fn zero_length_dma_completes_fast() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 0,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        assert_eq!(sim.world().stats.counter_value("sink.dma"), 1);
    }

    use dcs_sim::{FaultPlan, FaultSpec, RecoveryConfig, Rng};

    /// Installs a plan with `site` scheduled at `idxs` into the sim.
    fn install_plan(sim: &mut Simulator, site: &'static str, idxs: Vec<u64>, rec: RecoveryConfig) {
        let rng = Rng::new(0xFAB);
        let mut plan = FaultPlan::new(rng);
        plan.enable(site, FaultSpec::Nth(idxs));
        plan.recovery = rec;
        sim.world_mut().insert(plan);
    }

    fn bit_diff(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }

    #[test]
    fn ecrc_replay_recovers_payload_corruption() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        install_plan(
            &mut sim,
            dcs_sim::fault::DMA_CORRUPT,
            vec![0],
            RecoveryConfig::default(),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start, 8),
            b"payload!"
        );
        assert_eq!(sim.world().stats.counter_value("sink.dma_ok"), 1);
        assert_eq!(sim.world().stats.counter_value("fault.injected"), 1);
        assert_eq!(sim.world().stats.counter_value("fault.recovered"), 1);
        assert_eq!(sim.world().stats.counter_value("aer.ecrc_replay"), 1);
        assert_eq!(sim.world().stats.counter_value("aer.detected"), 1);
    }

    #[test]
    fn exhausted_replays_deliver_a_poisoned_tlp() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        // Default budget is 2 replays: three consecutive corrupt attempts
        // exhaust it and the data lands poisoned.
        install_plan(
            &mut sim,
            dcs_sim::fault::DMA_CORRUPT,
            vec![0, 1, 2],
            RecoveryConfig::default(),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        let landed = sim.world().expect::<PhysMemory>().read(flash.start, 8);
        assert_eq!(
            bit_diff(&landed, b"payload!"),
            1,
            "poison is a single flipped bit"
        );
        assert_eq!(sim.world().stats.counter_value("sink.dma"), 1);
        assert_eq!(
            sim.world().stats.counter_value("sink.dma_ok"),
            0,
            "poison is not success"
        );
        assert_eq!(sim.world().stats.counter_value("fault.injected"), 3);
        assert_eq!(sim.world().stats.counter_value("fault.recovered"), 2);
        assert_eq!(sim.world().stats.counter_value("fault.exhausted"), 1);
        assert_eq!(sim.world().stats.counter_value("pcie.poisoned_tlps"), 1);
        assert_eq!(sim.world().stats.counter_value("aer.detected"), 3);
    }

    #[test]
    fn ecrc_off_lets_corruption_escape_as_success() {
        let mut sim = Simulator::new(0);
        let mut mem = PhysMemory::new();
        let dram = mem.alloc_region("dram", 1 << 24, PortId::ROOT);
        let flash = mem.alloc_region("flash", 1 << 24, PortId(1));
        sim.world_mut().insert(mem);
        sim.world_mut().insert(MmioRouting::new());
        let fabric = sim.add(
            "pcie",
            PcieFabric::new(PcieConfig {
                ecrc: false,
                ..PcieConfig::default()
            }),
        );
        let sink = sim.add("sink", Sink::new());
        install_plan(
            &mut sim,
            dcs_sim::fault::DMA_CORRUPT,
            vec![0],
            RecoveryConfig::default(),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        let landed = sim.world().expect::<PhysMemory>().read(flash.start, 8);
        assert_eq!(bit_diff(&landed, b"payload!"), 1, "corruption landed");
        assert_eq!(
            sim.world().stats.counter_value("sink.dma_ok"),
            1,
            "without ECRC the fabric cannot tell: silent escape"
        );
        assert_eq!(sim.world().stats.counter_value("pcie.ecrc_escapes"), 1);
        assert_eq!(sim.world().stats.counter_value("aer.escape"), 1);
        assert_eq!(sim.world().stats.counter_value("aer.detected"), 0);
    }

    #[test]
    fn header_corruption_without_budget_is_a_completion_timeout() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        install_plan(
            &mut sim,
            dcs_sim::fault::TLP_HEADER,
            vec![0],
            RecoveryConfig::no_retries(),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start, 8),
            vec![0u8; 8],
            "nothing may land on a timeout"
        );
        assert_eq!(
            sim.world().stats.counter_value("sink.dma"),
            1,
            "requester is notified"
        );
        assert_eq!(sim.world().stats.counter_value("sink.dma_ok"), 0);
        assert_eq!(sim.world().stats.counter_value("aer.cpl_timeout"), 1);
        assert!(
            sim.now().as_nanos() >= PcieConfig::default().cpl_timeout_ns,
            "completion waits out the timeout: {}",
            sim.now()
        );
    }

    #[test]
    fn header_corruption_with_budget_replays_transparently() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        install_plan(
            &mut sim,
            dcs_sim::fault::TLP_HEADER,
            vec![0],
            RecoveryConfig::default(),
        );
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"payload!");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start, 8),
            b"payload!"
        );
        assert_eq!(sim.world().stats.counter_value("sink.dma_ok"), 1);
        assert_eq!(sim.world().stats.counter_value("fault.recovered"), 1);
    }

    #[test]
    fn completion_class_draws_the_cpl_site_not_the_data_site() {
        let (mut sim, fabric, sink, dram, flash) = setup();
        let rng = Rng::new(0xFAB);
        let mut plan = FaultPlan::new(rng);
        // Data-site fault scheduled at index 0 must NOT fire for a
        // Completion-class DMA; the cpl site must.
        plan.enable(dcs_sim::fault::DMA_CORRUPT, FaultSpec::Nth(vec![0]));
        plan.enable(dcs_sim::fault::CPL_CORRUPT, FaultSpec::Nth(vec![0]));
        sim.world_mut().insert(plan);
        sim.world_mut()
            .expect_mut::<PhysMemory>()
            .write(dram.start, b"cqeentry");
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: flash.start,
                len: 8,
                class: TlpClass::Completion,
                reply_to: sink,
            },
        );
        sim.run();
        let tallies: std::collections::BTreeMap<_, _> =
            sim.world().expect::<FaultPlan>().tallies().collect();
        assert_eq!(tallies[dcs_sim::fault::CPL_CORRUPT].injected, 1);
        assert!(
            !tallies.contains_key(dcs_sim::fault::DMA_CORRUPT),
            "data site never drawn"
        );
        assert_eq!(
            sim.world().expect::<PhysMemory>().read(flash.start, 8),
            b"cqeentry"
        );
        assert_eq!(
            sim.world().stats.counter_value("fault.recovered"),
            1,
            "replay cured it"
        );
    }

    #[test]
    fn fault_free_corruption_machinery_is_timing_invisible() {
        // Identical to same_port_copy_skips_the_switch but asserting the
        // exact pre-existing completion time with no plan installed: the
        // ECRC/poison machinery must add zero events and zero latency to
        // fault-free runs.
        let (mut sim, fabric, sink, dram, _flash) = setup();
        let len = 4096;
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: dram.start + 8192,
                len,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        let cfg = PcieConfig::default();
        assert_eq!(
            sim.now().as_nanos(),
            cfg.link_time(len) + cfg.hop_latency_ns
        );
    }

    #[test]
    fn same_port_copy_skips_the_switch() {
        let (mut sim, fabric, sink, dram, _flash) = setup();
        let len = 4096;
        sim.kickoff(
            fabric,
            DmaRequest {
                id: 1,
                src: dram.start,
                dst: dram.start + 8192,
                len,
                class: TlpClass::Data,
                reply_to: sink,
            },
        );
        sim.run();
        let cfg = PcieConfig::default();
        // One serialization + one hop, no crossbar time.
        assert_eq!(
            sim.now().as_nanos(),
            cfg.link_time(len) + cfg.hop_latency_ns
        );
        assert_eq!(sim.world().stats.counter_value("pcie.dma_ops"), 1);
    }
}
