//! AER-style error log.
//!
//! Real PCIe root complexes expose Advanced Error Reporting: a small
//! log of corrected and uncorrectable errors (ECRC failures, poisoned
//! TLPs, completion timeouts) that software reads to understand what
//! the fabric contained on its behalf. This module is the simulated
//! analog: a bounded [`AerLog`] in the [`World`] that the fabric — and
//! consumers that detect corruption themselves, like the HDC Engine's
//! completion-record CRC check — append to. Every entry also bumps a
//! `stats` counter and a `dcs_sim::obs` count under the `pcie`
//! category, so containment totals show up in metrics reports and
//! Chrome traces without touching the log itself.
//!
//! The conservation identity the integrity tests assert lives here:
//! every injected corruption is *detected* exactly once (`aer.detected`
//! == injected at the corruption sites while ECRC is on), and each
//! detection is then either recovered or exhausted by the fault
//! tallies.

use dcs_sim::World;

/// What kind of error the fabric (or a consumer) contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AerKind {
    /// ECRC mismatch on a TLP, cured by a link-level replay (corrected).
    EcrcReplay,
    /// ECRC mismatch with no replay budget left: the TLP was delivered
    /// poisoned — data forwarded, completion status says don't trust it.
    PoisonedTlp,
    /// A request whose completion never arrived (unrecognizable header,
    /// replay budget zero); the requester timed out.
    CompletionTimeout,
    /// Corruption that landed undetected because ECRC is off. Never
    /// happens with `PcieConfig::ecrc = true`; counted so ECRC-off runs
    /// can still audit what escaped.
    SilentEscape,
    /// A completion entry (NVMe CQE, HDC completion record, NIC receive
    /// writeback) rejected by its consumer's own CRC/validity check.
    BadCompletionEntry,
    /// A device-level recovery action (NVMe controller reset, NIC
    /// reconfiguration) taken after containment.
    DeviceReset,
}

impl AerKind {
    /// Stable counter/obs name for the kind.
    pub fn label(self) -> &'static str {
        match self {
            AerKind::EcrcReplay => "aer.ecrc_replay",
            AerKind::PoisonedTlp => "aer.poisoned",
            AerKind::CompletionTimeout => "aer.cpl_timeout",
            AerKind::SilentEscape => "aer.escape",
            AerKind::BadCompletionEntry => "aer.bad_cpl_entry",
            AerKind::DeviceReset => "aer.device_reset",
        }
    }

    /// Whether the entry counts toward `aer.detected` (a corruption the
    /// machinery caught; resets are recovery actions, escapes are by
    /// definition not detected).
    pub fn detected(self) -> bool {
        matches!(
            self,
            AerKind::EcrcReplay
                | AerKind::PoisonedTlp
                | AerKind::CompletionTimeout
                | AerKind::BadCompletionEntry
        )
    }
}

/// One logged error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AerEntry {
    /// Sim time of the detection, in nanoseconds.
    pub time_ns: u64,
    /// Requester token / identifying id of the affected transfer.
    pub token: u64,
    /// Fault site that produced the error (a `dcs_sim::fault` site name
    /// or a consumer-chosen label).
    pub site: &'static str,
    /// Error classification.
    pub kind: AerKind,
}

/// Bounded error log ([`World`] resource; created on first record).
#[derive(Debug, Default)]
pub struct AerLog {
    /// Most recent entries, oldest first (bounded at [`Self::CAPACITY`]).
    entries: Vec<AerEntry>,
    /// Entries dropped once the log filled.
    pub dropped: u64,
}

impl AerLog {
    /// Log capacity; beyond it new entries bump `dropped` (the counters
    /// keep exact totals regardless).
    pub const CAPACITY: usize = 256;

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[AerEntry] {
        &self.entries
    }

    /// Retained entries of one kind.
    pub fn of_kind(&self, kind: AerKind) -> impl Iterator<Item = &AerEntry> + '_ {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    fn push(&mut self, entry: AerEntry) {
        if self.entries.len() < Self::CAPACITY {
            self.entries.push(entry);
        } else {
            self.dropped += 1;
        }
    }
}

/// Appends an entry to the world's [`AerLog`] (installing it on first
/// use) and bumps the matching `stats`/`obs` counters.
pub fn record(world: &mut World, time_ns: u64, token: u64, site: &'static str, kind: AerKind) {
    if world.get::<AerLog>().is_none() {
        world.insert(AerLog::default());
    }
    world.expect_mut::<AerLog>().push(AerEntry {
        time_ns,
        token,
        site,
        kind,
    });
    world.stats.counter(kind.label()).add(1);
    world.obs.count("pcie", kind.label(), 1);
    if kind.detected() {
        world.stats.counter("aer.detected").add(1);
        world.obs.count("pcie", "aer.detected", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_installs_log_and_counts() {
        let mut world = World::new(1);
        record(&mut world, 100, 7, "pcie.dma_corrupt", AerKind::EcrcReplay);
        record(
            &mut world,
            200,
            8,
            "pcie.tlp_header",
            AerKind::CompletionTimeout,
        );
        record(
            &mut world,
            300,
            9,
            "pcie.dma_corrupt",
            AerKind::SilentEscape,
        );
        record(&mut world, 400, 10, "nvme.device", AerKind::DeviceReset);
        let log = world.expect::<AerLog>();
        assert_eq!(log.entries().len(), 4);
        assert_eq!(log.of_kind(AerKind::EcrcReplay).count(), 1);
        assert_eq!(log.entries()[1].token, 8);
        // Escapes and resets are not detections.
        assert_eq!(world.stats.counter_value("aer.detected"), 2);
        assert_eq!(world.stats.counter_value("aer.ecrc_replay"), 1);
        assert_eq!(world.stats.counter_value("aer.escape"), 1);
        assert_eq!(world.stats.counter_value("aer.device_reset"), 1);
    }

    #[test]
    fn log_is_bounded() {
        let mut world = World::new(1);
        for i in 0..(AerLog::CAPACITY as u64 + 10) {
            record(&mut world, i, i, "pcie.dma_corrupt", AerKind::PoisonedTlp);
        }
        let log = world.expect::<AerLog>();
        assert_eq!(log.entries().len(), AerLog::CAPACITY);
        assert_eq!(log.dropped, 10);
        // Exact totals survive in the counters.
        assert_eq!(
            world.stats.counter_value("aer.poisoned"),
            AerLog::CAPACITY as u64 + 10
        );
    }
}
