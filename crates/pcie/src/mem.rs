//! The global physical memory map: sparsely-backed regions that DMA moves
//! real bytes between.
//!
//! Regions can be huge (the SSD flash region is hundreds of gigabytes) but
//! only touched pages are materialized, so scenarios stay cheap. Each
//! region is tagged with the PCIe [`PortId`] it sits behind so the fabric
//! can charge transfers to the right links.

use dcs_sim::DetMap;
use std::fmt;

use crate::addr::{AddrRange, PhysAddr};

/// Identifies a PCIe port (switch slot or the root port toward the host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

impl PortId {
    /// The root port: host DRAM and everything reached through the root
    /// complex sits behind this port.
    pub const ROOT: PortId = PortId(0);
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte storage materialized page-by-page on first write.
#[derive(Default)]
struct SparseBytes {
    pages: DetMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseBytes {
    fn read_into(&self, offset: u64, out: &mut [u8]) {
        let mut off = offset;
        let mut done = 0;
        while done < out.len() {
            let page = off >> PAGE_SHIFT;
            let in_page = (off as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(out.len() - done);
            match self.pages.get(&page) {
                Some(p) => out[done..done + n].copy_from_slice(&p[in_page..in_page + n]),
                None => out[done..done + n].fill(0),
            }
            off += n as u64;
            done += n;
        }
    }

    fn write_from(&mut self, offset: u64, data: &[u8]) {
        let mut off = offset;
        let mut done = 0;
        while done < data.len() {
            let page = off >> PAGE_SHIFT;
            let in_page = (off as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            off += n as u64;
            done += n;
        }
    }

    fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

/// Metadata describing a registered region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// Human-readable name (`"host-dram"`, `"ssd0-flash"`, …).
    pub name: String,
    /// The address range the region occupies.
    pub range: AddrRange,
    /// The PCIe port the region's owner sits behind.
    pub port: PortId,
}

struct Region {
    info: RegionInfo,
    bytes: SparseBytes,
}

/// The system-wide physical memory map.
///
/// Lives in the simulator [`World`](dcs_sim::World); components read and
/// write it directly (memory accuracy is byte-level, timing is modeled by
/// the fabric and device components).
#[derive(Default)]
pub struct PhysMemory {
    regions: Vec<Region>,
    next_free: u64,
}

/// Alignment for allocated regions: 4 GiB keeps region bases readable in
/// traces and leaves room to grow.
const REGION_ALIGN: u64 = 1 << 32;

impl PhysMemory {
    /// An empty memory map.
    pub fn new() -> Self {
        PhysMemory {
            regions: Vec::new(),
            next_free: REGION_ALIGN,
        }
    }

    /// Allocates a fresh region of `len` bytes behind `port`, placed at the
    /// next free aligned address, and returns its range.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn alloc_region(&mut self, name: &str, len: u64, port: PortId) -> AddrRange {
        assert!(len > 0, "cannot allocate an empty region");
        let start = PhysAddr(self.next_free);
        let range = AddrRange::new(start, len);
        self.next_free = (start.0 + len).div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.regions.push(Region {
            info: RegionInfo {
                name: name.to_string(),
                range,
                port,
            },
            bytes: SparseBytes::default(),
        });
        range
    }

    /// Registers a region at a fixed range (used by tests and for MMIO
    /// windows that must not collide with allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing region.
    pub fn add_region_at(&mut self, name: &str, range: AddrRange, port: PortId) {
        for r in &self.regions {
            assert!(
                !r.info.range.overlaps(range),
                "region {name} at {range} overlaps {} at {}",
                r.info.name,
                r.info.range
            );
        }
        self.next_free = self
            .next_free
            .max((range.end().as_u64()).div_ceil(REGION_ALIGN) * REGION_ALIGN);
        self.regions.push(Region {
            info: RegionInfo {
                name: name.to_string(),
                range,
                port,
            },
            bytes: SparseBytes::default(),
        });
    }

    fn region_index_of(&self, addr: PhysAddr, len: usize) -> usize {
        self.regions
            .iter()
            .position(|r| r.info.range.contains_span(addr, len))
            .unwrap_or_else(|| {
                panic!(
                    "access [{addr} +{len}) hits no single region; registered: {:?}",
                    self.regions
                        .iter()
                        .map(|r| (&r.info.name, r.info.range))
                        .collect::<Vec<_>>()
                )
            })
    }

    /// Region metadata for the region containing `[addr, addr+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the span is not fully contained in one region.
    pub fn region_of(&self, addr: PhysAddr, len: usize) -> &RegionInfo {
        &self.regions[self.region_index_of(addr, len)].info
    }

    /// Looks up a region by name.
    pub fn region_named(&self, name: &str) -> Option<&RegionInfo> {
        self.regions
            .iter()
            .map(|r| &r.info)
            .find(|i| i.name == name)
    }

    /// Reads `len` bytes starting at `addr`. Untouched memory reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the span is not fully contained in one region.
    pub fn read(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let idx = self.region_index_of(addr, len);
        let r = &self.regions[idx];
        let mut out = vec![0u8; len];
        r.bytes.read_into(addr - r.info.range.start, &mut out);
        out
    }

    /// Reads into a caller-provided buffer (avoids allocation in hot paths).
    pub fn read_into(&self, addr: PhysAddr, out: &mut [u8]) {
        let idx = self.region_index_of(addr, out.len());
        let r = &self.regions[idx];
        r.bytes.read_into(addr - r.info.range.start, out);
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the span is not fully contained in one region.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let idx = self.region_index_of(addr, data.len());
        let r = &mut self.regions[idx];
        let off = addr - r.info.range.start;
        r.bytes.write_from(off, data);
    }

    /// Copies `len` bytes from `src` to `dst` (the data movement behind a
    /// completed DMA). Source and destination may be in different regions;
    /// overlapping self-copies behave like `memmove`.
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: usize) {
        if len == 0 {
            return;
        }
        let data = self.read(src, len);
        self.write(dst, &data);
    }

    /// Total bytes of materialized backing store (for memory-pressure
    /// assertions in tests).
    pub fn resident_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.bytes.resident_bytes()).sum()
    }

    /// Iterates over registered region metadata.
    pub fn regions(&self) -> impl Iterator<Item = &RegionInfo> + '_ {
        self.regions.iter().map(|r| &r.info)
    }
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMemory")
            .field(
                "regions",
                &self.regions.iter().map(|r| &r.info).collect::<Vec<_>>(),
            )
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_regions_do_not_overlap_and_are_aligned() {
        let mut m = PhysMemory::new();
        let a = m.alloc_region("a", 10, PortId::ROOT);
        let b = m.alloc_region("b", 1 << 33, PortId(1));
        let c = m.alloc_region("c", 1, PortId(2));
        assert!(!a.overlaps(b) && !b.overlaps(c) && !a.overlaps(c));
        assert_eq!(a.start.as_u64() % REGION_ALIGN, 0);
        assert_eq!(b.start.as_u64() % REGION_ALIGN, 0);
        assert_eq!(c.start.as_u64() % REGION_ALIGN, 0);
    }

    #[test]
    fn read_write_roundtrip_across_pages() {
        let mut m = PhysMemory::new();
        let r = m.alloc_region("dram", 1 << 20, PortId::ROOT);
        // Span two pages.
        let addr = r.start + (PAGE_SIZE as u64 - 3);
        let data: Vec<u8> = (0..10u8).collect();
        m.write(addr, &data);
        assert_eq!(m.read(addr, 10), data);
        // Untouched bytes read back as zero.
        assert_eq!(m.read(r.start, 4), vec![0; 4]);
    }

    #[test]
    fn sparse_backing_stays_small() {
        let mut m = PhysMemory::new();
        let r = m.alloc_region("flash", 400 << 30, PortId(1)); // 400 GiB
        m.write(r.start + (300u64 << 30), b"x");
        assert!(m.resident_bytes() <= 2 * PAGE_SIZE);
    }

    #[test]
    fn copy_moves_bytes_between_regions() {
        let mut m = PhysMemory::new();
        let a = m.alloc_region("a", 1 << 16, PortId::ROOT);
        let b = m.alloc_region("b", 1 << 16, PortId(1));
        m.write(a.start, b"dcs-ctrl");
        m.copy(a.start, b.start + 100, 8);
        assert_eq!(m.read(b.start + 100, 8), b"dcs-ctrl");
    }

    #[test]
    fn region_lookup_and_port_tagging() {
        let mut m = PhysMemory::new();
        let r = m.alloc_region("gpu-bar", 1 << 20, PortId(3));
        let info = m.region_of(r.start + 5, 10);
        assert_eq!(info.name, "gpu-bar");
        assert_eq!(info.port, PortId(3));
        assert_eq!(m.region_named("gpu-bar").unwrap().range, r);
        assert!(m.region_named("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "no single region")]
    fn access_outside_regions_panics() {
        let m = PhysMemory::new();
        let _ = m.read(PhysAddr(0x10), 4);
    }

    #[test]
    #[should_panic(expected = "no single region")]
    fn access_spanning_region_end_panics() {
        let mut m = PhysMemory::new();
        let r = m.alloc_region("small", 8, PortId::ROOT);
        let _ = m.read(r.start + 4, 8);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn fixed_region_overlap_is_rejected() {
        let mut m = PhysMemory::new();
        m.add_region_at("x", AddrRange::new(PhysAddr(0x1000), 0x1000), PortId::ROOT);
        m.add_region_at("y", AddrRange::new(PhysAddr(0x1800), 0x1000), PortId::ROOT);
    }

    #[test]
    fn zero_length_copy_is_noop() {
        let mut m = PhysMemory::new();
        let a = m.alloc_region("a", 16, PortId::ROOT);
        m.copy(a.start, a.start + 8, 0);
        assert_eq!(m.resident_bytes(), 0);
    }
}
