//! MMIO ownership: which component's registers live at which addresses.
//!
//! Device models claim their register windows (NVMe doorbells, NIC mailbox
//! registers, the HDC Engine's host-interface command queue, MSI target
//! addresses) before the simulation starts; the fabric consults this table
//! to route posted writes and interrupts. The table lives in the simulator
//! [`World`](dcs_sim::World).

use dcs_sim::ComponentId;

use crate::addr::{AddrRange, PhysAddr};

/// The MMIO routing table.
#[derive(Debug, Default)]
pub struct MmioRouting {
    claims: Vec<(AddrRange, ComponentId)>,
}

impl MmioRouting {
    /// An empty table.
    pub fn new() -> Self {
        MmioRouting::default()
    }

    /// Claims `range` for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing claim.
    pub fn claim(&mut self, range: AddrRange, owner: ComponentId) {
        for (existing, other) in &self.claims {
            assert!(
                !existing.overlaps(range),
                "MMIO claim {range} overlaps {existing} owned by {other}"
            );
        }
        self.claims.push((range, owner));
    }

    /// The component owning `addr`, if any.
    pub fn owner_of(&self, addr: PhysAddr) -> Option<ComponentId> {
        self.claims
            .iter()
            .find(|(r, _)| r.contains(addr))
            .map(|(_, owner)| *owner)
    }

    /// Number of registered claims.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether no claims exist.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_route_by_address() {
        let mut r = MmioRouting::new();
        let a = ComponentId::INVALID;
        r.claim(AddrRange::new(PhysAddr(0x1000), 0x100), a);
        assert_eq!(r.owner_of(PhysAddr(0x1000)), Some(a));
        assert_eq!(r.owner_of(PhysAddr(0x10ff)), Some(a));
        assert_eq!(r.owner_of(PhysAddr(0x1100)), None);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_claims_rejected() {
        let mut r = MmioRouting::new();
        r.claim(AddrRange::new(PhysAddr(0), 16), ComponentId::INVALID);
        r.claim(AddrRange::new(PhysAddr(8), 16), ComponentId::INVALID);
    }
}
