//! Physical addresses and address ranges.

use std::fmt;
use std::ops::{Add, Sub};

/// A physical address in the system-wide PCIe address map.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The zero address.
    pub const ZERO: PhysAddr = PhysAddr(0);

    /// Raw address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Offset of this address within a range starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `self < base`.
    #[inline]
    pub fn offset_from(self, base: PhysAddr) -> u64 {
        self.0
            .checked_sub(base.0)
            .expect("address below region base")
    }

    /// Rounds down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> PhysAddr {
        debug_assert!(align.is_power_of_two());
        PhysAddr(self.0 & !(align - 1))
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    #[inline]
    fn add(self, off: u64) -> PhysAddr {
        PhysAddr(self.0.checked_add(off).expect("physical address overflow"))
    }
}

impl Sub<PhysAddr> for PhysAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: PhysAddr) -> u64 {
        self.offset_from(rhs)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#014x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A half-open `[start, start+len)` range of physical addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddrRange {
    /// First address in the range.
    pub start: PhysAddr,
    /// Length in bytes.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if the range would wrap the address space.
    pub fn new(start: PhysAddr, len: u64) -> Self {
        start.0.checked_add(len).expect("address range overflow");
        AddrRange { start, len }
    }

    /// One past the last address.
    #[inline]
    pub fn end(self) -> PhysAddr {
        PhysAddr(self.start.0 + self.len)
    }

    /// Whether `addr` lies within the range.
    #[inline]
    pub fn contains(self, addr: PhysAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether `[addr, addr+len)` lies entirely within the range.
    #[inline]
    pub fn contains_span(self, addr: PhysAddr, len: usize) -> bool {
        addr >= self.start && addr.0 + len as u64 <= self.end().0
    }

    /// Whether two ranges share any address.
    #[inline]
    pub fn overlaps(self, other: AddrRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// The address `offset` bytes into the range.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds (an offset equal to `len` is also
    /// rejected — the result must be addressable).
    #[inline]
    pub fn at(self, offset: u64) -> PhysAddr {
        assert!(
            offset < self.len,
            "offset {offset} outside range of {} bytes",
            self.len
        );
        self.start + offset
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        let a = PhysAddr(0x1000);
        assert_eq!((a + 0x20).as_u64(), 0x1020);
        assert_eq!((a + 0x20) - a, 0x20);
        assert_eq!(PhysAddr(0x1fff).align_down(0x1000), PhysAddr(0x1000));
        assert_eq!(PhysAddr::from(7u64).as_u64(), 7);
    }

    #[test]
    #[should_panic(expected = "below region base")]
    fn offset_from_panics_when_below_base() {
        let _ = PhysAddr(0x10).offset_from(PhysAddr(0x20));
    }

    #[test]
    fn range_membership() {
        let r = AddrRange::new(PhysAddr(100), 50);
        assert!(r.contains(PhysAddr(100)));
        assert!(r.contains(PhysAddr(149)));
        assert!(!r.contains(PhysAddr(150)));
        assert!(r.contains_span(PhysAddr(100), 50));
        assert!(!r.contains_span(PhysAddr(101), 50));
        assert_eq!(r.at(49), PhysAddr(149));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(PhysAddr(0), 10);
        let b = AddrRange::new(PhysAddr(10), 10);
        let c = AddrRange::new(PhysAddr(5), 10);
        assert!(!a.overlaps(b));
        assert!(a.overlaps(c));
        assert!(c.overlaps(b));
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn range_at_rejects_out_of_bounds() {
        let r = AddrRange::new(PhysAddr(0), 10);
        let _ = r.at(10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x1000).to_string(), "0x000000001000");
        let r = AddrRange::new(PhysAddr(0), 16);
        assert_eq!(r.to_string(), "[0x000000000000..0x000000000010)");
    }
}
