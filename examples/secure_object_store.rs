//! A Swift-like secure object store over every design.
//!
//! Serves a PUT/GET mix with MD5 integrity *and* AES-256 encryption in
//! flight (the Table II combination Swift deploys), comparing the server's
//! CPU bill across SW-opt, SW-ctrl-P2P, and DCS-ctrl at the same offered
//! load.
//!
//! ```text
//! cargo run --example secure_object_store
//! ```

use dcs_ctrl::host::job::{D2dJob, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::TcpFlow;
use dcs_ctrl::sim::time;
use dcs_ctrl::workloads::gen::SizeDistribution;
use dcs_ctrl::workloads::scenario::{
    start_scenario_with_app, DesignUnderTest, Request, ScenarioConfig, ScenarioOutcome, Testbed,
    TestbedConfig,
};

fn aes_aux() -> Vec<u8> {
    let mut aux = vec![0x42u8; 32]; // key
    aux.extend([0x17u8; 16]); // nonce
    aux
}

fn run(design: DesignUnderTest) {
    let mut tb = Testbed::new(design, &TestbedConfig::default());
    tb.sim.run();
    let server = tb.server.clone();
    let client = tb.client.clone();
    let sizes = SizeDistribution {
        max: 512 * 1024,
        ..SizeDistribution::default()
    };
    let mean = sizes.mean_estimate();

    let mut lba = 0u64;
    let window = (4u64 << 30) / 4096;
    let make = Box::new(
        move |rng: &mut dcs_ctrl::sim::Rng, slot: usize, reply_to, next_id: &mut u64| {
            let len = sizes.sample(rng);
            let blocks = (len / 4096) as u64;
            let this_lba = lba;
            lba = (lba + blocks) % window;
            let mut id = || {
                let i = *next_id;
                *next_id += 1;
                i
            };
            // Secure GET: read -> MD5 -> AES encrypt -> send. (Four ops is the
            // D2D command limit; the decrypt+verify runs on the client.)
            let flow = TcpFlow::example(1, 2, 21_000 + slot as u16, 8_200 + slot as u16);
            let server_job = D2dJob {
                id: id(),
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: this_lba,
                        len,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Md5,
                        aux: vec![],
                    },
                    D2dOp::Process {
                        function: NdpFunction::Aes256Encrypt,
                        aux: aes_aux(),
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                reply_to,
                tag: "kernel-get",
            };
            let client_job = D2dJob {
                id: id(),
                ops: vec![
                    D2dOp::NicRecv {
                        flow: flow.reversed(),
                        len,
                    },
                    D2dOp::Process {
                        function: NdpFunction::Aes256Decrypt,
                        aux: aes_aux(),
                    },
                ],
                reply_to,
                tag: "client",
            };
            Request {
                jobs: vec![
                    (client.submit_to, client_job),
                    (server.submit_to, server_job),
                ],
                bytes: len,
                app_cost_ns: 80_000 + (len / 10) as u64,
                app_tag: "app",
            }
        },
    );

    let scenario = ScenarioConfig {
        duration_ns: time::ms(40),
        warmup_ns: time::ms(10),
        mean_interarrival_ns: mean * 8.0 / 6.0, // ~6 Gbps offered
        slots: 32,
    };
    start_scenario_with_app(
        &mut tb.sim,
        scenario,
        make,
        vec![(server.cpu_key.clone(), server.cores)],
        Some(server.cpu),
    );
    tb.sim.run();
    let outcome = tb.sim.world().expect::<ScenarioOutcome>();
    let report = &outcome.reports[&server.cpu_key];
    print!("{}", report.render(design.label()));
}

fn main() {
    println!("Secure object store: GET = SSD -> MD5 -> AES-256 -> NIC\n");
    for design in DesignUnderTest::FIG12 {
        run(design);
    }
    println!("\nEncryption is nearly free on the HDC Engine (AES at 40.9 Gbps per");
    println!("unit, Table III) but costs the baselines a second GPU round trip.");
}
