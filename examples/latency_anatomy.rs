//! The anatomy of one D2D operation under each design.
//!
//! Prints the Figure-2-style timeline of a single `SSD -> MD5 -> NIC`
//! operation for every design the paper compares, showing exactly which
//! microseconds DCS-ctrl removes.
//!
//! ```text
//! cargo run --example latency_anatomy
//! ```

use dcs_bench::fig11::{measure, software_latency};
use dcs_ctrl::sim::Category;
use dcs_ctrl::workloads::scenario::DesignUnderTest;

const ORDER: [Category; 10] = [
    Category::DeviceControl,
    Category::FileSystem,
    Category::Read,
    Category::RequestCompletion,
    Category::GpuCopy,
    Category::GpuControl,
    Category::Hash,
    Category::NetworkStack,
    Category::Scoreboard,
    Category::Wire,
];

fn main() {
    let len = 4096;
    println!(
        "Anatomy of one SSD -> MD5 -> NIC operation ({} KiB)\n",
        len / 1024
    );
    for design in [
        DesignUnderTest::Linux,
        DesignUnderTest::SwOpt,
        DesignUnderTest::SwP2p,
        DesignUnderTest::DcsCtrl,
    ] {
        let b = measure(design, len, true);
        let total = b.total() as f64 / 1000.0;
        println!(
            "{} — total {:.1} us, software {:.1} us",
            design.label(),
            total,
            software_latency(&b) as f64 / 1000.0
        );
        let mut t = 0.0;
        for cat in ORDER {
            let dur = b.get(cat) as f64 / 1000.0;
            if dur == 0.0 {
                continue;
            }
            let bar = "#".repeat(((dur / total) * 50.0).ceil() as usize);
            println!("  {:>7.1}..{:<7.1}us {:<18} {bar}", t, t + dur, cat.label());
            t += dur;
        }
        println!();
    }
    println!("Every '#' of Device Control / GPU Control / Network Stack is host");
    println!("software the HDC Engine replaces with the thin Scoreboard slice.");
}
