//! The HDFS balancer (§V-C2), end to end.
//!
//! Moves a batch of blocks from node A to node B: A reads each block off
//! its SSD and transmits; B gathers the packets, CRC32-checks the block,
//! and persists it. Prints per-node CPU bills for the software baseline
//! and DCS-ctrl, then verifies every byte landed intact.
//!
//! ```text
//! cargo run --example hdfs_balancer
//! ```

use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::time;
use dcs_ctrl::workloads::scenario::DesignUnderTest;
use dcs_ctrl::workloads::{run_hdfs, HdfsConfig};

fn main() {
    println!("HDFS balancer: sender reads+sends, receiver gathers+CRC32+stores\n");
    let cfg = HdfsConfig {
        duration_ns: time::ms(30),
        warmup_ns: time::ms(8),
        offered_gbps: 6.0,
        block_size: 512 * 1024,
        ..HdfsConfig::default()
    };
    for design in [DesignUnderTest::SwOpt, DesignUnderTest::DcsCtrl] {
        let (sender, receiver) = run_hdfs(design, &cfg);
        print!("{}", sender.render(&format!("{} sender  ", design.label())));
        print!(
            "{}",
            receiver.render(&format!("{} receiver", design.label()))
        );
        println!();
    }

    // Byte-level verification on a fresh testbed: one balancer block,
    // checked end to end.
    use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
    use dcs_ctrl::ndp::NdpFunction;
    use dcs_ctrl::nic::{TcpFlow, WireConfig};
    use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg, Simulator};

    struct App;
    #[derive(Debug)]
    struct Submit {
        to: ComponentId,
        job: D2dJob,
    }
    impl Component for App {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<Submit>() {
                Ok(Submit { to, job }) => {
                    ctx.send_now(to, job);
                    return;
                }
                Err(m) => m,
            };
            let done = msg.downcast::<D2dDone>().expect("completions");
            if let Some(d) = &done.digest {
                println!(
                    "  receiver CRC32 of the block: {}",
                    dcs_ctrl::ndp::to_hex(d)
                );
            }
        }
    }

    let mut sim = Simulator::new(7);
    let (a, b) = dcs_ctrl::core::build_dcs_pair(
        &mut sim,
        &dcs_ctrl::core::DcsNodeBuilder::new("sender"),
        &dcs_ctrl::core::DcsNodeBuilder::new("receiver"),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    sim.run();
    let block: Vec<u8> = (0..512 * 1024).map(|i| (i * 131 % 251) as u8).collect();
    sim.world_mut()
        .expect_mut::<PhysMemory>()
        .write(a.ssds[0].lba_addr(0), &block);
    println!(
        "verification block: 512 KiB, crc32 {:08x}",
        dcs_ctrl::ndp::crc32::crc32(&block)
    );
    let flow = TcpFlow::example(1, 2, 42_000, 8_020);
    sim.kickoff(
        app,
        Submit {
            to: b.driver,
            job: D2dJob {
                id: 2,
                ops: vec![
                    D2dOp::NicRecv {
                        flow: flow.reversed(),
                        len: block.len(),
                    },
                    D2dOp::Process {
                        function: NdpFunction::Crc32,
                        aux: vec![],
                    },
                    D2dOp::SsdWrite { ssd: 0, lba: 4000 },
                ],
                reply_to: app,
                tag: "verify",
            },
        },
    );
    sim.kickoff(
        app,
        Submit {
            to: a.driver,
            job: D2dJob {
                id: 1,
                ops: vec![
                    D2dOp::SsdRead {
                        ssd: 0,
                        lba: 0,
                        len: block.len(),
                    },
                    D2dOp::NicSend { flow, seq: 0 },
                ],
                reply_to: app,
                tag: "verify",
            },
        },
    );
    sim.run();
    let landed = sim
        .world()
        .expect::<PhysMemory>()
        .read(b.ssds[0].lba_addr(4000), block.len());
    assert_eq!(
        landed, block,
        "block must land intact on the receiver's flash"
    );
    println!("  block landed intact on the receiver's SSD ✓");
}
