//! Chained near-device processing on the HDC Engine.
//!
//! Demonstrates a multi-stage NDP pipeline: a compressible log file is
//! read from the SSD, GZIP-compressed, AES-256-encrypted, and transmitted
//! — all inside the engine — then decrypted and decompressed on the
//! receiving node. Shows the payload shrinking mid-pipeline (the
//! scoreboard's length propagation) and verifies the round trip.
//!
//! ```text
//! cargo run --example ndp_pipeline
//! ```

use dcs_ctrl::core::{build_dcs_pair, DcsNodeBuilder};
use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ctrl::ndp::NdpFunction;
use dcs_ctrl::nic::{TcpFlow, WireConfig};
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg, Simulator};

struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("completions");
        println!(
            "  job {}: ok={} exit-payload={} bytes, t={}",
            done.id,
            done.ok,
            done.payload_len,
            ctx.now()
        );
    }
}

fn aes_aux() -> Vec<u8> {
    let mut aux = vec![0x2Au8; 32];
    aux.extend([0x3Cu8; 16]);
    aux
}

fn main() {
    println!("NDP pipeline: SSD -> gzip -> aes256 -> NIC ... NIC -> aes256 -> gunzip -> SSD\n");
    let mut sim = Simulator::new(99);
    let (a, b) = build_dcs_pair(
        &mut sim,
        &DcsNodeBuilder::new("alpha"),
        &DcsNodeBuilder::new("beta"),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    sim.run();

    // A compressible "log file".
    let line = b"2026-07-06T12:00:00Z INFO object-server: GET /v1/acct/cont/obj 200 -\n";
    let log: Vec<u8> = line.iter().cycle().take(256 * 1024).copied().collect();
    sim.world_mut()
        .expect_mut::<PhysMemory>()
        .write(a.ssds[0].lba_addr(0), &log);
    println!("log file: {} bytes (highly compressible)", log.len());

    let flow = TcpFlow::example(1, 2, 50_500, 9_500);
    // The compressed+encrypted size isn't known up front; receive jobs need
    // an exact length. Stage 1: compress+encrypt+send on A, and observe the
    // exit payload length from the completion...
    let send = D2dJob {
        id: 1,
        ops: vec![
            D2dOp::SsdRead {
                ssd: 0,
                lba: 0,
                len: log.len(),
            },
            D2dOp::Process {
                function: NdpFunction::GzipCompress,
                aux: vec![],
            },
            D2dOp::Process {
                function: NdpFunction::Aes256Encrypt,
                aux: aes_aux(),
            },
            D2dOp::NicSend { flow, seq: 0 },
        ],
        reply_to: app,
        tag: "pipeline",
    };
    // ...which in a real deployment travels in the object metadata. Here we
    // precompute it the same way the engine will (bit-exact algorithms).
    let compressed_len = dcs_ctrl::ndp::deflate::gzip_compress(&log).len();
    println!("compressed+encrypted payload: {compressed_len} bytes\n");
    let recv = D2dJob {
        id: 2,
        ops: vec![
            D2dOp::NicRecv {
                flow: flow.reversed(),
                len: compressed_len,
            },
            D2dOp::Process {
                function: NdpFunction::Aes256Decrypt,
                aux: aes_aux(),
            },
            D2dOp::Process {
                function: NdpFunction::GzipDecompress,
                aux: vec![],
            },
            D2dOp::SsdWrite { ssd: 0, lba: 9000 },
        ],
        reply_to: app,
        tag: "pipeline",
    };
    sim.kickoff(
        app,
        Submit {
            to: b.driver,
            job: recv,
        },
    );
    sim.kickoff(
        app,
        Submit {
            to: a.driver,
            job: send,
        },
    );
    sim.run();

    let landed = sim
        .world()
        .expect::<PhysMemory>()
        .read(b.ssds[0].lba_addr(9000), log.len());
    assert_eq!(landed, log, "round trip must reproduce the log");
    println!("\nround trip verified: decrypt(gunzip(...)) on beta == the log on alpha ✓");
    println!(
        "wire bytes {} vs payload bytes {} — compression cut the transfer by {:.0}%",
        sim.world().stats.counter_value("wire.bytes"),
        log.len(),
        (1.0 - compressed_len as f64 / log.len() as f64) * 100.0
    );
}
