//! Quickstart: one D2D transfer through the HDC Engine.
//!
//! Builds the two-node DCS-ctrl testbed, writes a file onto node A's SSD,
//! and uses the HDC Library's `sendfile` to push it straight from the SSD
//! to the NIC — no host staging, no kernel data path — while node B
//! receives and verifies it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dcs_ctrl::core::lib_api::Permissions;
use dcs_ctrl::core::{build_dcs_pair, DcsNodeBuilder, FileDesc, HdcLibrary, SocketDesc};
use dcs_ctrl::host::job::{D2dDone, D2dJob, D2dOp};
use dcs_ctrl::ndp::md5::md5;
use dcs_ctrl::nic::{TcpFlow, WireConfig};
use dcs_ctrl::pcie::PhysMemory;
use dcs_ctrl::sim::{Component, ComponentId, Ctx, Msg, Simulator};

/// A tiny application component: submits jobs, prints completions.
struct App;

#[derive(Debug)]
struct Submit {
    to: ComponentId,
    job: D2dJob,
}

impl Component for App {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<Submit>() {
            Ok(Submit { to, job }) => {
                ctx.send_now(to, job);
                return;
            }
            Err(m) => m,
        };
        let done = msg.downcast::<D2dDone>().expect("job completions");
        println!(
            "  job {} finished at t={} ok={} ({} payload bytes)",
            done.id,
            ctx.now(),
            done.ok,
            done.payload_len
        );
        for (cat, ns) in done.breakdown.entries() {
            println!("      {:<18} {:>9.2} us", cat.label(), ns as f64 / 1000.0);
        }
        if let Some(d) = &done.digest {
            println!(
                "      digest (from the completion record): {}",
                dcs_ctrl::ndp::to_hex(d)
            );
        }
    }
}

fn main() {
    println!("DCS-ctrl quickstart: SSD -> MD5 (NDP) -> NIC, hardware-controlled\n");

    // 1. Build the two-node testbed: each node has a 6-core host, an
    //    Intel-750-like NVMe SSD, a 10 GbE NIC, and an HDC Engine.
    let mut sim = Simulator::new(2026);
    let (a, b) = build_dcs_pair(
        &mut sim,
        &DcsNodeBuilder::new("alpha"),
        &DcsNodeBuilder::new("beta"),
        WireConfig::default(),
    );
    let app = sim.add("app", App);
    sim.run(); // let device initialization settle

    // 2. Put a file on alpha's flash.
    let content: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    sim.world_mut()
        .expect_mut::<PhysMemory>()
        .write(a.ssds[0].lba_addr(100), &content);
    println!(
        "file on alpha's SSD: 64 KiB, md5 {}\n",
        dcs_ctrl::ndp::to_hex(&md5(&content))
    );

    // 3. hdc_sendfile on alpha; a receive job on beta.
    let mut lib = HdcLibrary::new();
    let flow = TcpFlow::example(1, 2, 40_000, 9_000);
    let file = FileDesc {
        ssd: 0,
        base_lba: 100,
        len: content.len() as u64,
        perms: Permissions::RO,
    };
    let socket = SocketDesc {
        flow,
        seq: 0,
        perms: Permissions::RW,
    };
    let send = lib
        .sendfile_processed(
            &file,
            &socket,
            0,
            content.len(),
            Some((dcs_ctrl::ndp::NdpFunction::Md5, vec![])),
            app,
            "quickstart",
        )
        .expect("valid descriptors");
    let recv = D2dJob {
        id: 999,
        ops: vec![
            D2dOp::NicRecv {
                flow: flow.reversed(),
                len: content.len(),
            },
            D2dOp::Process {
                function: dcs_ctrl::ndp::NdpFunction::Md5,
                aux: vec![],
            },
        ],
        reply_to: app,
        tag: "quickstart",
    };
    sim.kickoff(
        app,
        Submit {
            to: b.driver,
            job: recv,
        },
    );
    sim.kickoff(
        app,
        Submit {
            to: a.driver,
            job: send,
        },
    );

    // 4. Run to completion.
    sim.run();
    println!("\nsimulated time: {}", sim.now());
    println!(
        "wire frames: {}, drops: {}",
        sim.world().stats.counter_value("wire.frames"),
        sim.world().stats.counter_value("nic.rx_dropped_no_buffer"),
    );
    println!("\nBoth digests above match the file's MD5: the bytes that crossed the");
    println!("fabric are the bytes on flash, and no host CPU touched the data path.");
}
