//! # dcs-ctrl — a reproduction of *DCS-ctrl* (ISCA 2018)
//!
//! DCS-ctrl is a hardware-based device-control (HDC) mechanism for
//! device-centric servers: an independent FPGA board (the *HDC Engine*)
//! that orchestrates direct device-to-device communication among
//! off-the-shelf NVMe SSDs, NICs, and GPUs over a PCIe switch — moving both
//! the *data path* and the *control path* out of host software.
//!
//! This workspace reproduces the paper's system on a deterministic
//! discrete-event simulation of the full testbed (the original requires an
//! FPGA prototype and a physical PCIe switch). This facade crate re-exports
//! every subsystem:
//!
//! * [`sim`] — the discrete-event simulation kernel.
//! * [`pcie`] — the PCIe fabric: address map, links, switch, DMA, MMIO, MSI.
//! * [`nvme`] — a functional NVMe SSD model (queues, doorbells, PRP lists).
//! * [`nic`] — a 10 GbE NIC model with real TCP/IP header build/parse.
//! * [`gpu`] — the GPU used by baseline designs for hash offload.
//! * [`host`] — host CPU pool, kernel cost models, baseline orchestrators.
//! * [`ndp`] — pure-Rust MD5 / SHA-1 / SHA-256 / AES-256 / CRC32 / DEFLATE.
//! * [`core`] — **the paper's contribution**: the HDC Engine (scoreboard,
//!   standard device controllers, NDP units), HDC Driver and HDC Library.
//! * [`workloads`] — Swift-like object store and HDFS-balancer workloads.
//! * [`cluster`] — multi-node DCS serving behind a modeled top-of-rack
//!   switch: load balancing, consistent-hash sharding, admission control.
//! * [`store`] — multi-tenant object-store service layer over the rack:
//!   YCSB tenants, per-node read caching, weighted-fair QoS, SLO rows.
//! * [`bench`](mod@bench) — the experiment harness behind the `repro`
//!   binary, including the latency-anatomy trace capture (`--trace-out`).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use dcs_bench as bench;
pub use dcs_cluster as cluster;
pub use dcs_core as core;
pub use dcs_gpu as gpu;
pub use dcs_host as host;
pub use dcs_ndp as ndp;
pub use dcs_nic as nic;
pub use dcs_nvme as nvme;
pub use dcs_pcie as pcie;
pub use dcs_sim as sim;
pub use dcs_store as store;
pub use dcs_workloads as workloads;
